"""Quickstart: run sparse kernels on Capstan and read the performance model.

This example walks through the library's three layers in a couple of
minutes:

1. build sparse tensors in the formats Capstan supports,
2. express a sparse computation with the sparse-iteration primitives and
   validate it against a dense reference,
3. cost the run on the Capstan timing model and on the CPU/GPU baselines.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.apps import estimate_cycles, reference_spmv, run_metrics, spmv_csr
from repro.apps.timing import default_platform
from repro.baselines import cpu, gpu
from repro.config import MemoryTechnology
from repro.core import BitVectorScanner, ScanMode
from repro.formats import BitVector, CSRMatrix, to_csc, to_coo
from repro.workloads import banded_fem_matrix


def build_formats() -> CSRMatrix:
    """Generate a small FEM-like matrix and show the format lattice."""
    matrix = banded_fem_matrix(n=2_000, nnz=26_000, seed=1)
    csr = CSRMatrix.from_coo_arrays(matrix.shape, *matrix.to_coo_arrays())
    print("Sparse formats")
    print(f"  COO : shape={matrix.shape}, nnz={matrix.nnz}, density={matrix.density:.4%}")
    print(f"  CSR : {csr!r}, bytes={csr.storage_bytes()}")
    print(f"  CSC : {to_csc(csr)!r}")
    print(f"  COO : {to_coo(csr)!r}")
    return csr


def demonstrate_scanner() -> None:
    """Show the vectorized sparse loop header on two bit-vectors."""
    a = BitVector(32, [1, 4, 7, 20, 21], [1.0, 2.0, 3.0, 4.0, 5.0])
    b = BitVector(32, [4, 7, 9, 21])
    scanner = BitVectorScanner()
    elements = scanner.scan(a, b, ScanMode.INTERSECT)
    print("\nBit-vector scanner (intersection of two sparse vectors)")
    for element in elements:
        print(
            f"  j={element.dense_index:2d}  jA={element.index_a}  "
            f"jB={element.index_b}  j'={element.ordinal}"
        )
    timing = scanner.timing(a, b, ScanMode.INTERSECT)
    print(f"  scanner cycles: {timing.cycles}, elements/cycle: {timing.elements_per_cycle:.1f}")


def run_spmv(csr: CSRMatrix) -> None:
    """Run CSR SpMV, validate it, and cost it on several platforms."""
    vector = np.random.default_rng(0).random(csr.shape[1])
    run = spmv_csr(csr, vector, dataset="quickstart")
    assert np.allclose(run.output, reference_spmv(csr, vector)), "functional mismatch"
    print("\nCSR SpMV validated against the dense reference")

    for memory in (MemoryTechnology.HBM2E, MemoryTechnology.DDR4):
        platform = default_platform(memory)
        cycles, breakdown = estimate_cycles(run.profile, platform)
        print(f"  {platform.name:>15}: {cycles:12.0f} cycles "
              f"({breakdown.activity_factor:.0%} active)")

    capstan = run_metrics(run.profile)
    cpu_metrics = cpu.run_metrics(run.profile)
    gpu_metrics = gpu.run_metrics(run.profile)
    print(f"  speedup vs CPU model: {capstan.speedup_over(cpu_metrics):6.1f}x")
    print(f"  speedup vs GPU model: {capstan.speedup_over(gpu_metrics):6.1f}x")


def main() -> None:
    csr = build_formats()
    demonstrate_scanner()
    run_spmv(csr)


if __name__ == "__main__":
    main()
