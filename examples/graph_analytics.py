"""Graph analytics on Capstan: PageRank, BFS, and SSSP.

The paper's graph workloads (Table 2) exercise the features dense RDAs
lack: bitset frontiers scanned by the sparse loop header, atomic
read-modify-write updates (test-and-set, write-if-zero,
min-report-changed), and per-level synchronization that stresses the
on-chip network. This example runs all three kernels on a synthetic
stand-in for the ``web-Stanford`` dataset, validates them, and prints the
Figure 7-style stall breakdown that explains where the cycles go.

Run it with ``python examples/graph_analytics.py``.
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    bfs,
    estimate_cycles,
    pagerank_edge,
    pagerank_pull,
    reference_bfs_levels,
    reference_pagerank,
    reference_sssp,
    sssp,
)
from repro.eval import best_source
from repro.sim.stats import STALL_CATEGORIES
from repro.workloads import load_dataset


def main() -> None:
    dataset = load_dataset("web-Stanford", scale=1 / 128)
    graph = dataset.matrix
    print(dataset.scaled_description)
    source = best_source(graph)

    # --- PageRank: pull vs edge-centric ----------------------------------- #
    pull = pagerank_pull(graph, iterations=3, dataset=dataset.name)
    edge = pagerank_edge(graph, iterations=3, dataset=dataset.name)
    reference = reference_pagerank(graph, iterations=3)
    assert np.allclose(pull.output, reference) and np.allclose(edge.output, reference)
    print("\nPageRank validated (pull and edge variants agree with the reference)")
    for name, run in (("PR-Pull", pull), ("PR-Edge", edge)):
        cycles, breakdown = estimate_cycles(run.profile)
        print(f"  {name}: {cycles:12.0f} cycles, active {breakdown.activity_factor:.0%}, "
              f"SRAM-conflict share {breakdown.fractions()['sram']:.0%}")

    # --- BFS --------------------------------------------------------------- #
    bfs_run = bfs(graph, source, dataset=dataset.name)
    levels = reference_bfs_levels(graph, source)
    reached = int((bfs_run.output >= 0).sum())
    assert reached == int((levels >= 0).sum())
    cycles, breakdown = estimate_cycles(bfs_run.profile)
    print(f"\nBFS from vertex {source}: reached {reached} vertices in "
          f"{int(bfs_run.profile.extra['levels'])} levels, {cycles:.0f} cycles")
    print("  breakdown: " + ", ".join(
        f"{name}={breakdown.fractions()[name]:.0%}" for name in STALL_CATEGORIES
        if breakdown.fractions()[name] > 0.01
    ))

    # --- SSSP --------------------------------------------------------------- #
    sssp_run = sssp(graph, source, dataset=dataset.name)
    reference_dist = reference_sssp(graph, source)
    finite = np.isfinite(reference_dist)
    assert np.allclose(sssp_run.output[finite], reference_dist[finite])
    cycles, breakdown = estimate_cycles(sssp_run.profile)
    print(f"\nSSSP: {int(sssp_run.profile.extra['relaxations'])} edge relaxations over "
          f"{int(sssp_run.profile.extra['rounds'])} rounds, {cycles:.0f} cycles")
    print(f"  network share (un-pipelinable rounds): {breakdown.fractions()['network']:.0%}")


if __name__ == "__main__":
    main()
