"""Gustavson sparse matrix-matrix multiply and M+M (Section 2.4).

This example reproduces the paper's SpMSpM case study: row-product
(Gustavson's) SpMSpM built from bit-vector unions/intersections and
compressed-tile accumulation, plus sparse matrix addition with bit-tree
operands. Both are validated against scipy references and compared against
the MatRaptor ASIC model (Table 13's largest Capstan win).

Run it with ``python examples/spmspm_gustavson.py``.
"""

from __future__ import annotations

import numpy as np

from repro.apps import estimate_cycles, reference_add, reference_spmspm, sparse_add, spmspm
from repro.apps.timing import default_platform
from repro.baselines.asic import matraptor_runtime_seconds
from repro.formats import to_csr
from repro.workloads import load_dataset


def main() -> None:
    # The paper's SpMSpM datasets are small enough to run at full size.
    dataset = load_dataset("qc324", scale=1.0)
    a = to_csr(dataset.matrix)
    b = to_csr(load_dataset("qc324", scale=1.0, seed=77).matrix)
    print(dataset.scaled_description)

    # --- SpMSpM -------------------------------------------------------------- #
    run = spmspm(a, b, dataset=dataset.name)
    assert np.allclose(run.output, reference_spmspm(a, b)), "SpMSpM mismatch"
    cycles, breakdown = estimate_cycles(run.profile)
    platform = default_platform()
    capstan_seconds = cycles / (platform.config.clock_ghz * 1e9)
    matraptor_seconds = matraptor_runtime_seconds(run.profile)
    print("\nGustavson SpMSpM (C = A @ B)")
    print(f"  multiplies           : {int(run.profile.extra['multiplies'])}")
    print(f"  output non-zeros     : {int(run.profile.extra['output_nnz'])}")
    print(f"  Capstan cycles       : {cycles:.0f} ({breakdown.activity_factor:.0%} active)")
    print(f"  scanner share        : {breakdown.fractions()['scan']:.0%}")
    print(f"  speedup vs MatRaptor : {matraptor_seconds / capstan_seconds:.1f}x "
          "(paper reports ~18x at 1.6 GHz)")

    # --- M+M with bit-tree iteration ----------------------------------------- #
    hypersparse = to_csr(load_dataset("ckt11752_dc_1", scale=1 / 16).matrix)
    other = to_csr(load_dataset("ckt11752_dc_1", scale=1 / 16, seed=31).matrix)
    flat = sparse_add(hypersparse, other, use_bittree=False)
    tree = sparse_add(hypersparse, other, use_bittree=True)
    assert np.allclose(tree.output.to_dense(), reference_add(hypersparse, other)), "M+M mismatch"
    flat_cycles, _ = estimate_cycles(flat.profile)
    tree_cycles, _ = estimate_cycles(tree.profile)
    print("\nSparse matrix addition (M+M) on a <0.1%-dense circuit matrix")
    print(f"  union iterations     : {int(tree.profile.extra['union_iterations'])}")
    print(f"  flat bit-vector scan : {flat.profile.scan_cycles} scanner cycles")
    print(f"  bit-tree scan        : {tree.profile.scan_cycles} scanner cycles")
    print(f"  end-to-end cycles    : {flat_cycles:.0f} (flat) vs {tree_cycles:.0f} (bit-tree)")


if __name__ == "__main__":
    main()
