"""Design-space exploration with the batched costing layer.

The paper's architectural choices -- 16 lanes, 16 banks, a 16-entry reorder
queue, address hashing, the Mrg-1 shuffle network -- each come from a
sensitivity study around one fixed design point. This example opens the
configuration space instead: :func:`repro.runtime.dse.explore` sweeps
structural axes, costs every workload profile under every variant in one
vectorized :func:`~repro.apps.timing.estimate_cycles_batch` call, and
extracts the cycles-vs-area Pareto frontier.

Profiles are collected once (cached on disk) and SpMU microbenchmark
throughputs persist in the content-addressed throughput store, so re-runs
and follow-up sweeps are fast. The same exploration is available from the
command line as ``repro-eval dse --axis lanes=8,16,32 --axis banks=8,16,32``.

Run it with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from repro.config import MemoryTechnology
from repro.runtime.dse import DSEResult, explore
from repro.runtime.registry import RunContext

#: Small scale so the example finishes in seconds.
CONTEXT = RunContext(scale=1 / 256)

#: Applications with contrasting bottlenecks: SRAM-bound SpMV, network- and
#: DRAM-bound BFS.
APPS = ("spmv-csr", "bfs")


def print_result(title: str, result: DSEResult) -> None:
    frontier = set(result.frontier())
    print(f"\n{title}")
    width = max(len(name) for name in result.names)
    print(f"  {'variant':<{width}}  {'gmean cycles':>12}  {'area mm^2':>9}")
    for row in sorted(result.rows(), key=lambda r: r["gmean_cycles"]):
        marker = " *" if row["name"] in frontier else ""
        print(
            f"  {row['name']:<{width}}  {row['gmean_cycles']:>12.4g}  "
            f"{row['area_mm2']:>9.1f}{marker}"
        )
    print(f"  Pareto frontier (*): {', '.join(result.frontier())}")


def structural_sweep() -> None:
    """Lanes x banks: how wide should the machine and its memories be?"""
    result = explore(apps=APPS, context=CONTEXT, lanes=(8, 16, 32), banks=(8, 16, 32))
    print_result("Structural design space (lanes x banks)", result)


def scheduler_sweep() -> None:
    """Queue depth x memory: scheduling window against memory technology."""
    result = explore(
        apps=APPS,
        context=CONTEXT,
        queue_depth=(8, 16, 32),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
    )
    print_result("Scheduler / memory design space (queue depth x memory)", result)


def policy_sweep() -> None:
    """Bank mapping x allocator: the Table 9 policy space, batched."""
    result = explore(
        apps=APPS,
        context=CONTEXT,
        bank_mapping=("hash", "linear"),
        allocator=("separable", "greedy", "arbitrated"),
    )
    print_result("SpMU policy space (bank mapping x allocator)", result)


def main() -> None:
    structural_sweep()
    scheduler_sweep()
    policy_sweep()


if __name__ == "__main__":
    main()
