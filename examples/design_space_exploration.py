"""Design-space exploration with the component models.

The paper's architectural choices -- a 16-entry reorder queue with three
allocation priorities, a 256-bit/16-output scanner, the Mrg-1 shuffle
network, and address hashing -- each come from a sensitivity study. This
example re-runs the microbenchmark side of those studies so a designer can
explore alternative points:

* SpMU bank utilization vs queue depth and priorities (Table 4),
* ordering-mode throughput (Figure 4 / Table 10),
* scanner area vs width (Table 5) next to its performance impact,
* chip area as sparse support is provisioned on a fraction of units.

Run it with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import dataclasses

from repro.config import CapstanConfig, SpMUConfig
from repro.core import (
    OrderingMode,
    area_overhead_vs_plasticine,
    capstan_area,
    measure_bank_utilization,
    scanner_area_um2,
    scheduler_area_um2,
)


def sweep_spmu() -> None:
    print("SpMU reorder-queue design space (random-access bank utilization)")
    print(f"  {'depth':>6} {'priorities':>10} {'util %':>8} {'area um^2':>10}")
    for depth in (8, 16, 32):
        for priorities in (1, 3):
            config = SpMUConfig(queue_depth=depth, allocator_priorities=priorities)
            utilization = measure_bank_utilization(config, vectors=100)
            area = scheduler_area_um2(depth, config.crossbar_inputs)
            print(f"  {depth:>6} {priorities:>10} {100 * utilization:>8.1f} {area:>10.0f}")


def sweep_ordering() -> None:
    print("\nOrdering-mode throughput (the cost of stricter memory semantics)")
    for mode in (
        OrderingMode.UNORDERED,
        OrderingMode.ADDRESS_ORDERED,
        OrderingMode.FULLY_ORDERED,
        OrderingMode.ARBITRATED,
    ):
        utilization = measure_bank_utilization(SpMUConfig(), ordering=mode, vectors=100)
        print(f"  {mode.value:>16}: {100 * utilization:5.1f}% of bank bandwidth")


def sweep_scanner() -> None:
    print("\nScanner area (um^2) vs width and output vectorization")
    for width in (128, 256, 512):
        line = "  ".join(f"{scanner_area_um2(width, out):8.0f}" for out in (1, 4, 16))
        print(f"  {width:>4} bits: {line}   (outputs 1 / 4 / 16)")
    print("  The paper picks 256x16: 54% smaller than 512x16, negligible slowdown (Figure 6).")


def sweep_provisioning() -> None:
    print("\nArea overhead vs fraction of units with sparse support")
    for fraction in (1.0, 0.5, 0.25):
        config = dataclasses.replace(CapstanConfig(), sparse_fraction=fraction)
        overhead = area_overhead_vs_plasticine(config)
        total = capstan_area(config).total_mm2
        print(f"  {fraction:4.0%} sparse units: +{overhead:5.1%} area over Plasticine "
              f"({total:.1f} mm^2)")


def main() -> None:
    sweep_spmu()
    sweep_ordering()
    sweep_scanner()
    sweep_provisioning()


if __name__ == "__main__":
    main()
