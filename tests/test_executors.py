"""Executor conformance suite: one contract, three backends.

Every test in ``TestExecutorConformance`` runs identically against the
local, pool, and subprocess executors -- same assertions for ordering,
error propagation, retry accounting, timeouts, stop-on-error, and
cancellation. The probe unit kind (``repro.runtime.jobs``) makes attempt
counts observable across process boundaries by dropping one marker file
per execution into a scratch directory.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime.executors import (
    EXECUTORS,
    LocalExecutor,
    PoolExecutor,
    SubprocessExecutor,
    create_executor,
)
from repro.runtime.executors.base import (
    OUTCOME_CANCELLED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
)


def _probe(value, **extra):
    payload = {"kind": "probe", "value": value}
    payload.update(extra)
    return payload


def _attempt_markers(scratch) -> int:
    return len(list(scratch.glob("attempt-*"))) if scratch.is_dir() else 0


@pytest.fixture(params=["local", "pool", "subprocess"])
def executor_name(request):
    return request.param


class TestExecutorConformance:
    def test_results_in_input_order(self, executor_name):
        # Staggered sleeps make completion order differ from input order
        # on the parallel backends; the outcome list must not.
        payloads = [
            _probe(0, sleep_s=0.3),
            _probe(1, sleep_s=0.0),
            _probe(2, sleep_s=0.15),
            _probe(3, sleep_s=0.0),
        ]
        executor = create_executor(executor_name, workers=4)
        outcomes = executor.run_units(payloads)
        assert [o.status for o in outcomes] == [OUTCOME_OK] * 4
        assert [o.result["value"] for o in outcomes] == [0, 2, 4, 6]
        assert all(o.attempts == 1 for o in outcomes)
        assert all(o.duration_s > 0 for o in outcomes)

    def test_error_propagates_with_summary(self, executor_name):
        executor = create_executor(executor_name, workers=2)
        outcomes = executor.run_units([_probe(1), _probe(2, boom="exploded")])
        assert outcomes[0].status == OUTCOME_OK
        assert outcomes[1].status == OUTCOME_ERROR
        assert "exploded" in outcomes[1].error
        # The failure site travels too: an exception object in process,
        # a formatted traceback across process boundaries.
        assert outcomes[1].exception is not None or outcomes[1].traceback

    def test_retries_are_bounded_and_counted(self, executor_name, tmp_path):
        scratch = tmp_path / "retry"
        executor = create_executor(executor_name, workers=1, retries=2, backoff_s=0.01)
        outcomes = executor.run_units(
            [_probe(5, fail_times=2, scratch=str(scratch))]
        )
        assert outcomes[0].status == OUTCOME_OK
        assert outcomes[0].attempts == 3
        assert _attempt_markers(scratch) == 3

    def test_retries_exhausted_reports_error(self, executor_name, tmp_path):
        scratch = tmp_path / "exhaust"
        executor = create_executor(executor_name, workers=1, retries=1, backoff_s=0.01)
        outcomes = executor.run_units(
            [_probe(5, fail_times=10, scratch=str(scratch))]
        )
        assert outcomes[0].status == OUTCOME_ERROR
        assert outcomes[0].attempts == 2
        assert _attempt_markers(scratch) == 2

    def test_timeout_reported(self, executor_name):
        executor = create_executor(executor_name, workers=1, timeout_s=0.3)
        outcomes = executor.run_units([_probe(1, sleep_s=2.0), _probe(2)])
        assert outcomes[0].status == OUTCOME_TIMEOUT
        assert "timeout" in outcomes[0].error
        # The well-behaved unit still completes.
        assert outcomes[1].status == OUTCOME_OK
        assert outcomes[1].result["value"] == 4

    def test_stop_on_error_cancels_outstanding(self, executor_name):
        executor = create_executor(executor_name, workers=1)
        payloads = [_probe(1), _probe(2, boom="first failure"), _probe(3), _probe(4)]
        outcomes = executor.run_units(payloads, stop_on_error=True)
        assert outcomes[0].status == OUTCOME_OK
        assert outcomes[1].status == OUTCOME_ERROR
        assert {o.status for o in outcomes[2:]} == {OUTCOME_CANCELLED}
        assert all(o.attempts == 0 for o in outcomes[2:])

    def test_cancel_mid_run(self, executor_name, tmp_path):
        scratch = tmp_path / "cancel"
        executor = create_executor(executor_name, workers=1)
        payloads = [_probe(i, sleep_s=0.4, scratch=str(scratch)) for i in range(8)]

        # Cancel once the second unit has *started* (its attempt marker
        # appears); with one worker that means the first unit finished.
        # A wall-clock timer would race worker/pool startup cost.
        def cancel_after_second_start() -> None:
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                if _attempt_markers(scratch) >= 2:
                    executor.cancel()
                    return
                time.sleep(0.02)

        watcher = threading.Thread(target=cancel_after_second_start, daemon=True)
        watcher.start()
        started = time.perf_counter()
        outcomes = executor.run_units(payloads)
        elapsed = time.perf_counter() - started
        watcher.join(timeout=5)
        # Serial 8 x 0.4s would take >3.2s of sleep alone; cancellation
        # after ~2 units must cut that short even with startup overhead.
        assert elapsed < 3.0
        statuses = [o.status for o in outcomes]
        assert OUTCOME_CANCELLED in statuses
        assert statuses[0] == OUTCOME_OK  # work before the cancel stands
        assert len(outcomes) == len(payloads)

    def test_executes_real_profile_unit(self, executor_name, tmp_path):
        # The same payload a sharded sweep persists: one registry cell,
        # cached under an explicit root.
        from repro.apps.profile import WorkloadProfile
        from repro.runtime.jobs import context_to_dict
        from repro.runtime.registry import RunContext

        payload = {
            "kind": "profile",
            "app": "spmv-csr",
            "dataset": "ckt11752_dc_1",
            "context": context_to_dict(RunContext(scale=1 / 512)),
            "cache_root": str(tmp_path / "cache"),
        }
        executor = create_executor(executor_name, workers=1)
        outcomes = executor.run_units([payload])
        assert outcomes[0].status == OUTCOME_OK
        assert isinstance(outcomes[0].result, WorkloadProfile)
        assert len(list((tmp_path / "cache").glob("*.json"))) == 1


class TestExecutorRegistry:
    def test_factory_names(self):
        assert set(EXECUTORS) == {"local", "pool", "subprocess"}
        assert isinstance(create_executor("local"), LocalExecutor)
        assert isinstance(create_executor("pool", workers=3), PoolExecutor)
        assert isinstance(create_executor("subprocess"), SubprocessExecutor)

    def test_unknown_name_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown executor"):
            create_executor("ssh-someday")

    def test_options_forwarded(self):
        executor = create_executor("pool", workers=7, timeout_s=1.5, retries=2)
        assert executor.workers == 7
        assert executor.timeout_s == 1.5
        assert executor.retries == 2

    def test_subprocess_worker_crash_surfaces_as_error(self):
        # A worker whose process dies mid-unit must not hang the run.
        executor = SubprocessExecutor(workers=1, command=["false"])
        outcomes = executor.run_units([_probe(1)])
        assert outcomes[0].status == OUTCOME_ERROR


class TestBackoffJitter:
    def test_seeded_jitter_is_deterministic(self):
        first = LocalExecutor(backoff_s=0.1, seed=42)
        second = LocalExecutor(backoff_s=0.1, seed=42)
        other = LocalExecutor(backoff_s=0.1, seed=43)
        attempts = list(range(1, 8))
        schedule = [first._backoff_delay(n) for n in attempts]
        assert schedule == [second._backoff_delay(n) for n in attempts]
        assert schedule != [other._backoff_delay(n) for n in attempts]

    def test_full_jitter_stays_under_the_exponential_cap(self):
        executor = LocalExecutor(backoff_s=0.1, seed=7)
        for attempt in range(1, 10):
            cap = 0.1 * 2 ** (attempt - 1)
            assert 0.0 <= executor._backoff_delay(attempt) <= cap

    def test_zero_jitter_is_pure_exponential(self):
        executor = LocalExecutor(backoff_s=0.05, jitter=0.0)
        assert [executor._backoff_delay(n) for n in (1, 2, 3)] == [0.05, 0.1, 0.2]

    def test_partial_jitter_keeps_a_deterministic_floor(self):
        executor = LocalExecutor(backoff_s=0.1, jitter=0.5, seed=3)
        for attempt in range(1, 8):
            cap = 0.1 * 2 ** (attempt - 1)
            delay = executor._backoff_delay(attempt)
            assert cap * 0.5 <= delay <= cap

    def test_jitter_clamped_to_unit_interval(self):
        assert LocalExecutor(jitter=7.0).jitter == 1.0
        assert LocalExecutor(jitter=-1.0).jitter == 0.0


class TestErrorClassification:
    def test_permanent_error_skips_retries(self, executor_name):
        # An unknown unit kind raises UnitSpecError on every worker in
        # existence; the retry budget must not be spent on it.
        executor = create_executor(executor_name, workers=1, retries=3, backoff_s=0.01)
        outcomes = executor.run_units([{"kind": "no_such_kind"}])
        assert outcomes[0].status == OUTCOME_ERROR
        assert outcomes[0].attempts == 1
        assert outcomes[0].classification == "permanent"
        assert "unknown work-unit kind" in outcomes[0].error

    def test_transient_failures_keep_their_retries(self, executor_name, tmp_path):
        scratch = tmp_path / "transient"
        executor = create_executor(executor_name, workers=1, retries=1, backoff_s=0.01)
        outcomes = executor.run_units(
            [_probe(1, fail_times=10, scratch=str(scratch))]
        )
        assert outcomes[0].status == OUTCOME_ERROR
        assert outcomes[0].attempts == 2
        assert outcomes[0].classification == "transient"

    def test_ok_outcomes_carry_no_classification(self, executor_name):
        executor = create_executor(executor_name, workers=1)
        outcomes = executor.run_units([_probe(1)])
        assert outcomes[0].status == OUTCOME_OK
        assert outcomes[0].classification is None


class TestCancellationRaces:
    def test_cancel_during_backoff_sleep(self):
        # jitter=0 pins the first backoff at 30s; the cancel must wake the
        # sleeper immediately instead of letting it doze through.
        executor = LocalExecutor(retries=5, backoff_s=30.0, jitter=0.0)
        timer = threading.Timer(0.3, executor.cancel)
        timer.start()
        started = time.perf_counter()
        outcomes = executor.run_units([_probe(1, boom="always")])
        elapsed = time.perf_counter() - started
        timer.cancel()
        assert elapsed < 5.0
        assert outcomes[0].status == OUTCOME_CANCELLED
        assert outcomes[0].attempts == 1  # the pre-cancel attempt stands

    def test_cancel_mid_subprocess_handshake(self):
        # A worker command that never answers the warmup probe: cancel
        # must kill it and return promptly, not wait out the warmup cap.
        import sys as _sys

        executor = SubprocessExecutor(
            workers=1, command=[_sys.executable, "-c", "import time; time.sleep(600)"]
        )
        timer = threading.Timer(0.5, executor.cancel)
        timer.start()
        started = time.perf_counter()
        outcomes = executor.run_units([_probe(1), _probe(2)])
        elapsed = time.perf_counter() - started
        timer.cancel()
        assert elapsed < 30.0
        assert {o.status for o in outcomes} == {OUTCOME_CANCELLED}
