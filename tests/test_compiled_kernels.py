"""The optional compiled backend: backend lattice + scalar-kernel identity.

Three contracts:

* the backend seam (:mod:`repro._compiled`) resolves ``None`` / aliases /
  ``numba`` correctly and falls back to numpy with a one-time warning when
  numba is absent;
* the scalar per-cycle SpMU kernel (:mod:`repro.core.spmu_kernel`) is
  stat-for-stat identical to the lock-step array engine -- pinned on the
  plain-Python rendition, so the contract holds with or without numba;
* the packed-word loop kernels (:mod:`repro.formats.packed`) are
  element-for-element identical to the vectorized numpy kernels, and the
  ``_use_compiled`` dispatch routes the public functions through them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _compiled
from repro._compiled import HAS_NUMBA, njit, resolve_backend, set_default_backend
from repro.config import SpMUConfig
from repro.core.ordering import OrderingMode
from repro.core.spmu import RequestTrace, SpMUVariant, random_request_vectors
from repro.core.spmu_array import (
    _simulate_scheduled_compiled,
    _simulate_scheduled_lockstep,
    prepare_trace,
    simulate_variants,
)
from repro.errors import ConfigurationError
from repro.formats import packed

SCHEDULED_ORDERINGS = (OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED)


@pytest.fixture
def clean_backend(monkeypatch):
    """Default backend restored and fallback warnings re-armed per test."""
    monkeypatch.setattr(_compiled, "_DEFAULT_BACKEND", "numpy")
    monkeypatch.setattr(_compiled, "_WARNED_FALLBACKS", set())


class TestBackendLattice:
    def test_default_is_numpy(self, clean_backend):
        assert resolve_backend(None) == "numpy"

    def test_aliases_map_to_numpy(self, clean_backend):
        assert resolve_backend("array") == "numpy"
        assert resolve_backend("vectorized") == "numpy"

    def test_unknown_backend_rejected(self, clean_backend):
        with pytest.raises(ConfigurationError):
            resolve_backend("cuda")
        with pytest.raises(ConfigurationError):
            set_default_backend("reference")

    def test_set_default_backend_roundtrip(self, clean_backend):
        set_default_backend("numba")
        assert _compiled.default_backend() == "numba"
        set_default_backend("numpy")
        assert _compiled.default_backend() == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="fallback only exists without numba")
    def test_numba_fallback_warns_once_per_feature(self, clean_backend):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("numba", feature="feature-a") == "numpy"
        # Second resolve of the same feature is silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba", feature="feature-a") == "numpy"
        with pytest.warns(RuntimeWarning):
            assert resolve_backend("numba", feature="feature-b") == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="shim only active without numba")
    def test_njit_is_identity_without_numba(self):
        def kernel(x):
            return x + 1

        assert njit(kernel) is kernel
        assert njit(cache=True)(kernel) is kernel


def _scheduled_pair(ordering, allocator, depth, crossbar, seed, count=4, lanes=16):
    variant = SpMUVariant(
        ordering=ordering,
        allocator_kind=allocator,
        config=SpMUConfig(queue_depth=depth, crossbar_inputs=crossbar),
    )
    trace = RequestTrace.from_vectors(
        random_request_vectors(count, lanes=lanes, address_space=512, seed=seed)
    )
    return variant, prepare_trace(trace)


def _stats(results):
    return [
        (
            r.cycles,
            r.requests,
            r.elided_reads,
            r.bank_busy_cycles,
            r.vectors,
            r.stall_cycles_ordering,
        )
        for r in results
    ]


class TestScheduledKernelEquivalence:
    @pytest.mark.parametrize("ordering", SCHEDULED_ORDERINGS, ids=lambda o: o.value)
    @pytest.mark.parametrize("allocator", ("separable", "greedy"))
    @given(
        depth=st.sampled_from((1, 4, 16)),
        crossbar=st.sampled_from((16, 32)),
        seed=st.integers(min_value=0, max_value=2_000),
        count=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_kernel_matches_lockstep(
        self, ordering, allocator, depth, crossbar, seed, count
    ):
        variant, prep = _scheduled_pair(
            ordering, allocator, depth, crossbar, seed, count=count
        )
        lockstep = _simulate_scheduled_lockstep([variant], [prep], False, False)
        compiled = _simulate_scheduled_compiled([variant], [prep])
        assert _stats(compiled) == _stats(lockstep)

    def test_mixed_grid_matches(self):
        variants, preps = [], []
        for seed, (ordering, allocator, depth) in enumerate(
            [
                (OrderingMode.UNORDERED, "separable", 4),
                (OrderingMode.ADDRESS_ORDERED, "separable", 8),
                (OrderingMode.UNORDERED, "greedy", 16),
                (OrderingMode.ADDRESS_ORDERED, "greedy", 4),
            ]
        ):
            variant, prep = _scheduled_pair(ordering, allocator, depth, 32, seed)
            variants.append(variant)
            preps.append(prep)
        lockstep = _simulate_scheduled_lockstep(variants, preps, False, False)
        compiled = _simulate_scheduled_compiled(variants, preps)
        assert _stats(compiled) == _stats(lockstep)

    def test_public_numba_backend_matches_default(self, clean_backend):
        variants, traces = [], []
        for seed, ordering in enumerate(SCHEDULED_ORDERINGS):
            variants.append(
                SpMUVariant(ordering=ordering, config=SpMUConfig(queue_depth=8))
            )
            traces.append(
                RequestTrace.from_vectors(
                    random_request_vectors(3, lanes=16, address_space=256, seed=seed)
                )
            )
        default = simulate_variants(variants, traces)
        if HAS_NUMBA:
            compiled = simulate_variants(variants, traces, backend="numba")
        else:
            with pytest.warns(RuntimeWarning, match="numba"):
                compiled = simulate_variants(variants, traces, backend="numba")
        assert _stats(compiled) == _stats(default)


@st.composite
def _packed_case(draw):
    length = draw(st.integers(min_value=1, max_value=400))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=length - 1),
            unique=True,
            max_size=length,
        )
    )
    return length, np.sort(np.asarray(indices, dtype=np.int64))


class TestPackedKernelEquivalence:
    @given(case=_packed_case(), word_bits=st.sampled_from((32, 64)))
    @settings(max_examples=60, deadline=None)
    def test_pack_indices_kernel(self, case, word_bits):
        length, indices = case
        want = packed.pack_indices(indices, length, word_bits)
        got = packed._pack_indices_kernel(
            indices, packed.word_count(length, word_bits), word_bits
        )
        assert np.array_equal(want, got)

    @given(case=_packed_case())
    @settings(max_examples=60, deadline=None)
    def test_popcount_and_rank_kernels(self, case):
        length, indices = case
        words = packed.pack_indices(indices, length)
        assert np.array_equal(packed.popcount(words), packed._popcount_kernel(words))
        positions = np.arange(length, dtype=np.int64)
        assert np.array_equal(
            packed.rank(words, positions),
            packed._rank_kernel(np.ascontiguousarray(words), positions),
        )

    @given(case=_packed_case(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_intersect_union_kernels(self, case, seed):
        length, indices = case
        a = packed.pack_indices(indices, length)
        b = packed.pack_mask(np.random.default_rng(seed).random(length) < 0.4)
        assert np.array_equal(
            packed.intersect_words(a, b), packed._intersect_kernel(a, b)
        )
        assert np.array_equal(packed.union_words(a, b), packed._union_kernel(a, b))

    def test_dispatch_routes_through_kernels(self, clean_backend, monkeypatch):
        """With the numba default selected (and the import pretending to be
        available), the public functions route through the loop kernels and
        still match the numpy results."""
        monkeypatch.setattr(packed, "HAS_NUMBA", True)
        rng = np.random.default_rng(5)
        indices = np.sort(rng.choice(200, size=60, replace=False)).astype(np.int64)
        other = packed.pack_mask(rng.random(200) < 0.3)
        numpy_words = packed.pack_indices(indices, 200)
        numpy_pop = packed.popcount(numpy_words)
        numpy_rank = packed.rank(numpy_words, np.arange(200, dtype=np.int64))
        numpy_and = packed.intersect_words(numpy_words, other)
        numpy_or = packed.union_words(numpy_words, other)

        set_default_backend("numba")
        assert packed._use_compiled()
        assert np.array_equal(packed.pack_indices(indices, 200), numpy_words)
        assert np.array_equal(packed.popcount(numpy_words), numpy_pop)
        assert np.array_equal(
            packed.rank(numpy_words, np.arange(200, dtype=np.int64)), numpy_rank
        )
        assert np.array_equal(packed.intersect_words(numpy_words, other), numpy_and)
        assert np.array_equal(packed.union_words(numpy_words, other), numpy_or)

    def test_dispatch_off_by_default(self, clean_backend):
        assert not packed._use_compiled()


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestJittedKernels:
    """Only runs in the optional-dependency CI job (numba installed)."""

    def test_spmu_kernel_is_jitted_and_matches(self):
        from repro.core import spmu_kernel

        assert hasattr(spmu_kernel.simulate_scheduled_single, "py_func")
        variant, prep = _scheduled_pair(
            OrderingMode.ADDRESS_ORDERED, "separable", 8, 32, seed=3
        )
        lockstep = _simulate_scheduled_lockstep([variant], [prep], False, False)
        compiled = _simulate_scheduled_compiled([variant], [prep])
        assert _stats(compiled) == _stats(lockstep)

    def test_packed_kernels_are_jitted(self):
        assert hasattr(packed._popcount_kernel, "py_func")
        words = packed.pack_indices(np.asarray([0, 5, 63, 64]), 128)
        assert np.array_equal(packed._popcount_kernel(words), packed.popcount(words))
