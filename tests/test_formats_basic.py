"""Tests for the dense, CSR, CSC, and COO formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DenseMatrix,
    DenseVector,
)


class TestDenseMatrix:
    def test_shape_and_nnz(self, small_dense):
        matrix = DenseMatrix(small_dense)
        assert matrix.shape == (4, 4)
        assert matrix.nnz == 6

    def test_zeros_constructor(self):
        matrix = DenseMatrix.zeros((3, 5))
        assert matrix.shape == (3, 5)
        assert matrix.nnz == 0

    def test_to_dense_roundtrip(self, small_dense):
        matrix = DenseMatrix(small_dense)
        assert np.array_equal(matrix.to_dense(), small_dense)

    def test_iter_nonzeros(self, small_dense):
        matrix = DenseMatrix(small_dense)
        triples = list(matrix.iter_nonzeros())
        assert len(triples) == 6
        assert (0, 0, 1.0) in triples

    def test_density(self, small_dense):
        matrix = DenseMatrix(small_dense)
        assert matrix.density == pytest.approx(6 / 16)

    def test_rejects_1d(self):
        with pytest.raises(FormatError):
            DenseMatrix(np.arange(4.0))

    def test_data_is_read_only(self, small_dense):
        matrix = DenseMatrix(small_dense)
        with pytest.raises(ValueError):
            matrix.data[0, 0] = 9.0


class TestDenseVector:
    def test_basic_properties(self):
        vector = DenseVector(np.array([0.0, 1.0, 0.0, 2.0]))
        assert vector.length == 4
        assert vector.nnz == 2
        assert vector.density == pytest.approx(0.5)

    def test_nonzero_indices(self):
        vector = DenseVector(np.array([0.0, 1.0, 0.0, 2.0]))
        assert vector.nonzero_indices().tolist() == [1, 3]

    def test_zeros(self):
        assert DenseVector.zeros(7).nnz == 0

    def test_getitem_and_len(self):
        vector = DenseVector(np.array([5.0, 0.0, 3.0]))
        assert len(vector) == 3
        assert vector[2] == 3.0

    def test_rejects_2d(self):
        with pytest.raises(FormatError):
            DenseVector(np.zeros((2, 2)))


class TestCSRMatrix:
    def test_from_dense_roundtrip(self, small_dense):
        matrix = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(matrix.to_dense(), small_dense)

    def test_nnz_and_shape(self, small_csr):
        assert small_csr.nnz == 6
        assert small_csr.shape == (4, 4)

    def test_row_lengths(self, small_csr):
        assert small_csr.row_lengths().tolist() == [2, 0, 3, 1]

    def test_row_slice(self, small_csr):
        cols, values = small_csr.row_slice(2)
        assert cols.tolist() == [0, 1, 3]
        assert values.tolist() == [3.0, 4.0, 5.0]

    def test_row_bitvector(self, small_csr):
        bv = small_csr.row_bitvector(0)
        assert bv.length == 4
        assert bv.indices.tolist() == [0, 2]

    def test_from_coo_arrays_sums_duplicates(self):
        matrix = CSRMatrix.from_coo_arrays(
            (2, 2),
            np.array([0, 0, 1]),
            np.array([1, 1, 0]),
            np.array([1.0, 2.0, 3.0]),
        )
        assert matrix.to_dense()[0, 1] == 3.0
        assert matrix.nnz == 2

    def test_transpose(self, small_csr, small_dense):
        assert np.array_equal(small_csr.transpose_to_csr().to_dense(), small_dense.T)

    def test_iter_nonzeros_sorted(self, small_csr):
        triples = list(small_csr.iter_nonzeros())
        rows = [r for r, _, _ in triples]
        assert rows == sorted(rows)

    def test_invalid_pointers_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_out_of_range_column_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))

    def test_unsorted_row_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), np.array([0, 2]), np.array([3, 1]), np.array([1.0, 2.0]))

    def test_storage_bytes(self, small_csr):
        assert small_csr.storage_bytes() == 4 * (5 + 6 + 6)

    def test_row_out_of_range(self, small_csr):
        with pytest.raises(FormatError):
            small_csr.row_slice(10)


class TestCSCMatrix:
    def test_from_dense_roundtrip(self, small_dense):
        matrix = CSCMatrix.from_dense(small_dense)
        assert np.array_equal(matrix.to_dense(), small_dense)

    def test_col_lengths(self, small_csc):
        assert small_csc.col_lengths().tolist() == [2, 2, 1, 1]

    def test_col_slice(self, small_csc):
        rows, values = small_csc.col_slice(1)
        assert rows.tolist() == [2, 3]
        assert values.tolist() == [4.0, 6.0]

    def test_col_bitvector(self, small_csc):
        bv = small_csc.col_bitvector(0)
        assert bv.indices.tolist() == [0, 2]

    def test_from_coo_matches_dense(self, random_dense_matrix):
        rows, cols = np.nonzero(random_dense_matrix)
        values = random_dense_matrix[rows, cols]
        matrix = CSCMatrix.from_coo_arrays(random_dense_matrix.shape, rows, cols, values)
        assert np.allclose(matrix.to_dense(), random_dense_matrix)

    def test_col_out_of_range(self, small_csc):
        with pytest.raises(FormatError):
            small_csc.col_slice(99)


class TestCOOMatrix:
    def test_from_dense_roundtrip(self, small_dense):
        matrix = COOMatrix.from_dense(small_dense)
        assert np.array_equal(matrix.to_dense(), small_dense)

    def test_canonical_sorted(self, small_coo):
        keys = small_coo.rows * 4 + small_coo.cols
        assert np.all(np.diff(keys) > 0)

    def test_duplicates_summed(self):
        matrix = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([0, 0]), np.array([1.0, 4.0])
        )
        assert matrix.nnz == 1
        assert matrix.to_dense()[0, 0] == 5.0

    def test_storage_bytes(self, small_coo):
        assert small_coo.storage_bytes() == 12 * small_coo.nnz

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_equality_across_formats(self, small_csr, small_coo):
        assert small_csr == small_coo
