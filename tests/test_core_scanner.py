"""Tests for the bit-vector / data scanners and the vectorized scan model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.scan_model import data_scan_cost, scan_cost_pair, scan_cost_single
from repro.config import ScannerConfig
from repro.core import BitVectorScanner, DataScanner, ScanMode
from repro.errors import SimulationError
from repro.formats import BitVector


class TestBitVectorScanner:
    def test_intersection_indices(self):
        a = BitVector(8, [1, 3, 5], [10.0, 11.0, 12.0])
        b = BitVector(8, [3, 4, 5], [20.0, 21.0, 22.0])
        elements = BitVectorScanner().scan(a, b, ScanMode.INTERSECT)
        assert [e.dense_index for e in elements] == [3, 5]
        assert [e.index_a for e in elements] == [1, 2]
        assert [e.index_b for e in elements] == [0, 2]
        assert [e.ordinal for e in elements] == [0, 1]

    def test_union_absent_side_is_minus_one(self):
        a = BitVector(6, [0, 2])
        b = BitVector(6, [2, 4])
        elements = BitVectorScanner().scan(a, b, ScanMode.UNION)
        assert [e.dense_index for e in elements] == [0, 2, 4]
        assert elements[0].index_b == -1
        assert elements[2].index_a == -1

    def test_single_operand(self):
        a = BitVector(5, [1, 4])
        elements = BitVectorScanner().scan(a, mode=ScanMode.SINGLE)
        assert [e.dense_index for e in elements] == [1, 4]
        assert all(e.index_b == -1 for e in elements)

    def test_count_matches_scan(self):
        a = BitVector(32, [1, 5, 9])
        b = BitVector(32, [5, 9, 30])
        scanner = BitVectorScanner()
        assert scanner.count(a, b, ScanMode.INTERSECT) == 2
        assert scanner.count(a, b, ScanMode.UNION) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            BitVectorScanner().scan(BitVector(4, [0]), BitVector(5, [0]))

    def test_timing_empty_chunks(self):
        config = ScannerConfig(bit_width=256, output_vectorization=16)
        vector = BitVector(1024, [700])
        timing = BitVectorScanner(config).timing(vector, mode=ScanMode.SINGLE)
        assert timing.bit_chunks == 4
        assert timing.empty_chunks == 3
        assert timing.cycles == 4

    def test_timing_output_limited(self):
        config = ScannerConfig(bit_width=256, output_vectorization=4)
        vector = BitVector(256, list(range(20)))
        timing = BitVectorScanner(config).timing(vector, mode=ScanMode.SINGLE)
        assert timing.cycles == 5  # ceil(20 / 4)
        assert timing.output_limited_cycles == 4

    def test_timing_elements_per_cycle(self):
        vector = BitVector(256, list(range(16)))
        timing = BitVectorScanner().timing(vector, mode=ScanMode.SINGLE)
        assert timing.elements_per_cycle == pytest.approx(16.0)


class TestDataScanner:
    def test_scan_finds_nonzeros(self):
        values = np.array([0.0, 3.0, 0.0, 5.0])
        assert DataScanner().scan(values) == [(1, 3.0), (3, 5.0)]

    def test_timing_one_per_nonzero(self):
        values = np.zeros(64)
        values[[1, 2, 3]] = 1.0
        # One chunk has 3 non-zeros (3 cycles); the other 3 chunks are empty.
        assert DataScanner().timing_cycles(values) == 6

    def test_rejects_2d(self):
        with pytest.raises(SimulationError):
            DataScanner().scan(np.zeros((2, 2)))


class TestScanCostModel:
    """The vectorized scan model must agree with the hardware scanner."""

    @given(st.lists(st.integers(min_value=0, max_value=1023), unique=True, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_single_matches_hardware(self, indices):
        config = ScannerConfig()
        cost = scan_cost_single(np.array(indices, dtype=np.int64), 1024, config)
        timing = BitVectorScanner(config).timing(BitVector(1024, indices), mode=ScanMode.SINGLE)
        assert cost.cycles == timing.cycles
        assert cost.empty_cycles == timing.empty_chunks
        assert cost.elements == timing.elements

    @given(
        st.lists(st.integers(min_value=0, max_value=511), unique=True, max_size=48),
        st.lists(st.integers(min_value=0, max_value=511), unique=True, max_size=48),
    )
    @settings(max_examples=40, deadline=None)
    def test_pair_element_counts(self, a, b):
        a_arr = np.array(a, dtype=np.int64)
        b_arr = np.array(b, dtype=np.int64)
        union = scan_cost_pair(a_arr, b_arr, 512, ScanMode.UNION)
        intersect = scan_cost_pair(a_arr, b_arr, 512, ScanMode.INTERSECT)
        assert union.elements == len(set(a) | set(b))
        assert intersect.elements == len(set(a) & set(b))
        assert union.cycles >= intersect.cycles or union.cycles == intersect.cycles

    def test_bittree_skips_empty_tiles(self):
        indices = np.array([5, 100_000], dtype=np.int64)
        flat = scan_cost_single(indices, 262_144)
        tree = scan_cost_single(indices, 262_144, bittree=True)
        assert tree.cycles < flat.cycles

    def test_empty_space(self):
        cost = scan_cost_single(np.array([], dtype=np.int64), 0)
        assert cost.cycles == 0 and cost.elements == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            scan_cost_single(np.array([10]), 5)

    def test_data_scan_cost(self):
        cost = data_scan_cost(values_nonzero=10, total_values=64)
        assert cost.cycles == 10
        cost_sparse = data_scan_cost(values_nonzero=1, total_values=64)
        assert cost_sparse.cycles == 4  # limited by chunk traversal
