"""repro-serve tests: warm queries answered from stores, cold ones enqueued.

Most tests drive :meth:`CacheServer.handle` directly (the HTTP layer is a
thin JSON framing); one end-to-end test runs the real asyncio server with
an in-process drain worker and watches a cold query turn warm.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.runtime.executors import LocalExecutor
from repro.runtime.jobs import JOB_PENDING, JobStore, execute_unit
from repro.runtime.registry import app_datasets
from repro.runtime.serve import BackgroundServer, CacheServer

APP = "spmv-csr"
SCALE_QUERY = "1/512"


@pytest.fixture()
def dataset():
    return app_datasets()[APP][0]


@pytest.fixture()
def server(tmp_path):
    handler = CacheServer(db=tmp_path / "runs.sqlite", cache_root=tmp_path / "cache")
    yield handler
    handler.close()


def _get(handler: CacheServer, path: str, query=None):
    return handler.handle("GET", path, dict(query or {}), b"")


class TestRoutes:
    def test_health(self, server):
        status, payload = _get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_unknown_route_404(self, server):
        status, _ = _get(server, "/teapot")
        assert status == 404

    def test_wrong_method_405(self, server):
        status, _ = server.handle("POST", "/profile", {}, b"")
        assert status == 405


class TestProfileEndpoint:
    def test_warm_query_serves_from_cache_without_executing(
        self, server, dataset, monkeypatch
    ):
        # Warm the cache through the same unit a drain worker would run.
        execute_unit(
            {
                "kind": "profile",
                "app": APP,
                "dataset": dataset,
                "context": {"scale": 1 / 512},
                "cache_root": str(server.profile_cache.root),
            }
        )

        # From here on, any workload execution is a test failure.
        def explode(*args, **kwargs):
            raise AssertionError("warm serve path executed a workload")

        monkeypatch.setattr("repro.runtime.registry.execute", explode)

        status, payload = _get(
            server, "/profile", {"app": APP, "dataset": dataset, "scale": SCALE_QUERY}
        )
        assert status == 200
        assert payload["status"] == "cached"
        assert payload["profile"]["app"] == APP

    def test_cold_query_enqueues_idempotently(self, server, dataset):
        query = {"app": APP, "dataset": dataset, "scale": SCALE_QUERY}
        status, payload = _get(server, "/profile", query)
        assert status == 202
        assert payload["status"] == "enqueued"
        job_id = payload["job"]

        # The job is persisted and pending with exactly one profile unit.
        with JobStore(store=server.run_store) as jobs:
            job = jobs.job(job_id)
            assert job is not None and job.state == JOB_PENDING
            units = jobs.units(job_id)
            assert len(units) == 1 and units[0].kind == "profile"

        # Asking again resumes the same job, not a duplicate.
        status, payload = _get(server, "/profile", query)
        assert status == 202
        assert payload["job"] == job_id

    def test_cold_query_with_enqueue_disabled_is_a_miss(self, server, dataset):
        status, payload = _get(
            server,
            "/profile",
            {"app": APP, "dataset": dataset, "scale": SCALE_QUERY, "enqueue": "0"},
        )
        assert status == 404
        assert payload["status"] == "miss"

    def test_bad_parameters_rejected(self, server, dataset):
        assert _get(server, "/profile", {"app": APP})[0] == 400
        assert _get(server, "/profile", {"app": APP, "dataset": "nope"})[0] == 400
        assert (
            _get(server, "/profile", {"app": APP, "dataset": dataset, "scale": "1/0"})[0]
            == 400
        )
        assert _get(server, "/profile", {"app": "warpdrive", "dataset": dataset})[0] == 400


class TestThroughputEndpoint:
    def test_cold_then_drained_then_warm(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "tp"))
        # Fresh store objects pick up the env override.
        from repro.runtime.cache import ThroughputStore

        server.throughput_store = ThroughputStore()

        query = {"ordering": "unordered", "lanes": "4", "banks": "4"}
        status, payload = _get(server, "/throughput", query)
        assert status == 202
        job_id = payload["job"]

        with JobStore(store=server.run_store) as jobs:
            summary = jobs.run_job(job_id, LocalExecutor())
            assert summary.state == "done"

        status, payload = _get(server, "/throughput", query)
        assert status == 200
        assert payload["status"] == "cached"
        assert payload["throughput"] > 0

    def test_bad_ordering_rejected(self, server):
        status, _ = _get(server, "/throughput", {"ordering": "sideways"})
        assert status == 400


class TestJobsEndpoint:
    def test_submit_then_resume_then_inspect(self, server):
        body = json.dumps(
            {"type": "profile_grid", "apps": [APP], "context": {"scale": 1 / 512}}
        ).encode()
        status, payload = server.handle("POST", "/jobs", {}, body)
        assert status == 201
        assert payload["resumed"] is False
        job_id = payload["id"]
        assert payload["units"] == {"pending": len(app_datasets()[APP])}

        status, payload = server.handle("POST", "/jobs", {}, body)
        assert status == 200
        assert payload["resumed"] is True
        assert payload["id"] == job_id

        status, payload = _get(server, "/jobs")
        assert status == 200
        assert [job["id"] for job in payload["jobs"]] == [job_id]

        status, payload = _get(server, f"/jobs/{job_id}")
        assert status == 200
        assert payload["failed_units"] == []

        assert _get(server, "/jobs/999")[0] == 404
        assert _get(server, "/jobs/xyz")[0] == 400

    def test_unknown_job_type_rejected(self, server):
        status, payload = server.handle(
            "POST", "/jobs", {}, json.dumps({"type": "espresso"}).encode()
        )
        assert status == 400
        assert "unknown job type" in payload["error"]

    def test_runs_endpoint_empty_store(self, server):
        status, payload = _get(server, "/runs")
        assert status == 200
        assert payload["runs"] == []


class TestEndToEnd:
    def test_cold_query_turns_warm_through_drain(self, tmp_path, dataset):
        db = tmp_path / "runs.sqlite"
        cache_root = tmp_path / "cache"
        with BackgroundServer(db=db, cache_root=cache_root, drain=True) as server:
            url = (
                f"{server.url}/profile?app={APP}&dataset={dataset}&scale={SCALE_QUERY}"
            )
            with urllib.request.urlopen(url, timeout=10) as response:
                first = json.loads(response.read())
                assert response.status == 202
                assert first["status"] == "enqueued"

            deadline = time.perf_counter() + 60.0
            payload = None
            while time.perf_counter() < deadline:
                with urllib.request.urlopen(url, timeout=10) as response:
                    payload = json.loads(response.read())
                    if response.status == 200:
                        break
                time.sleep(0.1)
            assert payload is not None and payload["status"] == "cached"
            assert payload["profile"]["app"] == APP
            assert list(cache_root.glob("*.json"))


class TestHardening:
    """/healthz, degraded 503s, body caps, request timeouts, drain."""

    def test_healthz_reports_ready(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["requests_total"] >= 1
        assert payload["inflight"] == 0
        assert "uptime_s" in payload and "db" in payload

    def _broken_db(self, tmp_path):
        import sqlite3

        db = tmp_path / "broken.sqlite"
        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version=99")  # "newer schema" -> refused
        conn.commit()
        conn.close()
        return db

    def test_unusable_store_degrades_instead_of_crashing(self, tmp_path):
        handler = CacheServer(db=self._broken_db(tmp_path), cache_root=tmp_path / "cache")
        try:
            # Liveness still answers; readiness says degraded and why.
            assert _get(handler, "/health")[0] == 200
            status, payload = _get(handler, "/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            assert "schema version 99" in payload["store_error"]
            # Store-backed routes answer 503, not 500.
            for path in ("/runs", "/jobs", "/jobs/1"):
                status, payload = _get(handler, path)
                assert status == 503
                assert payload["status"] == "degraded"
            status, _ = handler.handle("POST", "/jobs", {}, b'{"type": "profile_grid"}')
            assert status == 503
        finally:
            handler.close()

    def test_degraded_store_still_serves_warm_cache(self, tmp_path, dataset):
        cache_root = tmp_path / "cache"
        execute_unit(
            {
                "kind": "profile",
                "app": APP,
                "dataset": dataset,
                "context": {"scale": 1 / 512},
                "cache_root": str(cache_root),
            }
        )
        handler = CacheServer(db=self._broken_db(tmp_path), cache_root=cache_root)
        try:
            status, payload = _get(
                handler, "/profile", {"app": APP, "dataset": dataset, "scale": SCALE_QUERY}
            )
            assert status == 200
            assert payload["status"] == "cached"
            # A cold query needs the job store to enqueue: degraded 503.
            other = app_datasets()[APP][1]
            status, _ = _get(
                handler, "/profile", {"app": APP, "dataset": other, "scale": SCALE_QUERY}
            )
            assert status == 503
        finally:
            handler.close()

    def test_oversized_body_refused_with_413(self, tmp_path):
        with BackgroundServer(
            db=tmp_path / "runs.sqlite",
            cache_root=tmp_path / "cache",
            max_body_bytes=256,
        ) as background:
            body = json.dumps({"type": "profile_grid", "pad": "x" * 1024}).encode()
            request = urllib.request.Request(
                background.url + "/jobs", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 413
            assert "exceeds" in json.load(excinfo.value)["error"]
            # The connection-scoped failure must not poison the server.
            with urllib.request.urlopen(background.url + "/healthz", timeout=10) as resp:
                assert resp.status == 200

    def test_stuck_client_cut_off_with_408(self, tmp_path):
        import socket

        with BackgroundServer(
            db=tmp_path / "runs.sqlite",
            cache_root=tmp_path / "cache",
            request_timeout_s=0.5,
        ) as background:
            with socket.create_connection((background.host, background.port), timeout=10) as sock:
                sock.sendall(b"GET /health HTTP/1.1\r\n")  # headers never finish
                sock.settimeout(10)
                response = b""
                while b"}" not in response:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
            assert b"408" in response.split(b"\r\n", 1)[0]
            assert b"timed out" in response

    def test_drain_waits_for_inflight_then_cancels_stragglers(self):
        import asyncio

        from repro.runtime.serve import CacheServer as _CacheServer

        async def scenario():
            handler = _CacheServer.__new__(_CacheServer)  # just the task plumbing
            handler.client_tasks = set()
            finished = []

            async def quick():
                await asyncio.sleep(0.05)
                finished.append("quick")

            async def stuck():
                await asyncio.sleep(600)

            quick_task = asyncio.ensure_future(quick())
            stuck_task = asyncio.ensure_future(stuck())
            handler.client_tasks.update({quick_task, stuck_task})
            await handler.drain_clients(timeout_s=0.5)
            await asyncio.sleep(0)  # let the cancellation land
            assert finished == ["quick"]
            assert stuck_task.cancelled() or stuck_task.cancelling()

        asyncio.run(scenario())


class TestFrontierEndpoint:
    def _run_search(self, tmp_path, monkeypatch):
        from repro.apps.profile import WorkloadProfile
        from repro.runtime.search import (
            AdaptiveSearch,
            SearchSpace,
            SearchStore,
            make_strategy,
        )

        monkeypatch.setenv("REPRO_SEARCH_STORE", str(tmp_path / "search"))
        profiles = [
            WorkloadProfile(
                app="a", dataset="d", compute_iterations=50_000,
                sram_random_updates=30_000, dram_stream_read_bytes=1e6,
            )
        ]
        engine = AdaptiveSearch(
            SearchSpace.from_axes({"lanes": [8, 16], "banks": [16, 32]}),
            make_strategy("evolve", population=4, generations=2),
            profiles,
            seed=1,
            store=SearchStore(),
        )
        return engine.run(), engine.key

    def test_404_until_a_search_completes(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_STORE", str(tmp_path / "search"))
        status, payload = _get(server, "/frontier")
        assert status == 404
        assert payload["status"] == "miss"

        result, key = self._run_search(tmp_path, monkeypatch)
        status, payload = _get(server, "/frontier")
        assert status == 200
        assert payload["search_key"] == key
        assert payload["strategy"] == "evolve"
        assert payload["objectives"] == ["cycles", "area", "energy"]
        assert [p["name"] for p in payload["frontier"]] == list(result.frontier())
        assert all(p["pareto"] for p in payload["frontier"])

    def test_key_pins_a_specific_search(self, server, tmp_path, monkeypatch):
        _, key = self._run_search(tmp_path, monkeypatch)
        status, payload = _get(server, "/frontier", {"key": key})
        assert status == 200
        assert payload["search_key"] == key
        status, payload = _get(server, "/frontier", {"key": "0" * 16})
        assert status == 404

    def test_post_not_allowed(self, server):
        status, _ = server.handle("POST", "/frontier", {}, b"")
        assert status == 405
