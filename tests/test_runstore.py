"""Tests for the SQLite experiment store and the regression analytics.

Covers the tentpole contract end to end: schema round-trips, fingerprint
keying, baseline snapshot/compare, expectation evaluation with every
failure category, trend detection on synthetic run histories, the
``bench-history`` / ``bench-compare`` CLI JSON outputs, and the migration
proof that the legacy ``--baseline`` flag path and the store-backed path
reach the same verdict on the committed ``BENCH_runner.json``.
"""

from __future__ import annotations

import copy
import json
import sqlite3
from pathlib import Path

import pytest

from repro.errors import CapstanError
from repro.eval import regression
from repro.eval.regression import (
    DEFAULT_EXPECTATIONS,
    compare_to_baseline,
    default_expectations,
    detect_trends,
    evaluate_expectations,
    format_comparison_markdown,
    format_comparison_report,
    format_history,
    format_trends,
    load_expectations,
    normalize_expectations,
    parse_minimal_toml,
    set_expectation,
)
from repro.runtime import cli
from repro.runtime.runstore import (
    SCHEMA_VERSION,
    RunStore,
    RunStoreError,
    default_run_db,
    flatten_metrics,
    record_sections,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_RECORD = json.loads((REPO_ROOT / "BENCH_runner.json").read_text())
EXPECTATIONS_TOML = REPO_ROOT / "benchmarks" / "expectations.toml"

FINGERPRINT_A = "a" * 64
FINGERPRINT_B = "b" * 64


def make_record(**overrides):
    """A deep copy of the committed bench record with dotted overrides.

    ``make_record(**{"spmu.array_s": 0.9})`` replaces one nested value;
    a value of ``...`` (Ellipsis) deletes the key instead.
    """
    record = copy.deepcopy(BENCH_RECORD)
    for dotted, value in overrides.items():
        target = record
        *parents, leaf = dotted.split(".")
        for part in parents:
            target = target[part]
        if value is Ellipsis:
            del target[leaf]
        else:
            target[leaf] = value
    return record


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as opened:
        yield opened


# ----------------------------------------------------------------- RunStore


class TestRunStore:
    def test_record_round_trip(self, store):
        run_id = store.record_run(BENCH_RECORD, label="seed", fingerprint=FINGERPRINT_A)
        run = store.load_run(run_id)
        assert run.record == BENCH_RECORD
        assert run.label == "seed"
        assert run.fingerprint == FINGERPRINT_A
        assert run.scale == BENCH_RECORD["scale"]
        assert run.workers == BENCH_RECORD["workers"]
        assert len(store) == 1
        assert store.latest_run().id == run_id

    def test_sections_and_metrics_rows(self, store):
        run_id = store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        sections = store.sections(run_id)
        assert set(sections) == {
            "runner",
            "costing",
            "spmu",
            "formats",
            "chunked",
            "dse",
        }
        assert sections["spmu"] == BENCH_RECORD["spmu"]
        assert sections["runner"]["cold_serial_s"] == BENCH_RECORD["cold_serial_s"]
        # Nested format-axis metrics flatten into dotted rows.
        history = store.metric_history("formats", "scan.speedup", limit=5)
        assert history == [(run_id, BENCH_RECORD["formats"]["scan"]["speedup"])]
        # Null metrics (numba absent) are unrecorded, not stored as NULL hits.
        assert store.metric_history("chunked", "spmu_numba_speedup") == []

    def test_wal_mode_and_user_version(self, store):
        connection = sqlite3.connect(store.path)
        assert connection.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert connection.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        connection.close()

    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as first:
            run_id = first.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        with RunStore(path) as second:
            assert second.load_run(run_id).record == BENCH_RECORD

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version=99")
        connection.close()
        with pytest.raises(RunStoreError, match="schema version 99"):
            RunStore(path)

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DB", str(tmp_path / "custom.sqlite"))
        assert default_run_db() == tmp_path / "custom.sqlite"
        with RunStore() as opened:
            assert opened.path == tmp_path / "custom.sqlite"

    def test_fingerprint_keying(self, store):
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_B)
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        assert len(store.runs()) == 3
        keyed = store.runs(fingerprint=FINGERPRINT_A)
        assert [run.fingerprint for run in keyed] == [FINGERPRINT_A] * 2
        assert store.runs(limit=1)[0].id == 3

    def test_default_fingerprint_is_live_code(self, store):
        from repro.runtime.cache import code_fingerprint

        run_id = store.record_run(BENCH_RECORD)
        assert store.load_run(run_id).fingerprint == code_fingerprint()

    def test_baseline_snapshot_round_trip(self, store):
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        frozen = store.snapshot_baseline("main")
        loaded = store.baseline("main")
        assert loaded.record == BENCH_RECORD
        assert loaded.run_id == frozen.run_id
        assert loaded.fingerprint == FINGERPRINT_A
        assert [b.name for b in store.baselines()] == ["main"]
        assert store.baseline("missing") is None

    def test_baseline_refreeze_replaces(self, store):
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        store.record_run(make_record(scale=0.125), fingerprint=FINGERPRINT_B)
        store.snapshot_baseline("main", run_id=1)
        store.snapshot_baseline("main", run_id=2)
        assert store.baseline("main").run_id == 2
        assert len(store.baselines()) == 1

    def test_snapshot_without_runs_raises(self, store):
        with pytest.raises(RunStoreError, match="no runs"):
            store.snapshot_baseline("main")

    def test_record_sections_and_flatten(self):
        sections = record_sections({"a": 1, "nested": {"x": 2.0, "flag": True}})
        assert sections == {"nested": {"x": 2.0, "flag": True}, "runner": {"a": 1}}
        flat = flatten_metrics(
            {"x": 2, "skip": None, "flag": True, "inner": {"y": 3.5, "s": "txt"}}
        )
        assert flat == {"x": 2.0, "inner.y": 3.5}


# ----------------------------------------------------------- expectations


class TestExpectations:
    def test_committed_file_matches_builtin_gate(self):
        assert load_expectations(EXPECTATIONS_TOML) == DEFAULT_EXPECTATIONS

    def test_minimal_parser_agrees_with_tomllib(self):
        # The 3.9/3.10 fallback must read the committed file identically.
        parsed = parse_minimal_toml(EXPECTATIONS_TOML.read_text())
        assert normalize_expectations(parsed) == DEFAULT_EXPECTATIONS

    def test_minimal_parser_rejects_garbage(self):
        with pytest.raises(CapstanError):
            parse_minimal_toml("[unclosed\n")
        with pytest.raises(CapstanError):
            parse_minimal_toml("just words\n")
        with pytest.raises(CapstanError):
            parse_minimal_toml("key = [1, 2]\n")

    def test_normalize_rejects_unknown_keys(self):
        with pytest.raises(CapstanError, match="unknown expectations keys"):
            normalize_expectations({"sectoins": {}})
        with pytest.raises(CapstanError, match="unknown keys in expectations section"):
            normalize_expectations({"sections": {"spmu": {"mni": {"speedup": 1}}}})
        with pytest.raises(CapstanError, match="must be a number"):
            normalize_expectations({"sections": {"spmu": {"min": {"speedup": True}}}})

    def test_set_expectation_overrides(self):
        expectations = default_expectations()
        set_expectation(expectations, "spmu", "min", 12.0, "speedup")
        set_expectation(expectations, "new-section", "compare", 1.5, "wall_s")
        assert expectations["sections"]["spmu"]["min"]["speedup"] == 12.0
        assert expectations["sections"]["new-section"]["compare"]["wall_s"] == 1.5


# ------------------------------------------------------------- evaluation


class TestEvaluation:
    def test_committed_record_passes(self):
        checks = evaluate_expectations(BENCH_RECORD)
        assert all(check.passed for check in checks)
        # The null numba speedup is skipped, not failed.
        skipped = [c for c in checks if c.category == regression.SKIPPED]
        assert [c.name for c in skipped] == ["min:spmu_numba_speedup"]

    def test_speedup_floor_regression(self):
        checks = evaluate_expectations(make_record(**{"costing.batch_speedup": 2.0}))
        failing = [c for c in checks if not c.passed]
        assert [(c.section, c.category) for c in failing] == [
            ("costing", regression.REGRESSION)
        ]

    def test_identity_broken(self):
        checks = evaluate_expectations(make_record(**{"formats.identical": False}))
        failing = [c for c in checks if not c.passed]
        assert [(c.section, c.category) for c in failing] == [
            ("formats", regression.IDENTITY_BROKEN)
        ]

    def test_missing_section(self):
        checks = evaluate_expectations(make_record(spmu=Ellipsis))
        failing = [c for c in checks if not c.passed]
        assert [(c.section, c.category) for c in failing] == [
            ("spmu", regression.MISSING_SECTION)
        ]

    def test_missing_metric_is_categorized(self):
        checks = evaluate_expectations(make_record(**{"chunked.peak_ratio": Ellipsis}))
        failing = [c for c in checks if not c.passed]
        assert [(c.name, c.category) for c in failing] == [
            ("max:peak_ratio", regression.MISSING_SECTION)
        ]


class TestComparison:
    def test_self_comparison_passes(self):
        report = compare_to_baseline(BENCH_RECORD, BENCH_RECORD)
        assert report.passed and not report.scale_mismatch
        assert report.categories() == {}

    def test_ratio_regression_detected(self):
        slow = make_record(**{"spmu.array_s": BENCH_RECORD["spmu"]["array_s"] * 3})
        report = compare_to_baseline(slow, BENCH_RECORD)
        assert not report.passed
        assert report.categories() == {regression.REGRESSION: 1}
        [failure] = report.failures()
        assert failure.name == "compare:array_s"
        assert failure.baseline_value == BENCH_RECORD["spmu"]["array_s"]

    def test_within_tolerance_passes(self):
        slower = make_record(
            **{"spmu.array_s": BENCH_RECORD["spmu"]["array_s"] * 1.9}
        )
        assert compare_to_baseline(slower, BENCH_RECORD).passed

    def test_scale_mismatch_is_categorized_not_fatal(self):
        bumped = make_record(scale=0.125)
        report = compare_to_baseline(bumped, BENCH_RECORD)
        assert report.passed and report.scale_mismatch
        scale_checks = [
            c for c in report.checks if c.category == regression.SCALE_MISMATCH
        ]
        # Every ratio check is recorded as scale-mismatch, none evaluated.
        assert {c.name for c in scale_checks} == {
            "compare:cold_serial_s",
            "compare:batch_s",
            "compare:array_s",
            "compare:chunked_s",
            "compare:search_s",
        }
        # Absolute gates still apply across a scale bump.
        broken = make_record(scale=0.125, **{"spmu.identical": False})
        report = compare_to_baseline(broken, BENCH_RECORD)
        assert not report.passed
        assert [c.category for c in report.failures()] == [regression.IDENTITY_BROKEN]

    def test_baseline_missing_section_is_skipped(self):
        baseline = make_record(chunked=Ellipsis)
        report = compare_to_baseline(BENCH_RECORD, baseline)
        assert report.passed
        skipped = [c for c in report.checks if c.category == regression.SKIPPED]
        assert any(c.name == "compare:chunked_s" for c in skipped)

    def test_no_baseline_runs_absolute_only(self):
        report = compare_to_baseline(make_record(), None)
        assert report.passed and report.baseline is None
        assert not any(c.name.startswith("compare:") for c in report.checks)

    def test_store_baseline_round_trip(self, store):
        store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
        frozen = store.snapshot_baseline("main")
        report = compare_to_baseline(make_record(), frozen)
        assert report.passed
        assert report.baseline["name"] == "main"

    def test_report_renderers(self):
        report = compare_to_baseline(
            make_record(**{"costing.identical": False}), BENCH_RECORD
        )
        text = format_comparison_report(report)
        assert "verdict: FAIL" in text and "identity-broken" in text
        markdown = format_comparison_markdown(report)
        assert markdown.startswith("## Bench comparison")
        assert "| ❌ | costing |" in markdown
        assert report.to_dict()["categories"] == {regression.IDENTITY_BROKEN: 1}


# ------------------------------------------------------------------ trends


class TestTrends:
    def _record_history(self, store, values, metric="chunked.chunked_s"):
        for index, value in enumerate(values):
            store.record_run(
                make_record(**{metric: value}),
                fingerprint=FINGERPRINT_A,
                created_at=f"2026-08-08T00:{index:02d}:00Z",
            )

    def test_monotonic_drift_flagged(self, store):
        self._record_history(store, [0.040, 0.042, 0.044, 0.046, 0.048])
        trends = detect_trends(store)
        assert [(t.section, t.metric) for t in trends] == [("chunked", "chunked_s")]
        [trend] = trends
        assert trend.drift == pytest.approx(1.2)
        assert trend.run_ids == (1, 2, 3, 4, 5)
        assert "DRIFT chunked.chunked_s" in format_trends(trends)

    def test_noisy_history_not_flagged(self, store):
        self._record_history(store, [0.040, 0.048, 0.044, 0.046, 0.048])
        assert detect_trends(store) == []

    def test_small_drift_below_threshold_not_flagged(self, store):
        self._record_history(store, [0.040, 0.0401, 0.0402, 0.0403, 0.0404])
        assert detect_trends(store) == []

    def test_short_history_not_flagged(self, store):
        self._record_history(store, [0.040, 0.044, 0.048])
        assert detect_trends(store) == []

    def test_window_uses_latest_runs_only(self, store):
        # A long-flat history whose last five runs drift monotonically.
        self._record_history(
            store, [0.040, 0.040, 0.040, 0.041, 0.043, 0.045, 0.047, 0.049]
        )
        trends = detect_trends(store)
        assert [t.run_ids for t in trends] == [(4, 5, 6, 7, 8)]


# --------------------------------------------------------------------- CLI


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    return code, capsys.readouterr().out


class TestBenchCLI:
    @pytest.fixture
    def db(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            store.record_run(
                BENCH_RECORD, fingerprint=FINGERPRINT_A, created_at="2026-08-08T00:00:00Z"
            )
            store.snapshot_baseline("main")
            store.record_run(
                make_record(**{"spmu.array_s": 0.9}),
                fingerprint=FINGERPRINT_B,
                created_at="2026-08-08T01:00:00Z",
            )
        return path

    def test_bench_history_json(self, db, tmp_path, capsys):
        out_path = tmp_path / "history.json"
        code, out = run_cli(
            capsys, "bench-history", "--db", str(db), "--json", str(out_path)
        )
        assert code == 0
        assert "runner.cold_serial_s" in out
        payload = json.loads(out_path.read_text())
        assert [row["id"] for row in payload["runs"]] == [2, 1]
        assert payload["runs"][0]["fingerprint"] == FINGERPRINT_B[:12]
        assert payload["records"][1]["record"] == BENCH_RECORD

    def test_bench_history_empty_store(self, tmp_path, capsys):
        code, out = run_cli(
            capsys, "bench-history", "--db", str(tmp_path / "fresh.sqlite")
        )
        assert code == 0 and "no runs recorded" in out

    def test_bench_compare_json_verdicts(self, db, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        # Latest run (run 2) regressed ~2.6x against the frozen baseline.
        code, _ = run_cli(
            capsys,
            "bench-compare",
            "--db",
            str(db),
            "--baseline",
            "main",
            "--json",
            str(out_path),
        )
        assert code == 1
        payload = json.loads(out_path.read_text())
        assert payload["passed"] is False
        assert payload["run"]["id"] == 2
        assert payload["categories"] == {regression.REGRESSION: 1}
        # Run 1 is the baseline itself: clean pass.
        code, _ = run_cli(
            capsys, "bench-compare", "--db", str(db), "--baseline", "main", "--run", "1"
        )
        assert code == 0

    def test_bench_compare_against_run_and_json_baselines(self, db, capsys):
        code, _ = run_cli(
            capsys, "bench-compare", "--db", str(db), "--baseline-run", "1"
        )
        assert code == 1
        code, _ = run_cli(
            capsys,
            "bench-compare",
            "--db",
            str(db),
            "--baseline-json",
            str(REPO_ROOT / "BENCH_runner.json"),
            "--run",
            "1",
            "--expectations",
            str(EXPECTATIONS_TOML),
        )
        assert code == 0

    def test_bench_compare_missing_targets(self, db, tmp_path, capsys):
        code = cli.main(["bench-compare", "--db", str(db), "--baseline", "nope"])
        assert code == 2
        code = cli.main(
            ["bench-compare", "--db", str(tmp_path / "fresh.sqlite")]
        )
        assert code == 2

    def test_bench_baseline_freezes(self, db, capsys):
        code, out = run_cli(
            capsys, "bench-baseline", "release", "--db", str(db), "--run", "2"
        )
        assert code == 0 and "froze baseline 'release' from run 2" in out
        with RunStore(db) as store:
            assert store.baseline("release").run_id == 2


# -------------------------------------------------- bench_runner migration


def _load_bench_runner():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_runner", REPO_ROOT / "benchmarks" / "bench_runner.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchRunnerGate:
    """The migration proof: legacy flags and the store gate agree."""

    @pytest.fixture(scope="class")
    def bench_runner(self):
        return _load_bench_runner()

    @pytest.fixture(autouse=True)
    def isolated_db(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DB", str(tmp_path / "runs.sqlite"))
        self.db = tmp_path / "runs.sqlite"
        self.tmp_path = tmp_path

    def _replay(self, bench_runner, record, *argv):
        path = self.tmp_path / "replay.json"
        path.write_text(json.dumps(record))
        return bench_runner.main(["--replay", str(path), *argv])

    def test_flag_and_store_paths_agree_on_committed_record(self, bench_runner):
        legacy = self._replay(
            bench_runner,
            BENCH_RECORD,
            "--baseline",
            str(REPO_ROOT / "BENCH_runner.json"),
            "--max-slowdown",
            "2.0",
            "--min-batch-speedup",
            "5.0",
            "--min-spmu-speedup",
            "6.0",
            "--min-formats-speedup",
            "3.0",
            "--max-peak-ratio",
            "1.5",
            "--snapshot-baseline",
            "main",
        )
        stored = self._replay(
            bench_runner, BENCH_RECORD, "--compare-baseline", "main"
        )
        assert legacy == stored == 0
        with RunStore(self.db) as store:
            assert len(store) == 2  # both paths recorded their run

    def test_both_paths_fail_on_injected_regression(self, bench_runner):
        bad = make_record(
            **{"formats.batch_s": BENCH_RECORD["formats"]["batch_s"] * 4}
        )
        legacy = self._replay(
            bench_runner,
            bad,
            "--baseline",
            str(REPO_ROOT / "BENCH_runner.json"),
        )
        # Store-backed path: freeze the committed record, replay the bad run.
        self._replay(bench_runner, BENCH_RECORD, "--snapshot-baseline", "main")
        stored = self._replay(bench_runner, bad, "--compare-baseline", "main")
        assert legacy == stored == 1

    def test_identity_failure_without_baseline(self, bench_runner):
        bad = make_record(**{"costing.identical": False})
        assert self._replay(bench_runner, bad, "--no-run-db") == 1

    def test_scale_bump_no_longer_hard_fails(self, bench_runner):
        bumped = make_record(scale=0.125)
        code = self._replay(
            bench_runner,
            bumped,
            "--baseline",
            str(REPO_ROOT / "BENCH_runner.json"),
        )
        assert code == 0

    def test_missing_baseline_name_falls_back_to_absolute(self, bench_runner, capsys):
        assert self._replay(bench_runner, BENCH_RECORD, "--compare-baseline", "nope") == 0
        assert "absolute checks only" in capsys.readouterr().err

    def test_summary_markdown_written(self, bench_runner):
        summary = self.tmp_path / "summary.md"
        self._replay(
            bench_runner,
            BENCH_RECORD,
            "--baseline",
            str(REPO_ROOT / "BENCH_runner.json"),
            "--summary",
            str(summary),
        )
        text = summary.read_text()
        assert text.startswith("## Bench comparison")
        assert "| ✅ | spmu |" in text

    def test_skipped_sections_are_not_missing(self, bench_runner):
        partial = make_record(spmu=Ellipsis, chunked=Ellipsis)
        code = self._replay(
            bench_runner, partial, "--no-run-db", "--no-spmu", "--no-chunked"
        )
        assert code == 0


def test_history_formatting_smoke(store):
    store.record_run(BENCH_RECORD, fingerprint=FINGERPRINT_A)
    text = format_history(store.runs())
    assert "chunked.chunked_s" in text
    markdown = format_history(store.runs(), markdown=True)
    assert markdown.splitlines()[0].startswith("| run |")
