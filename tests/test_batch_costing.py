"""Tests for batched platform costing and the timing-model fidelity fixes."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.apps import spmv_csr
from repro.apps import timing as timing_module
from repro.apps.profile import WorkloadProfile
from repro.apps.timing import (
    CapstanPlatform,
    default_platform,
    estimate_cycles,
    estimate_cycles_batch,
    ideal_platform,
)
from repro.config import CapstanConfig, MemoryTechnology, ShuffleConfig, ShuffleMode
from repro.core.ordering import OrderingMode
from repro.formats import to_csr
from repro.runtime.sweep import sweep
from repro.sim.stats import STALL_CATEGORIES


def _profile_zoo():
    """Synthetic profiles exercising every term of the timing model."""
    return [
        WorkloadProfile(
            app="dense-ish", dataset="a",
            compute_iterations=123_456, vector_slots=9_000,
            scan_cycles=4_000, scan_empty_cycles=300,
            sram_random_reads=50_000, sram_random_updates=20_000,
            strided_fraction=0.37,
            dram_random_reads=1_000, dram_random_updates=500,
            dram_stream_read_bytes=1.5e6, dram_stream_write_bytes=2e5,
            pointer_stream_bytes=4e5, pointer_compression_ratio=2.5,
            tile_work=[1.0, 2.0, 1.5], cross_tile_request_fraction=0.22,
            sequential_rounds=17, pipelinable=False, outer_parallelism=64,
        ),
        WorkloadProfile(
            app="cross-heavy", dataset="b",
            compute_iterations=777, vector_slots=80, scan_cycles=10,
            sram_random_updates=100, cross_tile_request_fraction=0.9,
            sequential_rounds=2, outer_parallelism=3,
        ),
        WorkloadProfile(
            app="strided", dataset="c",
            compute_iterations=40_000, vector_slots=3_000,
            sram_random_updates=200_000, strided_fraction=0.95,
            outer_parallelism=16,
        ),
        WorkloadProfile(app="empty", dataset="d"),
    ]


def _platform_zoo():
    """Every Table 9-12 variant family plus structural DSE variants."""
    platforms = [default_platform(), ideal_platform()]
    platforms.append(CapstanPlatform(ideal_sram=True, name="ideal-sram"))
    platforms += list(
        sweep(
            allocator=("separable", "greedy", "arbitrated"),
            bank_mapping=("hash", "linear"),
        ).values()
    )
    platforms += list(
        sweep(
            ordering=(
                OrderingMode.UNORDERED,
                OrderingMode.ADDRESS_ORDERED,
                OrderingMode.FULLY_ORDERED,
            )
        ).values()
    )
    platforms += list(
        sweep(
            memory=(MemoryTechnology.HBM2E, MemoryTechnology.HBM2, MemoryTechnology.DDR4),
            shuffle=(ShuffleMode.NONE, ShuffleMode.MRG0, ShuffleMode.MRG1, ShuffleMode.MRG16),
        ).values()
    )
    platforms += list(sweep(lanes=(8, 32), banks=(8, 32), queue_depth=(8, 32)).values())
    return platforms


@pytest.fixture(scope="module")
def spmv_profile(tiny_matrix_dataset):
    csr = to_csr(tiny_matrix_dataset.matrix)
    vector = np.random.default_rng(1).random(csr.shape[1])
    return spmv_csr(csr, vector, dataset=tiny_matrix_dataset.name).profile


class TestBatchEquivalence:
    def test_bit_identical_across_grid(self, spmv_profile):
        profiles = _profile_zoo() + [spmv_profile]
        platforms = _platform_zoo()
        result = estimate_cycles_batch(profiles, platforms)
        assert result.cycles.shape == (len(profiles), len(platforms))
        for i, profile in enumerate(profiles):
            for j, platform in enumerate(platforms):
                cycles, breakdown = estimate_cycles(profile, platform)
                assert result.cycles[i, j] == cycles, (profile.app, platform.name)
                batched = result.breakdown(i, j)
                for name in STALL_CATEGORIES:
                    assert getattr(batched, name) == getattr(breakdown, name), (
                        profile.app,
                        platform.name,
                        name,
                    )

    def test_breakdown_total_matches_cycles(self, spmv_profile):
        result = estimate_cycles_batch([spmv_profile], [default_platform()])
        assert result.breakdown(0, 0).total_cycles == result.cycles[0, 0]

    def test_empty_grid(self):
        result = estimate_cycles_batch([], [default_platform()])
        assert result.cycles.shape == (0, 1)
        result = estimate_cycles_batch(_profile_zoo(), [])
        assert result.cycles.shape == (4, 0)
        for name in STALL_CATEGORIES:
            assert result.categories[name].shape == (4, 0)


class TestBankMappingFidelity:
    def test_hash_vs_linear_differ_on_random_heavy_profile(self):
        # No strided accesses at all: before the fix the mapping only acted
        # through the strided-fraction term, so this profile costed
        # identically under both mappings.
        profile = WorkloadProfile(
            app="random-heavy", dataset="d",
            compute_iterations=200_000, vector_slots=15_000,
            sram_random_updates=500_000, strided_fraction=0.0,
            outer_parallelism=16,
        )
        hash_breakdown = estimate_cycles(profile, CapstanPlatform(bank_mapping="hash"))[1]
        linear_breakdown = estimate_cycles(profile, CapstanPlatform(bank_mapping="linear"))[1]
        assert hash_breakdown.sram != linear_breakdown.sram

    def test_linear_mapping_still_pays_strided_penalty(self):
        profile = WorkloadProfile(
            app="strided", dataset="d",
            compute_iterations=100_000, vector_slots=7_000,
            sram_random_updates=100_000, strided_fraction=0.9,
            outer_parallelism=16,
        )
        hashed = estimate_cycles(profile, CapstanPlatform(bank_mapping="hash"))[0]
        linear = estimate_cycles(profile, CapstanPlatform(bank_mapping="linear"))[0]
        assert linear > 1.5 * hashed


class TestLaneScaling:
    def test_lanes32_costing_is_sane(self):
        profile = WorkloadProfile(
            app="x", dataset="d",
            compute_iterations=100_000, vector_slots=8_000,
            sram_random_updates=40_000, cross_tile_request_fraction=0.4,
            sequential_rounds=5, pipelinable=False, outer_parallelism=64,
        )
        breakdowns = {}
        for lanes in (16, 32):
            platform = CapstanPlatform(config=CapstanConfig(lanes=lanes), name=f"l{lanes}")
            cycles, breakdown = estimate_cycles(profile, platform)
            assert np.isfinite(cycles) and cycles > 0
            breakdowns[lanes] = breakdown
        # Lane-work halves when the machine is twice as wide.
        assert breakdowns[32].active == pytest.approx(breakdowns[16].active / 2)

    def test_shuffle_none_floor_follows_lane_count(self):
        none_config = ShuffleConfig(mode=ShuffleMode.NONE)
        for lanes in (8, 16, 32):
            floor = timing_module._shuffle_efficiency(none_config, lanes, 1.0)
            assert floor == pytest.approx(1.0 / lanes)
        # Partial cross traffic interpolates towards the floor.
        assert timing_module._shuffle_efficiency(none_config, 32, 0.0) == 1.0


class TestMergeEfficiencyCache:
    def test_keyed_by_full_shuffle_config_and_lanes(self, monkeypatch):
        cache: dict = {}
        monkeypatch.setattr(timing_module, "_MERGE_EFFICIENCY_CACHE", cache)
        base = ShuffleConfig(mode=ShuffleMode.MRG1)
        deep = dataclasses.replace(base, permutation_fifo_depth=8)
        timing_module._shuffle_efficiency(base, 16, 0.5)
        assert len(cache) == 1
        # Same mode, different crossbar parameters: no aliasing.
        timing_module._shuffle_efficiency(deep, 16, 0.5)
        assert len(cache) == 2
        # Same config, different lane count: distinct entry too.
        timing_module._shuffle_efficiency(base, 8, 0.5)
        assert len(cache) == 3
        # Repeats hit the cache.
        timing_module._shuffle_efficiency(base, 16, 0.5)
        assert len(cache) == 3
