"""Job model tests: specs, persistence, resume, and kill durability.

The centerpiece is ``test_sigkill_mid_job_then_resume``: a real child
process runs a job, gets SIGKILL'd mid-unit, and the in-process resume
must re-execute nothing that completed -- the probe kind's attempt
markers make re-execution observable across process boundaries.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import ScannerConfig
from repro.runtime.executors import LocalExecutor
from repro.runtime.executors.subprocess import _worker_env
from repro.runtime.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_PENDING,
    UNIT_DONE,
    UNIT_FAILED,
    UNIT_PENDING,
    UNIT_RUNNING,
    JobError,
    JobSpec,
    JobStore,
    context_from_dict,
    context_to_dict,
)
from repro.runtime.registry import RunContext, app_datasets


def _markers(scratch: Path, unit: int) -> int:
    root = scratch / f"unit-{unit}"
    return len(list(root.glob("attempt-*"))) if root.is_dir() else 0


class TestContextRoundTrip:
    def test_plain_context(self):
        context = RunContext(scale=1 / 64, pagerank_iterations=3, backend="numpy")
        assert context_from_dict(context_to_dict(context)) == context

    def test_scanner_survives(self):
        context = RunContext(scale=1 / 8, scanner=ScannerConfig(bit_width=128))
        rebuilt = context_from_dict(context_to_dict(context))
        assert rebuilt == context
        assert rebuilt.scanner is not None and rebuilt.scanner.bit_width == 128

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown RunContext fields"):
            context_from_dict({"scale": 1.0, "warp_drive": True})


class TestJobSpecBuilders:
    def test_profile_grid_one_unit_per_cell(self):
        spec = JobSpec.profile_grid(apps=["spmv-csr"], context=RunContext(scale=1 / 512))
        datasets = app_datasets()["spmv-csr"]
        assert len(spec.units) == len(datasets)
        assert {unit.payload["dataset"] for unit in spec.units} == set(datasets)
        assert all(unit.kind == "profile" for unit in spec.units)
        # The spec key is a pure function of its content: rebuilt == same.
        again = JobSpec.profile_grid(apps=["spmv-csr"], context=RunContext(scale=1 / 512))
        assert again.key == spec.key
        other = JobSpec.profile_grid(apps=["spmv-csr"], context=RunContext(scale=1 / 256))
        assert other.key != spec.key

    def test_dse_grid_chunks_respect_max_chunk(self):
        spec = JobSpec.dse_grid(
            {
                "allocator": ["separable", "greedy", "arbitrated"],
                "bank_mapping": ["hash", "linear"],
            },
            apps=["spmv-csr"],
            max_chunk=2,
        )
        # 6 variants at <=2 per chunk -> 3 chunks, covering [0, 6) exactly.
        assert len(spec.units) == 3
        bounds = [(u.payload["start"], u.payload["stop"]) for u in spec.units]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 6
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert start == stop
        assert all(stop - start <= 2 for start, stop in bounds)

    def test_table_suite_rejects_unknown_table(self):
        with pytest.raises(JobError, match="unknown tables"):
            JobSpec.table_suite(tables=["table99"])

    def test_probe_spec_units_are_distinct(self):
        spec = JobSpec.probes(4)
        assert len({unit.key for unit in spec.units}) == 4


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        spec = JobSpec.probes(3)
        with JobStore(tmp_path / "runs.sqlite") as store:
            first = store.submit(spec)
            second = store.submit(spec)
            assert first.id == second.id
            assert first.state == JOB_PENDING
            assert len(store.units(first.id)) == 3

    def test_partial_run_then_resume_skips_done_units(self, tmp_path):
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(4, scratch=scratch)
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            summary = store.run_job(job.id, LocalExecutor(), max_units=2)
            assert summary.executed == 2
            assert summary.completed == 2
            assert summary.remaining == 2
            assert summary.state == JOB_PENDING
            assert [_markers(scratch, i) for i in range(4)] == [1, 1, 0, 0]

            summary = store.run_job(job.id, LocalExecutor())
            assert summary.executed == 2
            assert summary.state == JOB_DONE
            # Zero re-execution: the first two units still ran exactly once.
            assert [_markers(scratch, i) for i in range(4)] == [1, 1, 1, 1]

            results = store.results(job.id)
            assert [unit.seq for unit, _ in results] == [0, 1, 2, 3]
            assert [value["value"] for _, value in results] == [0, 2, 4, 6]
            assert all(unit.attempts == 1 for unit, _ in results)

    def test_stale_running_units_are_reclaimed(self, tmp_path):
        spec = JobSpec.probes(2)
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            # Orphan of a dead sweep: a unit stuck in `running`.
            with store._connection:
                store._connection.execute(
                    "UPDATE work_units SET state=? WHERE job_id=? AND seq=0",
                    (UNIT_RUNNING, job.id),
                )
            summary = store.run_job(job.id, LocalExecutor())
            assert summary.state == JOB_DONE
            assert store.unit_states(job.id) == {UNIT_DONE: 2}

    def test_failed_unit_retried_on_next_run(self, tmp_path):
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(1, scratch=scratch)
        # fail_times=1: the first execution raises, the second succeeds.
        unit = spec.units[0]
        payload = dict(unit.payload)
        payload["fail_times"] = 1
        spec = JobSpec(name=spec.name, units=(type(unit)(unit.key, unit.kind, payload),))
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            summary = store.run_job(job.id, LocalExecutor())
            assert summary.failed == 1
            assert summary.state == JOB_FAILED
            [unit_row] = store.units(job.id)
            assert unit_row.state == UNIT_FAILED
            assert unit_row.attempts == 1
            assert "probe failing" in unit_row.error

            summary = store.run_job(job.id, LocalExecutor())
            assert summary.completed == 1
            assert summary.state == JOB_DONE
            [unit_row] = store.units(job.id)
            assert unit_row.state == UNIT_DONE
            assert unit_row.attempts == 2

    def test_wave_persistence_bounds_loss_to_in_flight_work(self, tmp_path):
        # stop_on_error halts between waves too: with workers=1 the unit
        # after a failure is never marked running-then-lost, it stays
        # pending with zero attempts.
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(3, scratch=scratch)
        units = list(spec.units)
        payload = dict(units[1].payload)
        payload["boom"] = "wave fail"
        units[1] = type(units[1])(units[1].key, units[1].kind, payload)
        spec = JobSpec(name=spec.name, units=tuple(units))
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            summary = store.run_job(job.id, LocalExecutor(), stop_on_error=True)
            assert summary.completed == 1
            assert summary.failed == 1
            # Lease-based claims never touch the unit after the failing
            # wave: it is not claimed at all (rather than claimed and
            # released), so nothing is reported cancelled.
            assert summary.cancelled == 0
            assert summary.executed == 2
            states = [unit.state for unit in store.units(job.id)]
            assert states == [UNIT_DONE, UNIT_FAILED, UNIT_PENDING]
            assert _markers(scratch, 2) == 0


class TestKillDurability:
    def test_sigkill_mid_job_then_resume(self, tmp_path):
        """A killed sweep resumes with zero re-execution of done units."""
        db = tmp_path / "runs.sqlite"
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(6, sleep_s=0.4, scratch=scratch)
        with JobStore(db) as store:
            job_id = store.submit(spec).id

        child_code = (
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.runtime.executors import LocalExecutor\n"
            "from repro.runtime.jobs import JobStore\n"
            "with JobStore(Path(sys.argv[1])) as store:\n"
            "    store.run_job(int(sys.argv[2]), LocalExecutor())\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", child_code, str(db), str(job_id)],
            env=_worker_env(),
        )
        try:
            # Unit 2 starting (its marker appearing) means units 0 and 1
            # finished and -- with wave persistence -- were committed.
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline:
                if _markers(scratch, 2) >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("child never reached unit 2")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=10)

        markers_after_kill = [_markers(scratch, i) for i in range(6)]
        with JobStore(db) as store:
            counts = store.unit_states(job_id)
            assert counts.get(UNIT_DONE, 0) >= 2  # completed units survived
            summary = store.run_job(job_id, LocalExecutor())
            assert summary.state == JOB_DONE
            assert store.unit_states(job_id) == {UNIT_DONE: 6}
            results = store.results(job_id)
            assert [value["value"] for _, value in results] == [0, 2, 4, 6, 8, 10]

        markers_final = [_markers(scratch, i) for i in range(6)]
        # Every unit that finished before the kill ran exactly once, before
        # AND after the resume. A unit's successor having started implies
        # its wave was committed, so dropping the last-started unit leaves
        # exactly the provably-durable set.
        done_before = [i for i in range(6) if markers_after_kill[i] == 1][:-1]
        for unit in done_before:
            assert markers_final[unit] == 1, f"unit {unit} re-executed on resume"
        # The in-flight unit re-ran at most once more.
        assert all(count <= 2 for count in markers_final)


class TestShardedEqualsUnsharded:
    def test_sharded_profile_job_matches_unsharded_cache(self, tmp_path):
        """Sharded + interrupted-and-resumed output == one serial run, byte for byte."""
        from repro.runtime.cache import ProfileCache
        from repro.runtime.runner import ExperimentRunner

        context = RunContext(scale=1 / 512)

        # Unsharded reference: one serial runner into cache A.
        cache_a = tmp_path / "cache-a"
        runner = ExperimentRunner(context=context, cache=ProfileCache(root=cache_a), workers=1)
        runner.run(apps=["spmv-csr"])

        # Sharded: the same grid as a job into cache B, split across two
        # partial run_job calls (the resume path).
        cache_b = tmp_path / "cache-b"
        spec = JobSpec.profile_grid(apps=["spmv-csr"], context=context, cache_root=cache_b)
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            store.run_job(job.id, LocalExecutor(), max_units=1)
            summary = store.run_job(job.id, LocalExecutor())
            assert summary.state == JOB_DONE

        names_a = sorted(path.name for path in cache_a.glob("*.json"))
        names_b = sorted(path.name for path in cache_b.glob("*.json"))
        assert names_a == names_b and names_a
        for name in names_a:
            assert (cache_a / name).read_bytes() == (cache_b / name).read_bytes(), name


class TestUnitKindRegistry:
    def test_unknown_kind_rejected(self):
        from repro.runtime.jobs import execute_unit

        with pytest.raises(JobError, match="unknown work-unit kind"):
            execute_unit({"kind": "antigravity"})

    def test_payload_without_kind_rejected(self):
        from repro.runtime.jobs import execute_unit

        with pytest.raises(JobError, match="needs a 'kind' field"):
            execute_unit({"app": "spmv-csr"})

    def test_result_json_round_trips_profiles(self, tmp_path):
        from repro.apps.profile import WorkloadProfile

        spec = JobSpec.profile_grid(
            apps=["spmv-csr"], context=RunContext(scale=1 / 512), cache_root=tmp_path / "c"
        )
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(spec)
            store.run_job(job.id, LocalExecutor(), max_units=1)
            done = store.units(job.id, state=UNIT_DONE)
            assert len(done) == 1
            profile = done[0].result()
            assert isinstance(profile, WorkloadProfile)
            # The stored JSON is canonical: sorted keys, no volatile fields.
            stored = json.loads(done[0].result_json)
            assert list(stored) == sorted(stored)


class TestLeases:
    """Lease-based claims: partitioning, staleness, heartbeats, cancel."""

    def _submitted(self, tmp_path, count=3, **kwargs):
        store = JobStore(tmp_path / "runs.sqlite")
        job_id = store.submit(JobSpec.probes(count, **kwargs)).id
        return store, job_id

    def test_claims_partition_concurrent_claimants(self, tmp_path):
        store_a, job_id = self._submitted(tmp_path)
        with JobStore(tmp_path / "runs.sqlite") as store_b:
            wave_a = store_a.claim_units(job_id, [0, 1], owner="claimant-a")
            assert [unit.seq for unit in wave_a] == [0, 1]
            # A second claimant asking for an overlapping set gets only
            # what is still free -- never a unit another claimant holds.
            wave_b = store_b.claim_units(job_id, [0, 1, 2], owner="claimant-b")
            assert [unit.seq for unit in wave_b] == [2]
            assert all(unit.lease_owner == "claimant-b" for unit in wave_b)
        store_a.close()

    def test_done_units_are_never_claimable(self, tmp_path):
        store, job_id = self._submitted(tmp_path)
        store.run_job(job_id, LocalExecutor())
        assert store.claim_units(job_id, [0, 1, 2], owner="late") == []

    def test_live_lease_not_reclaimed(self, tmp_path):
        from repro.runtime.jobs import default_claim_owner

        store, job_id = self._submitted(tmp_path)
        # This process is alive and the lease is fresh: nothing is stale.
        store.claim_units(job_id, [0], owner=default_claim_owner(), lease_s=3600.0)
        assert store.reset_stale_running(job_id) == 0
        assert [unit.seq for unit in store.claimable_units(job_id)] == [1, 2]
        store.close()

    def test_expired_lease_reclaimed(self, tmp_path):
        store, job_id = self._submitted(tmp_path)
        # A remote owner (liveness unknowable) whose lease already lapsed.
        store.claim_units(job_id, [0], owner="elsewhere:123:aa", lease_s=-1.0)
        assert store.reset_stale_running(job_id) == 1
        assert [unit.seq for unit in store.claimable_units(job_id)] == [0, 1, 2]
        store.close()

    def test_remote_lease_trusted_until_expiry(self, tmp_path):
        store, job_id = self._submitted(tmp_path)
        store.claim_units(job_id, [0], owner="elsewhere:123:aa", lease_s=3600.0)
        assert store.reset_stale_running(job_id) == 0
        store.close()

    def test_dead_local_pid_reclaimed_before_expiry(self, tmp_path):
        import socket

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=30)
        store, job_id = self._submitted(tmp_path)
        # Same host, pid provably dead, lease nominally good for an hour:
        # a SIGKILLed sweep must be reclaimable immediately.
        owner = f"{socket.gethostname()}:{proc.pid}:deadbeef"
        store.claim_units(job_id, [0], owner=owner, lease_s=3600.0)
        assert store.reset_stale_running(job_id) == 1
        store.close()

    def test_heartbeat_extends_leases_past_their_first_expiry(self, tmp_path):
        import threading

        db = tmp_path / "runs.sqlite"
        scratch = tmp_path / "scratch"
        with JobStore(db) as store:
            job_id = store.submit(JobSpec.probes(1, sleep_s=1.2, scratch=scratch)).id

        def run():
            with JobStore(db) as worker_store:
                worker_store.run_job(job_id, LocalExecutor(), lease_s=0.4)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            # 0.8s in, the initial 0.4s lease has lapsed on the wall clock;
            # only the heartbeat can have pushed the expiry forward.
            time.sleep(0.8)
            with JobStore(db) as observer:
                unit = observer.units(job_id)[0]
                assert unit.state == UNIT_RUNNING
                assert unit.lease_expires_at is not None
                assert unit.lease_expires_at > time.time()
                # And a rival resume must not steal the live claim.
                assert observer.reset_stale_running(job_id) == 0
        finally:
            thread.join(timeout=60)
        with JobStore(db) as store:
            assert store.job(job_id).state == JOB_DONE

    def test_cancel_mid_wave_leaves_units_claimable(self, tmp_path):
        import threading

        scratch = tmp_path / "scratch"
        store, job_id = self._submitted(tmp_path, count=4, sleep_s=0.3, scratch=scratch)
        executor = LocalExecutor()
        timer = threading.Timer(0.15, executor.cancel)
        timer.start()
        summary = store.run_job(job_id, executor)
        timer.cancel()
        # The cancel stopped the sweep early, whether it surfaced as
        # cancelled outcomes or landed between a wave's last check and
        # the next claim.
        assert summary.executed < 4
        units = store.units(job_id)
        # No unit is stranded: everything is done or back to pending with
        # its lease cleared, and a clean resume finishes the job.
        assert {unit.state for unit in units} <= {UNIT_DONE, UNIT_PENDING}
        assert all(unit.lease_owner is None for unit in units)
        resumed = store.run_job(job_id, LocalExecutor())
        assert resumed.state == JOB_DONE
        store.close()
