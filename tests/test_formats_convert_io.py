"""Tests for format conversions and Matrix-Market I/O."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConversionError
from repro.formats import (
    BitVector,
    bittree_to_bitvector,
    bitvector_to_bittree,
    from_scipy,
    pointers_to_bitvector,
    read_matrix_market,
    roundtrip_matches,
    to_coo,
    to_csc,
    to_csr,
    to_dcsr,
    to_dense_matrix,
    to_scipy_csr,
    vector_to_bitvector,
    write_matrix_market,
)
from repro.formats.coo import COOMatrix


class TestConversions:
    def test_csr_to_csc_to_coo_cycle(self, small_csr, small_dense):
        csc = to_csc(small_csr)
        coo = to_coo(csc)
        back = to_csr(coo)
        assert np.array_equal(back.to_dense(), small_dense)

    def test_to_dcsr(self, small_csr):
        dcsr = to_dcsr(small_csr)
        assert dcsr.stored_rows == 3
        assert np.array_equal(dcsr.to_dense(), small_csr.to_dense())

    def test_to_dense_matrix(self, small_coo, small_dense):
        assert np.array_equal(to_dense_matrix(small_coo).to_dense(), small_dense)

    def test_identity_conversions_return_same_object(self, small_csr, small_coo):
        assert to_csr(small_csr) is small_csr
        assert to_coo(small_coo) is small_coo

    def test_scipy_roundtrip(self, small_csr, small_dense):
        scipy_matrix = to_scipy_csr(small_csr)
        back = from_scipy(scipy_matrix, "csr")
        assert np.array_equal(back.to_dense(), small_dense)

    @pytest.mark.parametrize("fmt", ["csr", "csc", "coo", "dcsr", "dense"])
    def test_from_scipy_all_targets(self, small_csr, small_dense, fmt):
        converted = from_scipy(to_scipy_csr(small_csr), fmt)
        assert np.allclose(converted.to_dense(), small_dense)

    def test_from_scipy_unknown_format(self, small_csr):
        with pytest.raises(ConversionError):
            from_scipy(to_scipy_csr(small_csr), "bogus")

    def test_vector_to_bitvector(self):
        bv = vector_to_bitvector(np.array([0.0, 3.0, 0.0]))
        assert bv.indices.tolist() == [1]
        assert bv.values.tolist() == [3.0]

    def test_pointers_to_bitvector(self):
        bv = pointers_to_bitvector(10, np.array([2, 5]))
        assert bv.mask[2] and bv.mask[5]
        with pytest.raises(ConversionError):
            pointers_to_bitvector(4, np.array([9]))

    def test_bittree_bitvector_roundtrip(self):
        bv = BitVector(4096, [1, 700, 4000], [1.0, 2.0, 3.0])
        tree = bitvector_to_bittree(bv)
        back = bittree_to_bitvector(tree)
        assert back == bv

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=13),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_format_lattice_preserves_values(self, triples):
        rows = np.array([t[0] for t in triples], dtype=np.int64)
        cols = np.array([t[1] for t in triples], dtype=np.int64)
        vals = np.array([t[2] for t in triples], dtype=np.float64)
        coo = COOMatrix((12, 14), rows, cols, vals)
        dense = coo.to_dense()
        assert np.allclose(to_csr(coo).to_dense(), dense)
        assert np.allclose(to_csc(coo).to_dense(), dense)
        assert np.allclose(to_dcsr(coo).to_dense(), dense)


class TestMatrixMarketIO:
    def test_roundtrip(self, small_coo, tmp_path):
        assert roundtrip_matches(small_coo, tmp_path / "m.mtx")

    def test_write_read_csr(self, small_csr, tmp_path):
        path = tmp_path / "csr.mtx"
        write_matrix_market(small_csr, path)
        loaded = read_matrix_market(path)
        assert np.allclose(loaded.to_dense(), small_csr.to_dense())

    def test_read_symmetric(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "1 1 5.0\n"
            "3 1 2.0\n"
        )
        matrix = read_matrix_market(path)
        dense = matrix.to_dense()
        assert dense[0, 0] == 5.0
        assert dense[2, 0] == 2.0 and dense[0, 2] == 2.0

    def test_read_pattern(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "2 1\n"
        )
        matrix = read_matrix_market(path)
        assert matrix.to_dense()[1, 0] == 1.0

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            read_matrix_market(path)

    def test_truncated_entries_rejected(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            read_matrix_market(path)

    def test_ragged_entry_lines_rejected(self, tmp_path):
        # Token count coincidentally matches 2 entries x 3 columns, but the
        # lines themselves are ragged; the reference parser's error stands.
        path = tmp_path / "ragged.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n4 6 2\n1 2\n2 3 4 5\n"
        )
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            read_matrix_market(path)
