"""Tests for the separable allocator and the SpMU reordering pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SpMUConfig
from repro.core import (
    GreedyAllocator,
    MemoryRequest,
    OrderingMode,
    RMWOp,
    SeparableAllocator,
    SparseMemoryUnit,
    make_allocator,
    measure_bank_utilization,
    random_request_vectors,
)
from repro.errors import ConfigurationError, SimulationError


class TestSeparableAllocator:
    def test_no_conflicts_all_granted(self):
        allocator = SeparableAllocator(lanes=4, banks=4)
        requests = [[(lane, 0)] for lane in range(4)]
        result = allocator.allocate(requests)
        assert len(result.grants) == 4
        assert result.granted_banks == 4

    def test_conflicting_requests_one_grant_per_bank(self):
        allocator = SeparableAllocator(lanes=4, banks=4)
        requests = [[(0, 0)] for _ in range(4)]  # everyone wants bank 0
        result = allocator.allocate(requests)
        assert len(result.grants) == 1

    def test_multiple_iterations_improve_matching(self):
        # Lane 0 only wants bank 0; lane 1 wants banks {0, 1}. The first
        # iteration grants bank 0 to lane 0 and leaves lane 1 unmatched; the
        # second iteration adds lane 1 -> bank 1, which a single-pass
        # allocator would miss.
        allocator = SeparableAllocator(lanes=2, banks=2, iterations=3, priorities=1, queue_depth=4)
        requests = [[(0, 0)], [(0, 0), (1, 0)]]
        result = allocator.allocate(requests)
        assert len(result.grants) == 2
        assert set(result.grants.values()) == {0, 1}

    def test_age_priorities_respect_cutoffs(self):
        allocator = SeparableAllocator(lanes=2, banks=2, iterations=3, priorities=3, queue_depth=16)
        # A very young request (age 15) should still be granted eventually.
        requests = [[(0, 15)], []]
        result = allocator.allocate(requests)
        assert result.grants == {0: 0}

    def test_grants_never_conflict(self):
        allocator = SeparableAllocator(lanes=8, banks=8)
        rng = np.random.default_rng(0)
        for _ in range(20):
            requests = [
                [(int(rng.integers(0, 8)), int(rng.integers(0, 16))) for _ in range(4)]
                for _ in range(8)
            ]
            result = allocator.allocate(requests)
            banks = list(result.grants.values())
            assert len(banks) == len(set(banks))

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SeparableAllocator(lanes=0)
        with pytest.raises(ConfigurationError):
            SeparableAllocator(priorities=5, iterations=3)

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SeparableAllocator(lanes=4).allocate([[], []])

    def test_factory(self):
        assert isinstance(make_allocator("separable"), SeparableAllocator)
        assert isinstance(make_allocator("greedy"), GreedyAllocator)
        with pytest.raises(ConfigurationError):
            make_allocator("bogus")


class TestGreedyAllocator:
    def test_lane_order_priority(self):
        allocator = GreedyAllocator(lanes=2, banks=2)
        requests = [[(0, 0)], [(0, 0), (1, 1)]]
        result = allocator.allocate(requests)
        assert result.grants[0] == 0
        assert result.grants[1] == 1

    def test_oldest_first_within_lane(self):
        allocator = GreedyAllocator(lanes=1, banks=4)
        result = allocator.allocate([[(3, 5), (1, 0)]])
        assert result.grants[0] == 1  # age 0 request preferred


class TestSpMUFunctional:
    @pytest.mark.parametrize(
        "op,initial,value,expected_mem,expected_ret",
        [
            (RMWOp.READ, 7.0, 0.0, 7.0, 7.0),
            (RMWOp.WRITE, 7.0, 3.0, 3.0, 7.0),
            (RMWOp.ADD, 7.0, 3.0, 10.0, 10.0),
            (RMWOp.SUB, 7.0, 3.0, 4.0, 4.0),
            (RMWOp.MIN_REPORT_CHANGED, 7.0, 3.0, 3.0, 1.0),
            (RMWOp.MIN_REPORT_CHANGED, 3.0, 7.0, 3.0, 0.0),
            (RMWOp.MAX, 3.0, 7.0, 7.0, 7.0),
            (RMWOp.SWAP, 7.0, 3.0, 3.0, 7.0),
            (RMWOp.TEST_AND_SET, 0.0, 0.0, 1.0, 0.0),
            (RMWOp.WRITE_IF_ZERO, 0.0, 5.0, 5.0, 0.0),
            (RMWOp.WRITE_IF_ZERO, 2.0, 5.0, 2.0, 2.0),
            (RMWOp.BIT_OR, 4.0, 3.0, 7.0, 7.0),
            (RMWOp.BIT_AND, 6.0, 3.0, 2.0, 2.0),
        ],
    )
    def test_rmw_semantics(self, op, initial, value, expected_mem, expected_ret):
        unit = SparseMemoryUnit()
        unit.load_data(0, np.array([initial]))
        result = unit.execute_request(MemoryRequest(address=0, op=op, value=value))
        assert unit.read_data(0, 1)[0] == expected_mem
        assert result.returned == expected_ret

    def test_out_of_range_address(self):
        unit = SparseMemoryUnit()
        with pytest.raises(SimulationError):
            unit.execute_request(MemoryRequest(address=unit.capacity_words, op=RMWOp.READ))

    def test_simulate_applies_all_updates(self):
        unit = SparseMemoryUnit()
        vectors = [
            [MemoryRequest(address=i, op=RMWOp.ADD, value=1.0) for i in range(16)]
            for _ in range(5)
        ]
        unit.simulate(vectors)
        assert np.allclose(unit.read_data(0, 16), 5.0)

    def test_repeated_read_elision(self):
        unit = SparseMemoryUnit()
        vector = [MemoryRequest(address=3, op=RMWOp.READ) for _ in range(8)]
        stats = unit.simulate([vector])
        assert stats.elided_reads == 7
        assert stats.requests == 1


class TestSpMUTiming:
    def test_unordered_beats_arbitrated(self):
        config = SpMUConfig()
        unordered = measure_bank_utilization(config, OrderingMode.UNORDERED, vectors=80)
        arbitrated = measure_bank_utilization(config, OrderingMode.ARBITRATED, vectors=80)
        assert unordered > arbitrated

    def test_ordering_mode_ranking(self):
        config = SpMUConfig()
        results = {
            mode: measure_bank_utilization(config, mode, vectors=60)
            for mode in (
                OrderingMode.UNORDERED,
                OrderingMode.ADDRESS_ORDERED,
                OrderingMode.FULLY_ORDERED,
            )
        }
        assert results[OrderingMode.UNORDERED] >= results[OrderingMode.ADDRESS_ORDERED]
        assert results[OrderingMode.ADDRESS_ORDERED] >= results[OrderingMode.FULLY_ORDERED]

    def test_deeper_queue_helps(self):
        shallow = measure_bank_utilization(SpMUConfig(queue_depth=4), vectors=80)
        deep = measure_bank_utilization(SpMUConfig(queue_depth=16), vectors=80)
        assert deep > shallow

    def test_unordered_utilization_in_expected_band(self):
        # The paper reports 79.9% for the 16-deep, 16x16, 3-priority design;
        # the reproduction should land well above the arbitrated ~32% level.
        utilization = measure_bank_utilization(SpMUConfig(), vectors=150)
        assert 0.60 <= utilization <= 0.98

    def test_arbitrated_utilization_near_paper(self):
        utilization = measure_bank_utilization(
            SpMUConfig(), OrderingMode.ARBITRATED, vectors=150
        )
        assert 0.25 <= utilization <= 0.45

    def test_stats_consistency(self):
        unit = SparseMemoryUnit()
        trace = random_request_vectors(30, seed=5)
        stats = unit.simulate(trace)
        assert stats.vectors == 30
        assert stats.requests + stats.elided_reads == 30 * 16
        assert stats.cycles > 0
        assert stats.bank_busy_cycles == stats.requests

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_simulation_terminates(self, vectors, seed):
        unit = SparseMemoryUnit()
        trace = random_request_vectors(vectors, seed=seed)
        stats = unit.simulate(trace)
        assert stats.cycles >= vectors  # at least one cycle per vector
