"""Tests for the architecture configuration objects."""

from __future__ import annotations

import pytest

from repro.config import (
    CapstanConfig,
    MemoryTechnology,
    PlasticineConfig,
    ScannerConfig,
    ShuffleConfig,
    ShuffleMode,
    SpMUConfig,
    default_config,
)
from repro.errors import ConfigurationError


class TestSpMUConfig:
    def test_defaults_match_paper(self):
        config = SpMUConfig()
        assert config.banks == 16
        assert config.queue_depth == 16
        assert config.capacity_bytes == 256 * 1024

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpMUConfig(banks=13).validate()
        with pytest.raises(ConfigurationError):
            SpMUConfig(queue_depth=0).validate()
        with pytest.raises(ConfigurationError):
            SpMUConfig(allocator_priorities=5).validate()


class TestScannerConfig:
    def test_defaults(self):
        config = ScannerConfig()
        assert config.bit_width == 256
        assert config.output_vectorization == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScannerConfig(bit_width=0).validate()


class TestShuffleConfig:
    def test_mode_shift_budget(self):
        assert ShuffleMode.MRG0.max_shift == 0
        assert ShuffleMode.MRG1.max_shift == 1
        assert ShuffleMode.MRG16.max_shift == 16
        assert ShuffleMode.NONE.max_shift == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShuffleConfig(endpoints=3).validate()


class TestCapstanConfig:
    def test_defaults_match_table7(self):
        config = default_config()
        assert config.compute_units == 200
        assert config.memory_units == 200
        assert config.address_generators == 80
        assert config.lanes == 16
        assert config.clock_ghz == 1.6
        assert config.memory_bandwidth_gbps == 1800.0
        assert config.on_chip_sram_bytes == 200 * 256 * 1024

    def test_memory_bandwidths(self):
        assert CapstanConfig(memory=MemoryTechnology.DDR4).memory_bandwidth_gbps == 68.0
        assert CapstanConfig(memory=MemoryTechnology.HBM2).memory_bandwidth_gbps == 900.0

    def test_with_memory_and_shuffle(self):
        config = CapstanConfig().with_memory(MemoryTechnology.DDR4)
        assert config.memory is MemoryTechnology.DDR4
        shuffled = CapstanConfig().with_shuffle_mode(ShuffleMode.MRG16)
        assert shuffled.shuffle.mode is ShuffleMode.MRG16

    def test_scaled(self):
        scaled = CapstanConfig().scaled(0.5)
        assert scaled.compute_units == 100
        with pytest.raises(ConfigurationError):
            CapstanConfig().scaled(0.0)

    def test_cycle_time(self):
        assert CapstanConfig().cycle_time_ns == pytest.approx(0.625)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CapstanConfig(lanes=12).validate()
        with pytest.raises(ConfigurationError):
            CapstanConfig(sparse_fraction=1.5).validate()

    def test_peak_flops(self):
        assert CapstanConfig().peak_flops_per_cycle == 3200


class TestPlasticineConfig:
    def test_shares_grid_and_clock(self):
        config = PlasticineConfig()
        assert config.compute_units == 200
        assert config.clock_ghz == 1.6
        assert config.cycle_time_ns == pytest.approx(0.625)
