"""Property tests for the batched (array-in, array-out) profiling helpers.

Each batch helper must aggregate exactly what its per-element counterpart
computes, across random COO-style inputs, random scanner configurations,
and both flat and bit-tree traversals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.common import (
    cross_tile_fraction_rows,
    cross_tile_fraction_rows_batch,
    expand_slices,
)
from repro.apps.profile import vector_slots_batch, vector_slots_for
from repro.apps.scan_model import (
    scan_cost_growing_unions,
    scan_cost_pair,
    scan_cost_rows,
    scan_cost_single,
    zero_cost,
)
from repro.config import ScannerConfig
from repro.core.scanner import ScanMode
from repro.errors import SimulationError
from repro.formats import CSRMatrix
from repro.workloads import balanced_partition


def _random_config(rng) -> ScannerConfig:
    return ScannerConfig(
        bit_width=int(rng.choice([32, 64, 256, 512])),
        output_vectorization=int(rng.choice([1, 4, 16])),
    )


class TestVectorSlotsBatch:
    def test_matches_loop_on_random_trips(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            trips = rng.integers(0, 100, size=rng.integers(0, 50)).tolist()
            assert vector_slots_batch(trips) == vector_slots_for(trips)

    def test_empty(self):
        assert vector_slots_batch([]) == 0

    def test_zero_trip_still_issues(self):
        assert vector_slots_batch([0, 0]) == 2


class TestExpandSlices:
    def test_matches_per_slice_concatenation(self):
        rng = np.random.default_rng(2)
        lengths = rng.integers(0, 7, size=12)
        pointers = np.concatenate(([0], np.cumsum(lengths)))
        selected = rng.permutation(12)[:7]
        flat, got_lengths = expand_slices(pointers, selected)
        expected = np.concatenate(
            [np.arange(pointers[s], pointers[s + 1]) for s in selected]
        )
        assert np.array_equal(flat, expected)
        assert np.array_equal(got_lengths, lengths[selected])

    def test_all_slices_by_default(self):
        pointers = np.array([0, 2, 2, 5])
        flat, lengths = expand_slices(pointers)
        assert np.array_equal(flat, np.arange(5))
        assert np.array_equal(lengths, [2, 0, 3])


class TestScanCostRows:
    @pytest.mark.parametrize("bittree", [False, True])
    def test_matches_per_row_merge_on_random_inputs(self, bittree):
        rng = np.random.default_rng(3 if bittree else 4)
        for trial in range(25):
            n_rows = int(rng.integers(1, 8))
            space = int(rng.integers(1, 3000))
            config = _random_config(rng) if trial % 2 else ScannerConfig()
            row_chunks, position_chunks = [], []
            expected = zero_cost()
            for row in range(n_rows):
                count = int(rng.integers(0, min(space, 200)))
                positions = np.sort(rng.choice(space, size=count, replace=False))
                expected = expected.merge(
                    scan_cost_single(positions, space, config, bittree=bittree)
                )
                row_chunks.append(np.full(count, row, dtype=np.int64))
                position_chunks.append(positions)
            got = scan_cost_rows(
                np.concatenate(row_chunks),
                np.concatenate(position_chunks),
                n_rows,
                space,
                config,
                bittree=bittree,
            )
            assert got == expected

    def test_rows_without_positions_still_stream_chunks(self):
        config = ScannerConfig()
        empty = np.empty(0, dtype=np.int64)
        got = scan_cost_rows(empty, empty, 3, 1000, config)
        single = scan_cost_single(empty, 1000, config)
        assert got.cycles == 3 * single.cycles
        assert got.empty_cycles == 3 * single.empty_cycles

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            scan_cost_rows(np.array([0]), np.array([10]), 1, 5)
        with pytest.raises(SimulationError):
            scan_cost_rows(np.array([2]), np.array([1]), 2, 5)


class TestScanCostGrowingUnions:
    def test_matches_sequential_union_scans(self):
        rng = np.random.default_rng(5)
        for trial in range(25):
            n_rows = int(rng.integers(1, 5))
            space = int(rng.integers(1, 2000))
            config = _random_config(rng) if trial % 2 else ScannerConfig()
            expected = zero_cost()
            rows, positions, firsts, steps_per_row = [], [], [], []
            for row in range(n_rows):
                step_count = int(rng.integers(0, 6))
                steps_per_row.append(step_count)
                union = np.empty(0, dtype=np.int64)
                first_seen = {}
                for step in range(1, step_count + 1):
                    operand = np.unique(
                        rng.choice(space, size=int(rng.integers(1, min(space, 60) + 1)))
                    )
                    expected = expected.merge(
                        scan_cost_pair(operand, union, space, ScanMode.UNION, config)
                    )
                    for position in operand.tolist():
                        first_seen.setdefault(position, step)
                    union = np.union1d(union, operand)
                for position, step in first_seen.items():
                    rows.append(row)
                    positions.append(position)
                    firsts.append(step)
            got = scan_cost_growing_unions(
                np.asarray(rows),
                np.asarray(positions),
                np.asarray(firsts),
                np.asarray(steps_per_row),
                space,
                config,
            )
            assert got == expected

    def test_no_steps_is_free(self):
        empty = np.empty(0, dtype=np.int64)
        assert scan_cost_growing_unions(empty, empty, empty, np.array([0, 0]), 100) == zero_cost()


class TestCrossTileBatch:
    def test_matches_loop_on_random_matrices(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            rows, cols = int(rng.integers(1, 40)), int(rng.integers(1, 40))
            dense = rng.random((rows, cols))
            dense[dense < 0.8] = 0.0
            matrix = CSRMatrix.from_dense(dense)
            tiles = int(rng.integers(1, 9))
            partitioning = balanced_partition(
                matrix.row_lengths().astype(np.float64), tiles
            )
            assert cross_tile_fraction_rows_batch(
                matrix, partitioning
            ) == cross_tile_fraction_rows(matrix, partitioning)
