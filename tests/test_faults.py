"""Fault-plan unit tests: matching, accounting, seams, and the wrapper.

The chaos *invariants* (exactly-once commit, byte-identical cache, ...)
live in ``tests/test_chaos.py``; this file pins the mechanics they rely
on -- a plan that misfires here makes every chaos assertion meaningless.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import faults
from repro.runtime.executors import LocalExecutor
from repro.runtime.faults import (
    ENV_FAULT_PLAN,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultyExecutor,
    PermanentFaultInjected,
    UNIT_FAULT_KINDS,
    active_plan,
    install_plan,
)


@pytest.fixture(autouse=True)
def _clean_seams():
    """Every test starts and ends with no plan installed anywhere."""
    install_plan(None)
    os.environ.pop(ENV_FAULT_PLAN, None)
    yield
    install_plan(None)
    os.environ.pop(ENV_FAULT_PLAN, None)


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            Fault(kind="gremlin")

    def test_match_is_payload_subset(self):
        fault = Fault(kind="error", match={"value": 3})
        assert fault.matches({"kind": "probe", "value": 3})
        assert not fault.matches({"kind": "probe", "value": 4})
        assert not fault.matches({"kind": "probe"})

    def test_empty_match_matches_everything(self):
        assert Fault(kind="error").matches({"anything": "at all"})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [Fault(kind="crash", unit_index=2, times=3, exit_code=9)],
            seed=7,
            state_dir="/tmp/x",
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.seed == 7
        assert rebuilt.state_dir == "/tmp/x"
        assert rebuilt.faults == plan.faults

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fault plan JSON"):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultPlanError, match="bad fault plan JSON"):
            FaultPlan.from_json('{"faults": [{"kine": "typo"}]}')

    def test_times_bounds_firings(self):
        plan = FaultPlan([Fault(kind="error", times=2)])
        fired = [plan.take(UNIT_FAULT_KINDS, {}) for _ in range(5)]
        assert [fault is not None for fault in fired] == [True, True, False, False, False]

    def test_unit_index_arms_on_nth_match(self):
        plan = FaultPlan([Fault(kind="error", unit_index=2, times=10)])
        fired = [plan.take(UNIT_FAULT_KINDS, {"value": i}) for i in range(4)]
        assert [fault is not None for fault in fired] == [False, False, True, False]

    def test_ordinal_counts_only_matching_payloads(self):
        plan = FaultPlan([Fault(kind="error", match={"app": "bfs"}, unit_index=1)])
        # Non-matching payloads must not advance the ordinal.
        assert plan.take(UNIT_FAULT_KINDS, {"app": "sssp"}) is None
        assert plan.take(UNIT_FAULT_KINDS, {"app": "bfs"}) is None  # ordinal 0
        assert plan.take(UNIT_FAULT_KINDS, {"app": "bfs"}) is not None  # ordinal 1

    def test_probability_is_seed_deterministic(self):
        def decisions(seed):
            plan = FaultPlan([Fault(kind="error", probability=0.5, times=100)], seed=seed)
            return [plan.take(UNIT_FAULT_KINDS, {}) is not None for _ in range(40)]

        first = decisions(seed=1)
        assert decisions(seed=1) == first  # same seed, same plan -> identical
        assert decisions(seed=2) != first  # a different seed moves the draws
        assert 5 <= sum(first) <= 35  # and p=0.5 actually fires sometimes

    def test_state_dir_bounds_firings_across_instances(self, tmp_path):
        # Two plan objects (a worker and its respawn) share the marker
        # directory, so `times` is a global budget, not a per-process one.
        first = FaultPlan([Fault(kind="error", times=2)], state_dir=str(tmp_path))
        second = FaultPlan([Fault(kind="error", times=2)], state_dir=str(tmp_path))
        assert first.take(UNIT_FAULT_KINDS, {}) is not None
        assert second.take(UNIT_FAULT_KINDS, {}) is not None
        assert first.take(UNIT_FAULT_KINDS, {}) is None
        assert second.take(UNIT_FAULT_KINDS, {}) is None


class TestSeams:
    def test_installed_sets_and_restores_both_seams(self):
        plan = FaultPlan([Fault(kind="error")])
        assert active_plan() is None
        with plan.installed():
            assert active_plan() is plan
            assert os.environ[ENV_FAULT_PLAN] == plan.to_json()
        assert active_plan() is None
        assert ENV_FAULT_PLAN not in os.environ

    def test_env_seam_parse_is_cached(self):
        plan = FaultPlan([Fault(kind="error", times=1)])
        os.environ[ENV_FAULT_PLAN] = plan.to_json()
        seen = active_plan()
        assert seen is not None and seen is active_plan()
        # The cached object keeps its in-memory accounting across calls.
        assert seen.take(UNIT_FAULT_KINDS, {}) is not None
        assert active_plan().take(UNIT_FAULT_KINDS, {}) is None

    def test_inject_error_fault_classifications(self):
        transient = FaultPlan([Fault(kind="error")])
        with transient.installed():
            with pytest.raises(FaultInjected):
                faults.inject_unit_fault({"kind": "probe"})
        permanent = FaultPlan([Fault(kind="error", permanent=True)])
        with permanent.installed():
            with pytest.raises(PermanentFaultInjected):
                faults.inject_unit_fault({"kind": "probe"})

    def test_no_plan_is_a_no_op(self):
        faults.inject_unit_fault({"kind": "probe"})
        faults.inject_startup_fault()
        assert faults.take_protocol_fault({"kind": "probe"}) is None


class TestFaultyExecutor:
    def test_delegates_to_inner(self):
        inner = LocalExecutor(workers=3, retries=1)
        wrapped = FaultyExecutor(inner, FaultPlan([]))
        assert wrapped.name == "faulty-local"
        assert wrapped.workers == 3
        assert wrapped.retries == 1

    def test_injects_into_run_units(self):
        # One transient error on the second unit: with one retry the wave
        # still completes, and the fault never leaks outside the run.
        plan = FaultPlan([Fault(kind="error", unit_index=1)])
        wrapped = FaultyExecutor(LocalExecutor(retries=1, backoff_s=0.0), plan)
        payloads = [{"kind": "probe", "value": i} for i in range(3)]
        outcomes = wrapped.run_units(payloads)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert [o.attempts for o in outcomes] == [1, 2, 1]
        assert active_plan() is None
