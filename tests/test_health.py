"""Health-layer tests: error classification, windows, circuit breakers.

The breaker tests drive state transitions with an injected clock, so no
test here sleeps; the classification tests pin the cross-process
contract (type names in summary strings) that the retry loop and the
dead-letter logic both depend on.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.executors.base import WorkerError
from repro.runtime.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    PERMANENT,
    TRANSIENT,
    CircuitBreaker,
    HealthRegistry,
    RollingWindow,
    WorkerHealth,
    classify_error,
)
from repro.runtime.jobs import JobError, UnitSpecError


class TestClassifyError:
    def test_live_exceptions_by_mro(self):
        assert classify_error(TypeError("bad call")) == PERMANENT
        assert classify_error(ModuleNotFoundError("no module")) == PERMANENT
        assert classify_error(ConfigurationError("bad knob")) == PERMANENT
        assert classify_error(RuntimeError("flaky")) == TRANSIENT
        assert classify_error(OSError("pipe broke")) == TRANSIENT

    def test_subclass_inherits_permanence(self):
        class CustomSpecError(UnitSpecError):
            pass

        assert classify_error(CustomSpecError("still a spec problem")) == PERMANENT

    def test_job_error_stays_transient(self):
        # The probe unit's deliberate failures raise JobError; retry tests
        # depend on those earning retries.
        assert classify_error(JobError("probe failing on attempt 1 of 2")) == TRANSIENT

    def test_summary_strings_cross_process(self):
        assert classify_error("ImportError: no module named numba") == PERMANENT
        assert classify_error("UnitSpecError: unknown work-unit kind 'x'") == PERMANENT
        assert classify_error("JobError: probe failing on attempt 1 of 3") == TRANSIENT
        # Prose (no leading type name) is not a classification signal.
        assert classify_error("unit exceeded 5s timeout") == TRANSIENT
        # Dotted names classify by their last component.
        assert classify_error("repro.errors.ConfigurationError: bad") == PERMANENT

    def test_worker_error_classifies_by_message_head(self):
        # Across the subprocess boundary only the summary survives, inside
        # a WorkerError whose own type is (correctly) transient.
        assert classify_error(WorkerError("AttributeError: 'NoneType' ...")) == PERMANENT
        assert classify_error(WorkerError("worker died mid-unit")) == TRANSIENT

    def test_unknowns_default_transient(self):
        assert classify_error(None) == TRANSIENT
        assert classify_error(42) == TRANSIENT


class TestRollingWindow:
    def test_bounded_and_aggregated(self):
        window = RollingWindow(size=4)
        for i in range(6):
            window.record(ok=(i % 2 == 0), duration_s=float(i))
        assert len(window) == 4  # only the last four survive
        assert window.failures == 2
        assert window.failure_rate == 0.5
        assert window.mean_duration_s == (2 + 3 + 4 + 5) / 4

    def test_empty_window_rates(self):
        window = RollingWindow()
        assert window.failure_rate == 0.0
        assert window.mean_duration_s == 0.0


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown_s", 10.0)
        return CircuitBreaker(clock=lambda: self.now, **kwargs)

    def test_closed_until_threshold(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never three *consecutive* failures

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()  # cooldown not elapsed
        self.now = 10.0
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # held while the probe is in flight

    def test_probe_success_closes(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.now = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()  # a fresh cooldown starts at now=10
        self.now = 20.0
        assert breaker.allow()

    def test_zero_cooldown_goes_straight_to_probe(self):
        # The subprocess executor's default: replace immediately, no stall.
        breaker = self._breaker(cooldown_s=0.0, failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow()
        assert breaker.state == HALF_OPEN


class TestWorkerHealth:
    def test_record_feeds_window_and_breaker(self):
        health = WorkerHealth(slot=0)
        health.record(ok=False, duration_s=0.1)
        health.record(ok=True, duration_s=0.2)
        assert health.window.failures == 1
        assert health.breaker.state == CLOSED

    def test_spawn_after_trip_counts_as_replacement(self):
        health = WorkerHealth(slot=0, breaker=CircuitBreaker(failure_threshold=1))
        health.note_spawn()
        assert (health.launched, health.replaced) == (1, 0)
        health.record(ok=False, duration_s=0.1)
        health.breaker.allow()  # quarantine check transitions to half-open
        health.note_spawn()
        assert (health.launched, health.replaced) == (2, 1)

    def test_registry_report(self):
        registry = HealthRegistry(window=8, failure_threshold=2)
        registry.slot(0).record(ok=True, duration_s=0.5)
        registry.slot(1).record(ok=False, duration_s=0.1)
        report = registry.report()
        assert sorted(report) == [0, 1]
        assert report[0]["failures"] == 0
        assert report[1]["failures"] == 1
        assert report[1]["state"] == CLOSED
        assert registry.slot(0) is registry.slot(0)  # stable per-slot objects
