"""Adaptive DSE search: spaces, ranking, quality, durability, and the CLI.

Quality is pinned against exhaustive enumeration on a small space: both
strategies must recover >= 95% of the exhaustive frontier's hypervolume
while charging <= 25% of its evaluations (the ISSUE's acceptance bar,
reproduced here at test scale). Durability mirrors the job layer's
SIGKILL discipline: a killed ``dse_search`` job resumes from the last
committed generation and finishes byte-identical to an uninterrupted
run, with an equal evaluation count.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.profile import WorkloadProfile
from repro.errors import ConfigurationError
from repro.runtime.cli import main as cli_main
from repro.runtime.dse import explore
from repro.runtime.executors import LocalExecutor
from repro.runtime.executors.subprocess import _worker_env
from repro.runtime.jobs import UNIT_DONE, JobSpec, JobStore
from repro.runtime.registry import RunContext
from repro.runtime.search import (
    AdaptiveSearch,
    SearchSpace,
    SearchStore,
    hypervolume,
    make_strategy,
    pareto_ranks,
    rank_order,
    scalarize,
)

#: A 128-point space covering structural and platform axes; string values
#: exercise the shared sweep parsers.
AXES = {
    "lanes": ["8", "16"],
    "banks": ["16", "32"],
    "queue_depth": ["8", "16", "32", "4"],
    "memory": ["ddr4", "hbm2e"],
    "allocator": ["separable", "greedy"],
    "crossbar_inputs": ["16", "32"],
}


def _profiles():
    return [
        WorkloadProfile(
            app="a", dataset="d",
            compute_iterations=50_000, vector_slots=4_000,
            sram_random_updates=30_000, outer_parallelism=32,
            dram_stream_read_bytes=1e6,
        ),
        WorkloadProfile(
            app="b", dataset="e",
            compute_iterations=9_000, vector_slots=700,
            sram_random_updates=5_000, cross_tile_request_fraction=0.5,
            sequential_rounds=4, pipelinable=False, outer_parallelism=8,
        ),
        WorkloadProfile(
            app="c", dataset="f",
            compute_iterations=120_000, scan_cycles=20_000,
            dram_random_updates=8_000, dram_stream_read_bytes=4e6,
            outer_parallelism=16,
        ),
    ]


class TestSearchSpace:
    def test_from_axes_parses_and_dedupes(self):
        space = SearchSpace.from_axes({"lanes": ["8", "16", "8"], "memory": ["hbm2e"]})
        assert space.names == ["lanes", "memory"]
        assert space.size == 2
        assert space.combo_values((1, 0))["lanes"] == 16

    def test_variant_name_matches_sweep_style(self):
        space = SearchSpace.from_axes(AXES)
        assert space.variant_name((0, 1, 0, 1, 0, 1)) == "8-32-8-hbm2e-separable-32"

    def test_platform_is_validated(self):
        space = SearchSpace.from_axes(AXES)
        platform = space.platform((1, 0, 0, 0, 1, 0))
        assert platform.config.lanes == 16
        assert platform.config.spmu.banks == 16
        assert platform.allocator == "greedy"
        with pytest.raises(ConfigurationError):
            SearchSpace.from_axes({"lanes": ["12"]}).platform((0,))

    def test_rejects_empty_and_unknown_axes(self):
        with pytest.raises(ConfigurationError):
            SearchSpace.from_axes({})
        with pytest.raises(ConfigurationError):
            SearchSpace.from_axes({"lanes": []})
        with pytest.raises(ConfigurationError):
            SearchSpace.from_axes({"warp": [1, 2]})

    def test_mutate_always_changes_something(self):
        space = SearchSpace.from_axes(AXES)
        rng = np.random.default_rng(0)
        combo = space.default_combo()
        for _ in range(50):
            mutated = space.mutate(combo, rng, rate=0.1)
            assert mutated != combo
            assert all(
                0 <= gene < len(values)
                for gene, (_, values) in zip(mutated, space.axes)
            )

    def test_crossover_genes_come_from_parents(self):
        space = SearchSpace.from_axes(AXES)
        rng = np.random.default_rng(1)
        a = tuple(0 for _ in space.axes)
        b = tuple(len(values) - 1 for _, values in space.axes)
        child = space.crossover(a, b, rng)
        assert all(g in (x, y) for g, x, y in zip(child, a, b))

    def test_seed_combos_start_from_paper_design_point(self):
        space = SearchSpace.from_axes(AXES)
        seeds = space.seed_combos()
        assert seeds[0] == space.default_combo()
        # The paper's 16/16 point is a candidate on both axes, so the
        # default combo picks it rather than the middle fallback.
        values = space.combo_values(seeds[0])
        assert values["lanes"] == 16 and values["banks"] == 16
        assert len(seeds) == len(set(seeds))


class TestRanking:
    def test_scalarize_is_zero_at_the_per_objective_best(self):
        costs = np.array([[1.0, 1.0], [2.0, 2.0]])
        scores = scalarize(costs)
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(np.log(2.0))

    def test_scalarize_rejects_bad_weights(self):
        costs = np.array([[1.0, 2.0]])
        with pytest.raises(ConfigurationError):
            scalarize(costs, weights=[1.0])
        with pytest.raises(ConfigurationError):
            scalarize(costs, weights=[-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            scalarize(np.array([1.0, 2.0]))

    def test_pareto_ranks_peel_layers(self):
        costs = np.array([[1.0, 5.0], [2.0, 2.0], [5.0, 1.0], [3.0, 3.0], [6.0, 6.0]])
        assert list(pareto_ranks(costs)) == [0, 0, 0, 1, 2]

    def test_rank_order_prefers_frontier_then_scalar(self):
        costs = np.array([[3.0, 3.0], [1.0, 1.0], [10.0, 10.0]])
        assert list(rank_order(costs)) == [1, 0, 2]


class TestHypervolume:
    def test_single_point_box(self):
        assert hypervolume(np.array([[1.0, 1.0]]), (2.0, 2.0)) == pytest.approx(1.0)

    def test_two_point_staircase(self):
        costs = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert hypervolume(costs, (3.0, 3.0)) == pytest.approx(3.0)

    def test_duplicates_and_dominated_points_add_nothing(self):
        base = np.array([[1.0, 2.0], [2.0, 1.0]])
        noisy = np.vstack([base, base, [[2.5, 2.5]]])
        assert hypervolume(noisy, (3.0, 3.0)) == pytest.approx(3.0)

    def test_points_beyond_reference_contribute_zero(self):
        assert hypervolume(np.array([[4.0, 4.0]]), (3.0, 3.0)) == 0.0

    def test_three_objectives_inclusion_exclusion(self):
        # Boxes 2x1x1 and 1x2x2 overlapping in 1x1x1: 2 + 4 - 1 = 5.
        costs = np.array([[1.0, 2.0, 2.0], [2.0, 1.0, 1.0]])
        assert hypervolume(costs, (3.0, 3.0, 3.0)) == pytest.approx(5.0)

    def test_rejects_mismatched_reference(self):
        with pytest.raises(ConfigurationError):
            hypervolume(np.array([[1.0, 1.0]]), (2.0,))


class TestSearchQuality:
    """Both strategies against the exhaustive frontier, at test scale."""

    def _exhaustive(self):
        axes = {
            axis: [SearchSpace.from_axes({axis: values}).axes[0][1][i]
                   for i in range(len(values))]
            for axis, values in AXES.items()
        }
        result = explore(profiles=_profiles(), energy=True, **axes)
        return np.column_stack(
            [result.gmean_cycles, result.area_mm2, result.gmean_energy_mj]
        )

    @pytest.mark.parametrize(
        "strategy",
        [
            make_strategy("halving", population=48, generations=3, eta=4),
            make_strategy("evolve", population=8, generations=4),
        ],
        ids=["halving", "evolve"],
    )
    def test_recovers_frontier_within_budget(self, strategy):
        space = SearchSpace.from_axes(AXES)
        exhaustive = self._exhaustive()
        reference = exhaustive.max(axis=0) * 1.1
        best = hypervolume(exhaustive, reference)

        engine = AdaptiveSearch(space, strategy, _profiles(), seed=3)
        result = engine.run()
        assert result.evaluations <= 0.25 * space.size
        assert result.hypervolume(reference) >= 0.95 * best
        assert result.frontier()

    def test_same_seed_is_byte_identical(self):
        space = SearchSpace.from_axes(AXES)
        runs = [
            AdaptiveSearch(
                space, make_strategy("evolve", population=6, generations=3),
                _profiles(), seed=11,
            ).run()
            for _ in range(2)
        ]
        a, b = (json.dumps(r.to_dict(), sort_keys=True) for r in runs)
        assert a == b

    def test_different_seeds_diverge(self):
        space = SearchSpace.from_axes(AXES)
        explored = [
            set(
                AdaptiveSearch(
                    space, make_strategy("evolve", population=6, generations=3),
                    _profiles(), seed=seed,
                ).run().names
            )
            for seed in (0, 1)
        ]
        assert explored[0] != explored[1]

    def test_objectives_validated(self):
        space = SearchSpace.from_axes(AXES)
        with pytest.raises(ConfigurationError):
            AdaptiveSearch(
                space, make_strategy("evolve"), _profiles(), objectives=("watts",)
            )
        with pytest.raises(ConfigurationError):
            AdaptiveSearch(space, make_strategy("evolve"), [])


class TestStoreResume:
    def _params(self):
        return dict(population=6, generations=4)

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        space = SearchSpace.from_axes(AXES)
        reference = AdaptiveSearch(
            space, make_strategy("evolve", **self._params()), _profiles(), seed=2
        ).run()

        store = SearchStore(tmp_path / "search")
        first = AdaptiveSearch(
            space, make_strategy("evolve", **self._params()), _profiles(),
            seed=2, store=store,
        )
        first.step()
        first.step()
        # States are numbered by generations completed: 1 and 2 committed.
        assert store.committed_generations(first.key) == [1, 2]

        resumed = AdaptiveSearch(
            space, make_strategy("evolve", **self._params()), _profiles(),
            seed=2, store=store,
        )
        assert resumed.generation == 2  # picked up mid-search
        evaluations_at_resume = resumed.evaluations
        result = resumed.run()
        assert resumed.evaluations > evaluations_at_resume
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )
        assert result.evaluations == reference.evaluations

        latest = store.load_latest_result()
        assert latest is not None and latest["search_key"] == first.key
        assert latest["frontier"] == list(result.frontier())

    def test_code_or_parameter_change_starts_fresh(self, tmp_path):
        space = SearchSpace.from_axes(AXES)
        store = SearchStore(tmp_path / "search")
        engine = AdaptiveSearch(
            space, make_strategy("evolve", **self._params()), _profiles(),
            seed=2, store=store,
        )
        engine.step()
        other_seed = AdaptiveSearch(
            space, make_strategy("evolve", **self._params()), _profiles(),
            seed=3, store=store,
        )
        assert other_seed.key != engine.key
        assert other_seed.generation == 0


@pytest.fixture
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "profiles"))
    monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
    monkeypatch.setenv("REPRO_SEARCH_STORE", str(tmp_path / "search-default"))
    return tmp_path


class TestDseSearchJob:
    SMALL_AXES = {
        "lanes": [8, 16],
        "banks": [16, 32],
        "memory": ["ddr4", "hbm2e"],
    }

    def _spec(self, store_root, generations=3):
        return JobSpec.dse_search(
            self.SMALL_AXES,
            strategy="evolve",
            params={"population": 4, "generations": generations},
            seed=5,
            apps=["spmv-csr"],
            context=RunContext(scale=1 / 512),
            store_root=store_root,
        )

    def test_one_unit_per_generation(self, tmp_path):
        spec = self._spec(tmp_path / "search", generations=3)
        assert len(spec.units) == 3
        assert len({unit.key for unit in spec.units}) == 3
        assert all(unit.kind == "dse_search" for unit in spec.units)
        assert spec.key == self._spec(tmp_path / "search", generations=3).key

    def test_job_equals_direct_engine(self, isolated_caches, tmp_path):
        job_store_root = tmp_path / "job-search"
        with JobStore(tmp_path / "runs.sqlite") as store:
            job = store.submit(self._spec(job_store_root))
            summary = store.run_job(job.id, LocalExecutor())
            assert summary.failed == 0
            final = store.results(job.id)[-1][1]
        assert final["done"] is True

        from repro.runtime.runner import ExperimentRunner

        report = ExperimentRunner(context=RunContext(scale=1 / 512), workers=1).run(
            apps=["spmv-csr"]
        )
        profiles = [r.profile for r in report.results if r.profile is not None]
        direct = AdaptiveSearch(
            SearchSpace.from_axes(self.SMALL_AXES),
            make_strategy("evolve", population=4, generations=3),
            profiles,
            seed=5,
        ).run()

        persisted = SearchStore(job_store_root).load_result(final["search_key"])
        assert persisted is not None
        persisted.pop("search_key")
        assert json.dumps(persisted, sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )

    def test_sigkill_mid_search_then_resume(self, isolated_caches, tmp_path):
        """A killed search job resumes from the last committed generation
        and finishes byte-identical, with zero extra evaluations."""
        db = tmp_path / "runs.sqlite"
        search_root = tmp_path / "killed-search"
        spec = self._spec(search_root, generations=8)
        with JobStore(db) as store:
            job_id = store.submit(spec).id

        child_code = (
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.runtime.executors import LocalExecutor\n"
            "from repro.runtime.jobs import JobStore\n"
            "with JobStore(Path(sys.argv[1])) as store:\n"
            "    store.run_job(int(sys.argv[2]), LocalExecutor())\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", child_code, str(db), str(job_id)],
            env=_worker_env(),
        )
        try:
            # Kill as soon as at least one generation state is committed.
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                if list(search_root.glob("*/gen-*.json")):
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill: resume is a no-op
                time.sleep(0.01)
            else:
                pytest.fail("child never committed a generation")
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=10)

        committed_dirs = list(search_root.glob("*/"))
        assert committed_dirs, "no search state survived the kill"
        key = committed_dirs[0].name
        committed_after_kill = SearchStore(search_root).committed_generations(key)
        assert committed_after_kill == list(range(1, len(committed_after_kill) + 1))

        # The resumed engine starts from the committed frontier, not zero.
        from repro.runtime.runner import ExperimentRunner

        report = ExperimentRunner(context=RunContext(scale=1 / 512), workers=1).run(
            apps=["spmv-csr"]
        )
        profiles = [r.profile for r in report.results if r.profile is not None]
        probe = AdaptiveSearch(
            SearchSpace.from_axes(self.SMALL_AXES),
            make_strategy("evolve", population=4, generations=8),
            profiles,
            seed=5,
            store=SearchStore(search_root),
        )
        assert probe.key == key
        assert probe.generation == len(committed_after_kill)

        with JobStore(db) as store:
            summary = store.run_job(job_id, LocalExecutor())
            assert summary.failed == 0
            assert store.unit_states(job_id)[UNIT_DONE] == 8

        # Byte-identical to an uninterrupted in-process reference, with an
        # equal evaluation budget: committed generations were never redone.
        reference = AdaptiveSearch(
            SearchSpace.from_axes(self.SMALL_AXES),
            make_strategy("evolve", population=4, generations=8),
            profiles,
            seed=5,
        ).run()
        persisted = SearchStore(search_root).load_result(key)
        assert persisted is not None
        persisted.pop("search_key")
        assert json.dumps(persisted, sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )
        assert persisted["evaluations"] == reference.evaluations


class TestSearchCli:
    def test_search_cli_same_seed_byte_identical(self, isolated_caches, tmp_path):
        outputs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            rc = cli_main(
                [
                    "dse",
                    "--axis", "lanes=8,16",
                    "--axis", "banks=16,32",
                    "--axis", "memory=ddr4,hbm2e",
                    "--apps", "spmv-csr",
                    "--scale", "1/512",
                    "--search", "evolve",
                    "--population", "4",
                    "--generations", "2",
                    "--seed", "9",
                    "--search-store", "none",
                    "--json", str(out),
                ]
            )
            assert rc == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["strategy"] == "evolve"
        assert payload["seed"] == 9
        assert payload["frontier"]
        assert payload["objectives"] == ["cycles", "area", "energy"]

    def test_search_flags_require_search(self):
        with pytest.raises(SystemExit):
            cli_main(["dse", "--population", "8"])
        with pytest.raises(SystemExit):
            cli_main(["dse", "--search", "evolve", "--prefill"])
        with pytest.raises(SystemExit):
            cli_main(["dse", "--objective", "cycles,watts"])
