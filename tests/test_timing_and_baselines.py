"""Tests for the Capstan timing model, platform baselines, and profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import spmv_csr
from repro.apps.profile import WorkloadProfile, vector_slots_for
from repro.apps.timing import CapstanPlatform, default_platform, estimate_cycles, ideal_platform
from repro.baselines import asic, cpu, gpu, plasticine
from repro.config import MemoryTechnology
from repro.core import OrderingMode
from repro.formats import to_csr


@pytest.fixture(scope="module")
def spmv_profile(tiny_matrix_dataset):
    csr = to_csr(tiny_matrix_dataset.matrix)
    vector = np.random.default_rng(1).random(csr.shape[1])
    return spmv_csr(csr, vector, dataset=tiny_matrix_dataset.name).profile


class TestWorkloadProfile:
    def test_vector_slots(self):
        assert vector_slots_for([0, 5, 17]) == 1 + 1 + 2

    def test_imbalance_fraction(self):
        profile = WorkloadProfile(app="x", dataset="d", tile_work=[10, 10, 40])
        assert profile.imbalance_fraction == pytest.approx(1.0)

    def test_merge_sums_counts(self, spmv_profile):
        merged = spmv_profile.merge(spmv_profile)
        assert merged.compute_iterations == 2 * spmv_profile.compute_iterations
        assert merged.sram_random_reads == 2 * spmv_profile.sram_random_reads

    def test_merge_weights_fractions(self):
        a = WorkloadProfile(
            app="x", dataset="d", sram_random_reads=100, cross_tile_request_fraction=1.0
        )
        b = WorkloadProfile(
            app="x", dataset="d", sram_random_reads=300, cross_tile_request_fraction=0.0
        )
        assert a.merge(b).cross_tile_request_fraction == pytest.approx(0.25)


class TestCapstanTimingModel:
    def test_breakdown_sums_to_total(self, spmv_profile):
        cycles, breakdown = estimate_cycles(spmv_profile)
        assert cycles == pytest.approx(breakdown.total_cycles)
        assert cycles > 0

    def test_memory_technology_ordering(self, spmv_profile):
        hbm2e = estimate_cycles(spmv_profile, default_platform(MemoryTechnology.HBM2E))[0]
        hbm2 = estimate_cycles(spmv_profile, default_platform(MemoryTechnology.HBM2))[0]
        ddr4 = estimate_cycles(spmv_profile, default_platform(MemoryTechnology.DDR4))[0]
        assert hbm2e <= hbm2 <= ddr4

    def test_ideal_platform_fastest(self, spmv_profile):
        ideal = estimate_cycles(spmv_profile, ideal_platform())[0]
        real = estimate_cycles(spmv_profile)[0]
        assert ideal <= real

    def test_ordering_modes_slow_down(self, spmv_profile):
        unordered = estimate_cycles(spmv_profile, CapstanPlatform())[0]
        fully = estimate_cycles(
            spmv_profile, CapstanPlatform(ordering=OrderingMode.FULLY_ORDERED)
        )[0]
        assert fully >= unordered

    def test_arbitrated_slower_than_allocated(self, spmv_profile):
        allocated = estimate_cycles(spmv_profile, CapstanPlatform())[0]
        arbitrated = estimate_cycles(spmv_profile, CapstanPlatform(allocator="arbitrated"))[0]
        assert arbitrated >= allocated

    def test_linear_mapping_hurts_strided_apps(self):
        profile = WorkloadProfile(
            app="conv",
            dataset="d",
            compute_iterations=100_000,
            vector_slots=7_000,
            sram_random_updates=100_000,
            strided_fraction=0.9,
            outer_parallelism=16,
        )
        hashed = estimate_cycles(profile, CapstanPlatform(bank_mapping="hash"))[0]
        linear = estimate_cycles(profile, CapstanPlatform(bank_mapping="linear"))[0]
        assert linear > 1.5 * hashed

    def test_more_parallelism_is_faster(self, spmv_profile):
        import copy

        narrow = copy.copy(spmv_profile)
        narrow.outer_parallelism = 2
        wide = copy.copy(spmv_profile)
        wide.outer_parallelism = 64
        assert estimate_cycles(wide)[0] < estimate_cycles(narrow)[0]

    def test_sequential_rounds_cost_network(self):
        base = WorkloadProfile(app="bfs", dataset="d", compute_iterations=1000, vector_slots=100)
        rounds = WorkloadProfile(
            app="bfs", dataset="d", compute_iterations=1000, vector_slots=100,
            sequential_rounds=50, pipelinable=False,
        )
        assert estimate_cycles(rounds)[0] > estimate_cycles(base)[0]

    def test_with_memory_helper(self):
        platform = default_platform().with_memory(MemoryTechnology.DDR4)
        assert platform.config.memory is MemoryTechnology.DDR4
        assert "ddr4" in platform.name


class TestBaselines:
    def test_plasticine_slower_for_random_updates(self, spmv_profile):
        capstan_cycles = estimate_cycles(spmv_profile)[0]
        plasticine_cycles = plasticine.estimate_cycles(spmv_profile)
        assert plasticine_cycles > capstan_cycles

    def test_plasticine_rejects_unmappable(self):
        profile = WorkloadProfile(app="bfs", dataset="d")
        with pytest.raises(ValueError):
            plasticine.estimate_cycles(profile)

    def test_plasticine_mappable_set(self):
        assert "spmv-csr" in plasticine.PLASTICINE_MAPPABLE_APPS
        assert "spmspm" not in plasticine.PLASTICINE_MAPPABLE_APPS

    def test_cpu_slower_than_capstan(self, spmv_profile):
        capstan_seconds = estimate_cycles(spmv_profile)[0] / 1.6e9
        cpu_metrics = cpu.run_metrics(spmv_profile)
        assert cpu_metrics.runtime_seconds > capstan_seconds

    def test_gpu_between_cpu_and_capstan(self, spmv_profile):
        capstan_seconds = estimate_cycles(spmv_profile)[0] / 1.6e9
        gpu_seconds = gpu.run_metrics(spmv_profile).runtime_seconds
        cpu_seconds = cpu.run_metrics(spmv_profile).runtime_seconds
        assert capstan_seconds < gpu_seconds < cpu_seconds

    def test_run_metrics_records_platform(self, spmv_profile):
        metrics = cpu.run_metrics(spmv_profile)
        assert metrics.platform.startswith("cpu")
        assert metrics.app == spmv_profile.app

    def test_asic_models_positive(self, spmv_profile):
        assert asic.eie_runtime_seconds(spmv_profile) > 0
        assert asic.matraptor_runtime_seconds(spmv_profile) > 0
        assert asic.graphicionado_runtime_seconds(spmv_profile) > 0
        assert asic.scnn_runtime_seconds(spmv_profile) > 0

    def test_graphicionado_uses_edge_counts(self):
        profile = WorkloadProfile(
            app="bfs", dataset="d", compute_iterations=10,
            extra={"edges_traversed": 1_000_000.0}, sequential_rounds=5,
        )
        slow = asic.graphicionado_runtime_seconds(profile, edges_per_second=1e9)
        fast = asic.graphicionado_runtime_seconds(profile, edges_per_second=4e9)
        assert slow > fast
