"""Tests for the simulation substrate (DRAM, SRAM, network, queues, stats)
and the sparse-iteration programming model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryTechnology
from repro.core import RMWOp, ScanMode
from repro.errors import ProgramError, SimulationError
from repro.formats import BitVector
from repro.lang import (
    Counter,
    DramTensor,
    Foreach,
    MemReduce,
    Reduce,
    Scan,
    SparseTile,
)
from repro.sim import (
    BankedScratchpad,
    BoundedFIFO,
    CreditLink,
    DRAMModel,
    NetworkConfig,
    OnChipNetwork,
    RunMetrics,
    StallBreakdown,
    StaticBankTiming,
    TrafficSummary,
    cross_tile_traffic_cycles,
    geometric_mean,
)


class TestDRAMModel:
    def test_bandwidth_ordering(self):
        ddr4 = DRAMModel(MemoryTechnology.DDR4)
        hbm2e = DRAMModel(MemoryTechnology.HBM2E)
        assert ddr4.streaming_cycles(1e6) > hbm2e.streaming_cycles(1e6)

    def test_random_slower_than_streaming(self):
        model = DRAMModel(MemoryTechnology.HBM2)
        accesses = 1000
        assert model.random_cycles(accesses) > model.streaming_cycles(accesses * 4)

    def test_ideal_memory_is_free(self):
        model = DRAMModel(MemoryTechnology.IDEAL)
        assert model.streaming_cycles(1e9) == 0.0
        assert model.random_cycles(1000) == 0.0

    def test_rmw_counts_two_bursts(self):
        model = DRAMModel(MemoryTechnology.HBM2E)
        assert model.rmw_cycles(10) == pytest.approx(model.random_cycles(20))

    def test_traffic_summary(self):
        model = DRAMModel(MemoryTechnology.DDR4)
        traffic = TrafficSummary(streaming_read_bytes=1e6, random_accesses=100)
        assert model.traffic_cycles(traffic) > model.streaming_cycles(1e6)

    def test_bandwidth_override(self):
        model = DRAMModel(MemoryTechnology.HBM2E)
        slower = model.with_bandwidth(100.0)
        assert slower.streaming_cycles(1e6) > model.streaming_cycles(1e6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            DRAMModel().streaming_cycles(-1)


class TestSRAMModels:
    def test_static_bank_timing(self):
        timing = StaticBankTiming()
        assert timing.random_read_cycles(100) == 100
        assert timing.random_rmw_cycles(10) == 50

    def test_scratchpad_conflict_accounting(self):
        pad = BankedScratchpad(banks=4)
        pad.read([0, 4, 8, 12])  # all map to bank 0
        assert pad.access_cycles == 4
        pad.read([0, 1, 2, 3])  # conflict-free
        assert pad.access_cycles == 5

    def test_scratchpad_functional(self):
        pad = BankedScratchpad()
        pad.write([3, 7], [1.5, 2.5])
        assert pad.read([3, 7]).tolist() == [1.5, 2.5]
        pad.accumulate([3], [0.5])
        assert pad.read([3])[0] == 2.0

    def test_scratchpad_bounds(self):
        with pytest.raises(SimulationError):
            BankedScratchpad(banks=4, words_per_bank=4).read([99])


class TestNetwork:
    def test_average_latency_positive(self):
        network = OnChipNetwork()
        assert network.average_latency_cycles > 0

    def test_round_trip_scales_with_rounds(self):
        network = OnChipNetwork()
        expected = 10 * 2 * network.average_latency_cycles
        assert network.round_trip_cycles(10) == pytest.approx(expected)

    def test_streaming_amortizes_latency(self):
        network = OnChipNetwork()
        few = network.streaming_transfer_cycles(1)
        many = network.streaming_transfer_cycles(1000)
        assert many < 1000 * few

    def test_congestion_factor_monotonic(self):
        network = OnChipNetwork()
        assert network.congestion_factor(0.9) > network.congestion_factor(0.1) >= 1.0

    def test_cross_tile_traffic(self):
        network = OnChipNetwork(NetworkConfig(grid_width=4))
        cycles = cross_tile_traffic_cycles(network, {0: 160, 1: 0})
        assert cycles > 0

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            NetworkConfig(grid_width=0).validate()


class TestQueues:
    def test_fifo_order(self):
        fifo = BoundedFIFO(4)
        for i in range(4):
            assert fifo.push(i)
        assert not fifo.push(99)
        assert fifo.full_rejections == 1
        assert [fifo.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_fifo_empty_pop(self):
        with pytest.raises(SimulationError):
            BoundedFIFO(2).pop()

    def test_credit_link_flow_control(self):
        link = CreditLink(2)
        assert link.send("a") and link.send("b")
        assert not link.send("c")
        assert link.stalled_sends == 1
        assert link.receive() == "a"
        assert link.send("c")

    def test_credit_overflow_detected(self):
        link = CreditLink(1)
        link.send("a")
        link.receive()
        assert link.receive() is None


class TestStats:
    def test_breakdown_fractions_sum_to_one(self):
        breakdown = StallBreakdown(active=10, scan=5, dram=5)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_breakdown_add_and_scale(self):
        a = StallBreakdown(active=1, sram=2)
        b = StallBreakdown(active=3, dram=4)
        merged = a.add(b)
        assert merged.active == 4 and merged.dram == 4
        assert merged.scaled(2.0).sram == 4

    def test_run_metrics_speedup(self):
        fast = RunMetrics("a", "d", "p1", cycles=100, clock_ghz=1.0)
        slow = RunMetrics("a", "d", "p2", cycles=1000, clock_ghz=1.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestLoops:
    def test_dense_foreach(self):
        seen = []
        trace = Foreach(Counter(0, 10, 2), body=seen.append)
        assert seen == [0, 2, 4, 6, 8]
        assert trace.dense_iterations == 5

    def test_sparse_foreach_signature(self):
        a = BitVector(8, [1, 3, 5])
        b = BitVector(8, [3, 5, 7])
        captured = []
        Foreach(
            Scan(a, b, ScanMode.INTERSECT),
            body=lambda j, ja, jb, jp: captured.append((j, ja, jb, jp)),
        )
        assert captured == [(3, 1, 0, 0), (5, 2, 1, 1)]

    def test_reduce(self):
        total, trace = Reduce(Counter(1, 5), body=lambda i: float(i))
        assert total == 10.0
        assert trace.dense_iterations == 4

    def test_reduce_over_scan(self):
        a = BitVector(8, [0, 2, 4], [1.0, 2.0, 3.0])
        total, _ = Reduce(
            Scan(a, mode=ScanMode.SINGLE),
            body=lambda j, ja, jb, jp: a.values[ja],
        )
        assert total == 6.0

    def test_memreduce(self):
        accumulator = [0.0] * 4
        MemReduce(
            Counter(0, 8),
            body=lambda i: 1.0,
            accumulator=accumulator,
            index_of=lambda i: i % 4,
        )
        assert accumulator == [2.0] * 4

    def test_trace_vector_bodies(self):
        trace = Foreach(Counter(0, 33, 1, par=16), body=lambda i: None)
        assert trace.vector_bodies == 3

    def test_invalid_counter(self):
        with pytest.raises(ProgramError):
            Counter(0, 4, 0)

    def test_scan_records_timing(self):
        a = BitVector(512, [0, 300])
        trace = Foreach(Scan(a, mode=ScanMode.SINGLE), body=lambda *args: None)
        assert trace.scan_invocations == 1
        assert trace.scan_timings[0].cycles >= 2


class TestMemoryHandles:
    def test_sparse_tile_rmw_counts(self):
        tile = SparseTile(64)
        tile.accumulate(3, 2.0)
        tile.rmw(3, RMWOp.MAX, 1.0)
        assert tile.snapshot()[3] == 2.0
        assert tile.counters.random_updates == 2

    def test_sparse_tile_gather(self):
        tile = SparseTile(16, initial=np.arange(16.0))
        assert tile.gather(np.array([2, 5])).tolist() == [2.0, 5.0]
        assert tile.counters.random_reads == 2

    def test_sparse_tile_swap_clear(self):
        tile = SparseTile(8)
        tile.accumulate(1, 5.0)
        contents = tile.swap_clear()
        assert contents[1] == 5.0
        assert tile.snapshot().sum() == 0.0

    def test_sparse_tile_bounds(self):
        with pytest.raises(ProgramError):
            SparseTile(4).read(9)

    def test_dram_tensor_streams_and_atomics(self):
        tensor = DramTensor(32)
        tensor.stream_write(np.ones(8))
        tensor.atomic_update(0, RMWOp.ADD, 2.0)
        assert tensor.snapshot()[0] == 3.0
        assert tensor.counters.streaming_writes == 8
        assert tensor.counters.random_updates == 1

    @given(
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=32)
    )
    @settings(max_examples=30, deadline=None)
    def test_tile_accumulate_matches_numpy(self, values):
        tile = SparseTile(1)
        for value in values:
            tile.accumulate(0, value)
        assert tile.snapshot()[0] == pytest.approx(sum(values), abs=1e-9)
