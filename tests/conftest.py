"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix, CSCMatrix, CSRMatrix
from repro.workloads import load_dataset


@pytest.fixture
def small_dense():
    """A small dense matrix with a mix of zero and non-zero entries."""
    return np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 5.0],
            [0.0, 6.0, 0.0, 0.0],
        ]
    )


@pytest.fixture
def small_csr(small_dense):
    """CSR form of the small dense matrix."""
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture
def small_csc(small_dense):
    """CSC form of the small dense matrix."""
    return CSCMatrix.from_dense(small_dense)


@pytest.fixture
def small_coo(small_dense):
    """COO form of the small dense matrix."""
    return COOMatrix.from_dense(small_dense)


@pytest.fixture(scope="session")
def tiny_graph():
    """A small synthetic power-law graph dataset used by app tests."""
    return load_dataset("web-Stanford", scale=1 / 512, seed=3)


@pytest.fixture(scope="session")
def tiny_matrix_dataset():
    """A small synthetic FEM-like matrix dataset used by app tests."""
    return load_dataset("Trefethen_20000", scale=1 / 128, seed=3)


@pytest.fixture(scope="session")
def random_dense_matrix():
    """A reproducible random dense matrix for roundtrip tests."""
    rng = np.random.default_rng(42)
    matrix = rng.random((24, 31))
    matrix[matrix < 0.7] = 0.0
    return matrix
