"""Tests for the DSE subsystem and the persistent throughput store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps.profile import WorkloadProfile
from repro.config import SpMUConfig
from repro.core import spmu as spmu_module
from repro.core.ordering import OrderingMode
from repro.errors import ConfigurationError
from repro.runtime.cache import ThroughputStore, throughput_store_enabled
from repro.runtime.cli import main as cli_main
from repro.runtime.dse import explore, pareto_frontier
from repro.runtime.sweep import sweep


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Point the throughput store at a fresh directory with an empty memo."""
    monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
    monkeypatch.delenv("REPRO_THROUGHPUT_CACHE_DISABLE", raising=False)
    monkeypatch.setattr(spmu_module, "_THROUGHPUT_CACHE", {})
    return ThroughputStore()


class TestThroughputStore:
    def test_roundtrip(self, tmp_path):
        store = ThroughputStore(root=tmp_path)
        key = store.key(
            ordering=OrderingMode.UNORDERED,
            bank_mapping="hash",
            allocator_kind="separable",
            config=SpMUConfig(),
            lanes=16,
        )
        assert store.load(key) is None
        store.store(key, 12.625)
        assert store.load(key) == 12.625
        assert len(store) == 1

    def test_key_changes_with_configuration_and_code(self, tmp_path):
        store = ThroughputStore(root=tmp_path)
        kwargs = dict(
            ordering=OrderingMode.UNORDERED,
            bank_mapping="hash",
            allocator_kind="separable",
            config=SpMUConfig(),
            lanes=16,
        )
        base = store.key(**kwargs)
        assert store.key(**{**kwargs, "bank_mapping": "linear"}) != base
        assert store.key(**{**kwargs, "lanes": 32}) != base
        assert store.key(**{**kwargs, "config": SpMUConfig(banks=32)}) != base
        assert store.key(**{**kwargs, "ordering": OrderingMode.ARBITRATED}) != base
        assert store.key(**kwargs, fingerprint="deadbeef") != base

    def test_corrupt_and_skewed_entries_are_misses(self, tmp_path):
        store = ThroughputStore(root=tmp_path)
        key = "0" * 64
        (tmp_path / f"{key}.json").write_text("{not json")
        assert store.load(key) is None
        (tmp_path / f"{key}.json").write_text(json.dumps({"version": 999, "throughput": 1.0}))
        assert store.load(key) is None
        (tmp_path / f"{key}.json").write_text(json.dumps({"version": 1, "throughput": "x"}))
        assert store.load(key) is None
        assert store.misses == 3

    def test_clear(self, tmp_path):
        store = ThroughputStore(root=tmp_path)
        store.store("a" * 64, 1.0)
        store.store("b" * 64, 2.0)
        assert store.clear() == 2
        assert len(store) == 0

    def test_effective_bank_throughput_persists_across_processes(
        self, isolated_store, monkeypatch
    ):
        calls = []
        original = spmu_module.measure_bank_utilization

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(spmu_module, "measure_bank_utilization", counting)
        config = SpMUConfig(banks=8, words_per_bank=512)
        first = spmu_module.effective_bank_throughput(config=config, lanes=8)
        assert len(calls) == 1
        # Simulate a fresh process: the in-process memo is gone, but the
        # persisted measurement is served without re-simulating.
        spmu_module._THROUGHPUT_CACHE.clear()
        second = spmu_module.effective_bank_throughput(config=config, lanes=8)
        assert len(calls) == 1
        assert second == first
        assert len(isolated_store) == 1

    def test_kill_switch_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE_DISABLE", "1")
        monkeypatch.setattr(spmu_module, "_THROUGHPUT_CACHE", {})
        assert not throughput_store_enabled()
        spmu_module.effective_bank_throughput(
            config=SpMUConfig(banks=8, words_per_bank=512), lanes=8
        )
        assert not (tmp_path / "throughput").exists()


class TestSweepConfigAxes:
    def test_lanes_and_banks_axes(self):
        variants = sweep(lanes=(8, 16), banks=(8, 32))
        assert list(variants) == ["8-8", "8-32", "16-8", "16-32"]
        assert variants["8-32"].config.lanes == 8
        assert variants["8-32"].config.spmu.banks == 32
        # Untouched structural fields keep their defaults.
        assert variants["8-32"].config.spmu.queue_depth == 16

    def test_queue_depth_and_compute_units_axes(self):
        variants = sweep(compute_units=(100, 200), queue_depth=(8, 16))
        assert variants["100-8"].config.compute_units == 100
        assert variants["100-8"].config.spmu.queue_depth == 8
        assert variants["200-16"].config.spmu.queue_depth == 16

    def test_non_integer_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lanes=("wide",))
        with pytest.raises(ConfigurationError):
            sweep(banks=(True,))
        with pytest.raises(ConfigurationError):
            sweep(queue_depth=(0,))

    def test_policy_field_values_validated(self):
        # A typo would otherwise be silently costed as the greedy allocator.
        with pytest.raises(ConfigurationError):
            sweep(allocator=("separable", "sepparable"))
        with pytest.raises(ConfigurationError):
            sweep(bank_mapping=("linearr",))
        with pytest.raises(ConfigurationError):
            sweep(ordering=("unordered",))  # must be an OrderingMode, not a string


class TestParetoFrontier:
    def test_simple_frontier(self):
        costs = np.array([[1.0, 5.0], [2.0, 2.0], [3.0, 3.0], [5.0, 1.0]])
        assert list(pareto_frontier(costs)) == [0, 1, 3]

    def test_duplicates_all_kept(self):
        costs = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert list(pareto_frontier(costs)) == [0, 1]

    def test_single_point(self):
        assert list(pareto_frontier(np.array([[3.0, 7.0]]))) == [0]

    def test_constant_column_reduces_to_other_objectives(self):
        # A degenerate objective (same value everywhere) must not hide
        # domination in the remaining columns.
        costs = np.array([[1.0, 5.0], [1.0, 2.0], [1.0, 3.0]])
        assert list(pareto_frontier(costs)) == [1]

    def test_one_point_dominating_every_other(self):
        costs = np.array([[5.0, 5.0], [1.0, 1.0], [3.0, 4.0], [2.0, 6.0]])
        assert list(pareto_frontier(costs)) == [1]

    def test_three_objectives(self):
        costs = np.array(
            [
                [1.0, 3.0, 3.0],
                [3.0, 1.0, 3.0],
                [3.0, 3.0, 1.0],
                [2.0, 2.0, 2.0],
                [3.0, 3.0, 3.0],  # dominated by [2, 2, 2]
            ]
        )
        assert list(pareto_frontier(costs)) == [0, 1, 2, 3]

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            pareto_frontier(np.array([1.0, 2.0]))


class TestExplore:
    def _profiles(self):
        return [
            WorkloadProfile(
                app="a", dataset="d",
                compute_iterations=50_000, vector_slots=4_000,
                sram_random_updates=30_000, outer_parallelism=32,
                dram_stream_read_bytes=1e6,
            ),
            WorkloadProfile(
                app="b", dataset="e",
                compute_iterations=9_000, vector_slots=700,
                sram_random_updates=5_000, cross_tile_request_fraction=0.5,
                sequential_rounds=4, pipelinable=False, outer_parallelism=8,
            ),
        ]

    def test_explore_with_prebuilt_profiles(self):
        result = explore(profiles=self._profiles(), lanes=(8, 16), banks=(16, 32))
        assert result.cycles.shape == (2, 4)
        assert result.names == ["8-16", "8-32", "16-16", "16-32"]
        assert result.tasks == [("a", "d"), ("b", "e")]
        assert (result.area_mm2 > 0).all()
        assert (result.gmean_cycles > 0).all()
        frontier = result.frontier()
        assert frontier and set(frontier) <= set(result.names)
        # Every frontier point must be non-dominated in (cycles, area).
        costs = np.column_stack([result.gmean_cycles, result.area_mm2])
        for name in frontier:
            i = result.names.index(name)
            dominated = np.any(
                np.all(costs <= costs[i], axis=1) & np.any(costs < costs[i], axis=1)
            )
            assert not dominated

    def test_rows_carry_pareto_flags(self):
        result = explore(profiles=self._profiles(), banks=(16, 32))
        rows = result.rows()
        assert {row["name"] for row in rows} == set(result.names)
        assert {row["name"] for row in rows if row["pareto"]} == set(result.frontier())

    def test_invalid_structural_combo_rejected(self):
        with pytest.raises(ConfigurationError):
            explore(profiles=self._profiles(), lanes=(12,))

    def test_top_rows_streaming_safe_under_memory_budget(self, monkeypatch):
        """``--top`` must work when the per-cell grid was streamed out."""
        kwargs = dict(profiles=self._profiles(), lanes=(8, 16), banks=(16, 32))
        full = explore(**kwargs)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1024")
        streamed = explore(**kwargs)
        assert streamed.batch is None  # the grid really was streamed out
        with pytest.raises(ConfigurationError):
            _ = streamed.cycles
        top = streamed.top_rows(2)
        assert top == full.top_rows(2)
        assert [r["gmean_cycles"] for r in top] == sorted(
            r["gmean_cycles"] for r in top
        )
        assert len(streamed.top_rows(100)) == 4  # n beyond the grid is fine
        assert streamed.top_rows(2, key="area_mm2") == full.top_rows(2, key="area_mm2")

    def test_top_rows_rejects_unknown_key(self):
        result = explore(profiles=self._profiles(), lanes=(8, 16))
        with pytest.raises(ConfigurationError):
            result.top_rows(1, key="speed")
        with pytest.raises(ConfigurationError):
            result.top_rows(1, key="gmean_energy_mj")  # energy not costed

    def test_explore_energy_objective(self):
        result = explore(
            profiles=self._profiles(), energy=True, lanes=(8, 16), banks=(16, 32)
        )
        assert result.gmean_energy_mj is not None
        assert (result.gmean_energy_mj > 0).all()
        assert all("gmean_energy_mj" in row for row in result.rows())
        energy_frontier = result.frontier(("cycles", "area", "energy"))
        assert set(result.frontier()) <= set(energy_frontier)
        top = result.top_rows(2, key="gmean_energy_mj")
        assert top[0]["gmean_energy_mj"] <= top[1]["gmean_energy_mj"]

    def test_energy_frontier_requires_energy(self):
        result = explore(profiles=self._profiles(), lanes=(8, 16))
        with pytest.raises(ConfigurationError):
            result.frontier(("cycles", "energy"))

    def test_seed_shuffles_order_not_content(self):
        kwargs = dict(profiles=self._profiles(), lanes=(8, 16), banks=(16, 32))
        plain = explore(**kwargs)
        seeded = explore(seed=7, **kwargs)
        again = explore(seed=7, **kwargs)
        assert seeded.names == again.names  # deterministic per seed
        assert seeded.names != plain.names  # but actually shuffled
        assert sorted(seeded.names) == sorted(plain.names)
        # Costs ride with their variants through the shuffle.
        by_name = {r["name"]: r for r in plain.rows()}
        for row in seeded.rows():
            assert row == by_name[row["name"]]


class TestDseCli:
    def test_dse_cli_end_to_end(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
        out_json = tmp_path / "dse.json"
        rc = cli_main(
            [
                "dse",
                "--axis", "banks=16,32",
                "--axis", "memory=hbm2e,ddr4",
                "--apps", "spmv-csr",
                "--scale", "1/512",
                "--cache-dir", str(tmp_path / "profiles"),
                "--json", str(out_json),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        payload = json.loads(out_json.read_text())
        assert len(payload["variants"]) == 4
        assert payload["frontier"]
        assert len(payload["cycles"]) == len(payload["tasks"]) == 3

    def test_dse_cli_rejects_unknown_axis(self):
        with pytest.raises(SystemExit):
            cli_main(["dse", "--axis", "nonsense=1,2"])

    def test_dse_cli_rejects_unknown_app(self, capsys):
        assert cli_main(["dse", "--axis", "banks=16", "--apps", "nope"]) == 2

    def test_dse_cli_rejects_misspelled_policy_values(self):
        with pytest.raises(SystemExit):
            cli_main(["dse", "--axis", "allocator=separable,sepparable"])
        with pytest.raises(SystemExit):
            cli_main(["dse", "--axis", "bank_mapping=linearr"])

    def test_dse_cli_rejects_duplicate_axis(self):
        with pytest.raises(SystemExit):
            cli_main(["dse", "--axis", "lanes=8,16", "--axis", "lanes=32"])
