"""Functional correctness and profiling tests for every application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    bfs,
    bicgstab,
    pagerank_edge,
    pagerank_pull,
    reference_add,
    reference_bfs_levels,
    reference_pagerank,
    reference_spmspm,
    reference_spmv,
    reference_sssp,
    sparse_add,
    sparse_convolution,
    spmspm,
    spmv_coo,
    spmv_csc,
    spmv_csr,
    sssp,
)
from repro.baselines.cpu import reference_spmv_csr
from repro.errors import WorkloadError
from repro.eval import best_source
from repro.formats import to_csc, to_csr
from repro.workloads import (
    generate_conv_layer,
    load_dataset,
    make_diagonally_dominant,
    reference_convolution,
    sparse_vector,
)


@pytest.fixture(scope="module")
def matrix_and_vector(tiny_matrix_dataset):
    csr = to_csr(tiny_matrix_dataset.matrix)
    rng = np.random.default_rng(7)
    return csr, rng.random(csr.shape[1])


class TestSpMV:
    def test_csr_matches_reference(self, matrix_and_vector):
        csr, vector = matrix_and_vector
        run = spmv_csr(csr, vector)
        assert np.allclose(run.output, reference_spmv(csr, vector))
        assert np.allclose(run.output, reference_spmv_csr(csr, vector))

    def test_coo_matches_reference(self, tiny_matrix_dataset):
        coo = tiny_matrix_dataset.matrix
        vector = np.random.default_rng(9).random(coo.shape[1])
        run = spmv_coo(coo, vector)
        assert np.allclose(run.output, reference_spmv(coo, vector))

    def test_csc_matches_reference_with_sparse_input(self, tiny_matrix_dataset):
        csc = to_csc(tiny_matrix_dataset.matrix)
        vector = sparse_vector(csc.shape[1], density=0.3, seed=5)
        run = spmv_csc(csc, vector)
        assert np.allclose(run.output, reference_spmv(csc, vector))

    def test_csr_profile_counts(self, matrix_and_vector):
        csr, vector = matrix_and_vector
        profile = spmv_csr(csr, vector).profile
        assert profile.compute_iterations == csr.nnz
        assert profile.sram_random_reads == csr.nnz
        assert profile.sram_random_updates == 0
        assert profile.dram_stream_read_bytes > 4 * csr.nnz

    def test_coo_profile_has_updates(self, tiny_matrix_dataset):
        coo = tiny_matrix_dataset.matrix
        vector = np.ones(coo.shape[1])
        profile = spmv_coo(coo, vector).profile
        assert profile.sram_random_updates == coo.nnz

    def test_csc_skips_zero_columns(self, tiny_matrix_dataset):
        csc = to_csc(tiny_matrix_dataset.matrix)
        vector = sparse_vector(csc.shape[1], density=0.3, seed=5)
        profile = spmv_csc(csc, vector).profile
        assert profile.compute_iterations < csc.nnz

    def test_vector_length_mismatch(self, matrix_and_vector):
        csr, _ = matrix_and_vector
        with pytest.raises(WorkloadError):
            spmv_csr(csr, np.ones(csr.shape[1] + 1))


class TestPageRank:
    def test_pull_matches_reference(self, tiny_graph):
        run = pagerank_pull(tiny_graph.matrix, iterations=3)
        assert np.allclose(run.output, reference_pagerank(tiny_graph.matrix, 3))

    def test_edge_matches_reference(self, tiny_graph):
        run = pagerank_edge(tiny_graph.matrix, iterations=3)
        assert np.allclose(run.output, reference_pagerank(tiny_graph.matrix, 3))

    def test_pull_and_edge_agree(self, tiny_graph):
        pull = pagerank_pull(tiny_graph.matrix, iterations=2)
        edge = pagerank_edge(tiny_graph.matrix, iterations=2)
        assert np.allclose(pull.output, edge.output)

    def test_rank_is_probabilityish(self, tiny_graph):
        run = pagerank_pull(tiny_graph.matrix, iterations=5)
        assert np.all(run.output > 0)

    def test_edge_dram_updates_when_off_chip(self, tiny_graph):
        profile = pagerank_edge(tiny_graph.matrix, iterations=1, ranks_fit_on_chip=False).profile
        assert profile.dram_random_updates == tiny_graph.matrix.nnz

    def test_invalid_iterations(self, tiny_graph):
        with pytest.raises(WorkloadError):
            pagerank_pull(tiny_graph.matrix, iterations=0)


class TestGraphTraversal:
    def test_bfs_parents_consistent_with_levels(self, tiny_graph):
        source = best_source(tiny_graph.matrix)
        run = bfs(tiny_graph.matrix, source)
        levels = reference_bfs_levels(tiny_graph.matrix, source)
        parents = run.output
        reached = np.nonzero(parents >= 0)[0]
        assert np.array_equal(np.sort(reached), np.sort(np.nonzero(levels >= 0)[0]))
        for vertex in reached.tolist():
            if vertex == source:
                continue
            assert levels[vertex] == levels[parents[vertex]] + 1

    def test_bfs_rounds_match_depth(self, tiny_graph):
        source = best_source(tiny_graph.matrix)
        run = bfs(tiny_graph.matrix, source)
        levels = reference_bfs_levels(tiny_graph.matrix, source)
        assert run.profile.sequential_rounds >= levels.max()

    def test_bfs_not_pipelinable(self, tiny_graph):
        run = bfs(tiny_graph.matrix, best_source(tiny_graph.matrix))
        assert not run.profile.pipelinable

    def test_sssp_matches_dijkstra(self, tiny_graph):
        source = best_source(tiny_graph.matrix)
        run = sssp(tiny_graph.matrix, source)
        reference = reference_sssp(tiny_graph.matrix, source)
        assert np.allclose(
            np.where(np.isinf(run.output), -1.0, run.output),
            np.where(np.isinf(reference), -1.0, reference),
        )

    def test_sssp_rejects_negative_weights(self, tiny_graph):
        from repro.formats import COOMatrix

        bad = COOMatrix(
            (4, 4), np.array([0]), np.array([1]), np.array([-1.0])
        )
        with pytest.raises(WorkloadError):
            sssp(bad, 0)

    def test_source_out_of_range(self, tiny_graph):
        with pytest.raises(WorkloadError):
            bfs(tiny_graph.matrix, tiny_graph.matrix.shape[0] + 5)

    def test_backpointer_flag_reduces_updates(self, tiny_graph):
        source = best_source(tiny_graph.matrix)
        with_ptr = bfs(tiny_graph.matrix, source, write_backpointers=True).profile
        without_ptr = bfs(tiny_graph.matrix, source, write_backpointers=False).profile
        assert without_ptr.sram_random_updates < with_ptr.sram_random_updates


class TestSparseAddAndSpMSpM:
    @pytest.fixture(scope="class")
    def small_pair(self):
        a = to_csr(load_dataset("qc324").matrix)
        b = to_csr(load_dataset("qc324", seed=99).matrix)
        return a, b

    def test_add_matches_reference(self, small_pair):
        a, b = small_pair
        run = sparse_add(a, b)
        assert np.allclose(run.output.to_dense(), reference_add(a, b))

    def test_add_union_iterations(self, small_pair):
        a, b = small_pair
        profile = sparse_add(a, b).profile
        assert profile.compute_iterations >= max(a.nnz, b.nnz)
        assert profile.compute_iterations <= a.nnz + b.nnz

    def test_add_bittree_cheaper_for_hypersparse(self):
        # Bit-tree iteration pays a top-level pass but skips empty 512-bit
        # tiles, so it wins once rows are wide and mostly empty (the regime
        # the paper's M+M datasets are in).
        a = to_csr(load_dataset("ckt11752_dc_1", scale=1 / 32).matrix)
        with_tree = sparse_add(a, a, use_bittree=True).profile
        without_tree = sparse_add(a, a, use_bittree=False).profile
        assert with_tree.scan_cycles < without_tree.scan_cycles

    def test_spmspm_matches_reference(self, small_pair):
        a, b = small_pair
        run = spmspm(a, b)
        assert np.allclose(run.output, reference_spmspm(a, b))

    def test_spmspm_shape_mismatch(self, small_pair):
        a, _ = small_pair
        from repro.formats import CSRMatrix

        wrong = CSRMatrix.from_dense(np.ones((a.shape[1] + 3, 4)))
        with pytest.raises(WorkloadError):
            spmspm(a, wrong)

    def test_spmspm_profile_counts_multiplies(self, small_pair):
        a, b = small_pair
        profile = spmspm(a, b).profile
        assert profile.compute_iterations == profile.extra["multiplies"]
        assert profile.sram_random_updates > 0


class TestConvAndBiCGStab:
    def test_conv_matches_reference(self):
        workload = generate_conv_layer("resnet50-2", scale=0.125)
        run = sparse_convolution(workload)
        assert np.allclose(run.output, reference_convolution(workload))

    def test_conv_profile_strided(self):
        workload = generate_conv_layer("resnet50-1", scale=0.125)
        profile = sparse_convolution(workload).profile
        assert profile.strided_fraction > 0.5
        assert profile.compute_iterations == profile.extra["macs"]

    def test_bicgstab_converges(self, tiny_matrix_dataset):
        system = make_diagonally_dominant(tiny_matrix_dataset.matrix)
        rhs = np.random.default_rng(11).random(system.shape[0])
        run = bicgstab(system, rhs)
        assert run.profile.extra["converged"] == 1.0
        assert np.allclose(system.to_dense() @ run.output, rhs, atol=1e-5)

    def test_bicgstab_unfused_has_rounds(self, tiny_matrix_dataset):
        system = make_diagonally_dominant(tiny_matrix_dataset.matrix)
        rhs = np.ones(system.shape[0])
        fused = bicgstab(system, rhs, fused=True).profile
        unfused = bicgstab(system, rhs, fused=False).profile
        assert fused.sequential_rounds == 0
        assert unfused.sequential_rounds > 0

    def test_bicgstab_requires_square(self, matrix_and_vector):
        csr, _ = matrix_and_vector
        from repro.formats import CSRMatrix

        rectangular = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(WorkloadError):
            bicgstab(rectangular, np.ones(3))
