"""The analytic energy model: batch/scalar identity and physical sanity.

The contract mirrors the costing batch's (PR 3): the per-call
:func:`~repro.core.energy.estimate_energy` reference stays the semantic
source of truth, and the vectorized
:func:`~repro.core.energy.estimate_energy_batch` must reproduce it
element for element -- exact float equality, direct and chunked --
because both paths consume the same precomputed per-platform event
energies and mirror the same operation order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.profile import WorkloadProfile
from repro.apps.timing import CapstanPlatform, estimate_cycles, estimate_cycles_batch
from repro.config import CapstanConfig, MemoryTechnology
from repro.core.energy import (
    ENERGY_CATEGORIES,
    estimate_energy,
    estimate_energy_batch,
    platform_energy_params,
)
from repro.runtime.sweep import sweep


def _platforms():
    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        memory=(MemoryTechnology.DDR4, MemoryTechnology.HBM2E),
    )
    return list(variants.values())


profiles_strategy = st.builds(
    WorkloadProfile,
    app=st.just("app"),
    dataset=st.just("data"),
    compute_iterations=st.integers(0, 10**7),
    vector_slots=st.integers(0, 10**5),
    scan_cycles=st.integers(0, 10**5),
    scan_empty_cycles=st.integers(0, 10**4),
    sram_random_reads=st.integers(0, 10**6),
    sram_random_updates=st.integers(0, 10**6),
    dram_random_reads=st.integers(0, 10**5),
    dram_random_updates=st.integers(0, 10**5),
    dram_stream_read_bytes=st.floats(0, 1e9),
    dram_stream_write_bytes=st.floats(0, 1e8),
    pointer_stream_bytes=st.floats(0, 1e6),
    pointer_compression_ratio=st.floats(0.5, 8.0),
    cross_tile_request_fraction=st.floats(0.0, 1.0),
    sequential_rounds=st.integers(0, 8),
    pipelinable=st.booleans(),
    outer_parallelism=st.integers(1, 64),
)


class TestBatchScalarIdentity:
    @settings(max_examples=25, deadline=None)
    @given(profile=profiles_strategy)
    def test_batch_equals_scalar_element_for_element(self, profile):
        platforms = _platforms()
        profiles = [profile]
        batch = estimate_cycles_batch(profiles, platforms, energy=True)
        assert batch.energy_mj is not None and batch.energy_mj.shape == (1, len(platforms))
        for j, platform in enumerate(platforms):
            total, breakdown = estimate_energy(profile, platform)
            assert batch.energy_mj[0, j] == total  # exact, not approx
            for name in ENERGY_CATEGORIES:
                assert batch.energy_categories[name][0, j] == getattr(breakdown, name)

    def test_batch_with_explicit_cycles_matches_reference(self):
        profiles = [
            WorkloadProfile(
                app="a", dataset="d",
                compute_iterations=50_000, vector_slots=4_000,
                sram_random_updates=30_000, outer_parallelism=32,
                dram_stream_read_bytes=1e6, pointer_stream_bytes=2e5,
                pointer_compression_ratio=3.0,
            ),
            WorkloadProfile(
                app="b", dataset="e",
                compute_iterations=9_000, scan_cycles=4_000,
                sram_random_updates=5_000, cross_tile_request_fraction=0.5,
                dram_random_updates=2_000,
            ),
        ]
        platforms = _platforms()
        cycles = np.array(
            [[estimate_cycles(p, v)[0] for v in platforms] for p in profiles]
        )
        result = estimate_energy_batch(profiles, platforms, cycles)
        for i, profile in enumerate(profiles):
            for j, platform in enumerate(platforms):
                total, breakdown = estimate_energy(
                    profile, platform, cycles=cycles[i, j]
                )
                assert result.total[i, j] == total
                assert result.breakdown(i, j) == breakdown

    def test_chunked_batch_is_bit_identical(self):
        profiles = [
            WorkloadProfile(
                app="a", dataset="d", compute_iterations=10_000,
                sram_random_updates=3_000, dram_stream_read_bytes=5e5,
            )
        ]
        platforms = _platforms()
        whole = estimate_cycles_batch(profiles, platforms, energy=True)
        for chunk in (1, 3, 10_000):
            split = estimate_cycles_batch(
                profiles, platforms, energy=True, chunk_platforms=chunk
            )
            assert np.array_equal(split.cycles, whole.cycles)
            assert np.array_equal(split.energy_mj, whole.energy_mj)
            for name in ENERGY_CATEGORIES:
                assert np.array_equal(
                    split.energy_categories[name], whole.energy_categories[name]
                )

    def test_energy_off_by_default(self):
        profiles = [WorkloadProfile(app="a", dataset="d", compute_iterations=100)]
        batch = estimate_cycles_batch(profiles, _platforms())
        assert batch.energy_mj is None
        assert batch.energy_categories is None

    def test_batch_rejects_mismatched_cycles_shape(self):
        profiles = [WorkloadProfile(app="a", dataset="d")]
        with pytest.raises(ValueError):
            estimate_energy_batch(profiles, _platforms(), np.zeros((2, 2)))


class TestPhysicalSanity:
    def _profile(self, **overrides):
        fields = dict(
            app="a", dataset="d", compute_iterations=10_000,
            sram_random_updates=5_000, dram_stream_read_bytes=1e6,
            dram_random_reads=1_000,
        )
        fields.update(overrides)
        return WorkloadProfile(**fields)

    def test_total_is_sum_of_categories(self):
        total, breakdown = estimate_energy(self._profile())
        assert total == breakdown.total_mj
        assert total == pytest.approx(
            sum(getattr(breakdown, name) for name in ENERGY_CATEGORIES)
        )
        assert total > 0

    def test_ddr4_streams_cost_more_than_hbm2e(self):
        ddr4 = CapstanPlatform(CapstanConfig(memory=MemoryTechnology.DDR4))
        hbm2e = CapstanPlatform(CapstanConfig(memory=MemoryTechnology.HBM2E))
        profile = self._profile()
        assert estimate_energy(profile, ddr4)[1].dram > estimate_energy(profile, hbm2e)[1].dram

    def test_ideal_memory_is_free(self):
        ideal = CapstanPlatform(CapstanConfig(memory=MemoryTechnology.IDEAL))
        _, breakdown = estimate_energy(self._profile(), ideal)
        assert breakdown.dram == 0.0
        assert breakdown.compute > 0

    def test_energy_monotonic_in_work(self):
        small, _ = estimate_energy(self._profile())
        large, _ = estimate_energy(self._profile(compute_iterations=10**6))
        assert large > small

    def test_static_term_scales_with_cycles(self):
        profile = self._profile()
        _, short = estimate_energy(profile, cycles=1_000.0)
        _, long = estimate_energy(profile, cycles=2_000.0)
        assert long.static == pytest.approx(2.0 * short.static)
        assert long.compute == short.compute  # dynamic terms unaffected

    def test_compression_reduces_dram_energy(self):
        profile = self._profile(
            pointer_stream_bytes=5e5, pointer_compression_ratio=4.0
        )
        on = CapstanPlatform(CapstanConfig(compression_enabled=True))
        off = CapstanPlatform(CapstanConfig(compression_enabled=False))
        assert estimate_energy(profile, on)[1].dram < estimate_energy(profile, off)[1].dram

    def test_params_are_memoized_per_platform(self):
        platform = CapstanPlatform(CapstanConfig())
        assert platform_energy_params(platform) is platform_energy_params(platform)
