"""Tests for bank hashing, Bloom filter, shuffle network, compression,
format conversion, compute unit, address generators, and the area model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CapstanConfig, ShuffleConfig, ShuffleMode
from repro.core import (
    BloomFilter,
    ComputeUnit,
    DRAMAddressGenerator,
    FormatConverter,
    MemoryRequest,
    PartitionedDRAM,
    RMWOp,
    ShuffleNetwork,
    ShuffleRequest,
    area_overhead_vs_plasticine,
    capstan_area,
    compress_pointer_array,
    compression_ratio,
    conflict_count,
    decompress_packets,
    distribute_work,
    hashed_bank,
    hashed_banks_array,
    linear_bank,
    merge_efficiency,
    plasticine_area,
    power_overhead_vs_plasticine,
    scanner_area_um2,
    scheduler_area_um2,
)
from repro.errors import SimulationError


class TestBankHashing:
    def test_linear_mapping(self):
        assert linear_bank(17, 16) == 1

    def test_hash_spreads_power_of_two_strides(self):
        # Stride 16 with a linear map hits one bank; the hash spreads it.
        addresses = [i * 16 for i in range(16)]
        assert conflict_count(addresses, 16, "linear") == 16
        assert conflict_count(addresses, 16, "hash") <= 2

    def test_hash_array_matches_scalar(self):
        addresses = np.arange(0, 1000, 7)
        array = hashed_banks_array(addresses, 16)
        scalars = [hashed_bank(int(a), 16) for a in addresses]
        assert array.tolist() == scalars

    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100, deadline=None)
    def test_hash_in_range(self, address):
        assert 0 <= hashed_bank(address, 16) < 16

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            conflict_count([1], 16, "bogus")


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(128)
        for address in range(50):
            bloom.insert(address)
        assert all(bloom.may_contain(address) for address in range(50))

    def test_remove_clears(self):
        bloom = BloomFilter(128)
        bloom.insert(42)
        bloom.remove(42)
        assert not bloom.may_contain(42)
        assert bloom.inserted == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(ValueError):
            BloomFilter(64).remove(9)

    def test_false_positive_rate_grows_with_load(self):
        bloom = BloomFilter(64)
        empty_rate = bloom.false_positive_rate_estimate()
        for address in range(60):
            bloom.insert(address)
        assert bloom.false_positive_rate_estimate() > empty_rate

    def test_clear(self):
        bloom = BloomFilter(32)
        bloom.insert(1)
        bloom.clear()
        assert not bloom.may_contain(1)


class TestShuffleNetwork:
    def _vectors(self, sources=4, lanes=16, partitions=4, cross=0.5, seed=0):
        rng = np.random.default_rng(seed)
        out = {}
        for source in range(sources):
            vector = []
            for lane in range(lanes):
                dest = int(rng.integers(0, partitions)) if rng.random() < cross else source
                address = dest * (2**16 // partitions) + int(rng.integers(0, 256))
                vector.append(ShuffleRequest(source=source, lane=lane, address=address))
            out[source] = vector
        return out

    def test_all_requests_delivered(self):
        network = ShuffleNetwork(ShuffleConfig(mode=ShuffleMode.MRG1))
        vectors = self._vectors()
        outputs, stats = network.route(vectors, partitions=4)
        delivered = sum(
            sum(1 for slot in vector if slot is not None)
            for vecs in outputs.values()
            for vector in vecs
        )
        assert delivered == 4 * 16
        assert stats.input_vectors == 4

    def test_requests_routed_to_correct_partition(self):
        network = ShuffleNetwork(ShuffleConfig(mode=ShuffleMode.MRG16))
        vectors = self._vectors(seed=3)
        outputs, _ = network.route(vectors, partitions=4)
        for destination, vecs in outputs.items():
            for vector in vecs:
                for request in vector:
                    if request is not None:
                        assert (request.address // (2**16 // 4)) % 4 == destination

    def test_mrg1_beats_none(self):
        eff_none = merge_efficiency(ShuffleMode.NONE, cross_partition_fraction=0.5, vectors=16)
        eff_mrg1 = merge_efficiency(ShuffleMode.MRG1, cross_partition_fraction=0.5, vectors=16)
        assert eff_mrg1 > eff_none

    def test_mrg16_at_least_mrg0(self):
        eff_mrg0 = merge_efficiency(ShuffleMode.MRG0, cross_partition_fraction=0.7, vectors=16)
        eff_mrg16 = merge_efficiency(ShuffleMode.MRG16, cross_partition_fraction=0.7, vectors=16)
        assert eff_mrg16 >= eff_mrg0 * 0.95

    def test_stage_count(self):
        network = ShuffleNetwork(ShuffleConfig(endpoints=16))
        assert network.stages == 4


class TestCompression:
    def test_roundtrip(self):
        values = np.array([100, 101, 103, 110, 200, 201] * 8, dtype=np.int64)
        packets, report = compress_pointer_array(values)
        assert np.array_equal(decompress_packets(packets), values)
        assert report.ratio > 1.0

    def test_close_values_compress_well(self):
        clustered = np.arange(1000, 1064)
        spread = np.random.default_rng(0).integers(0, 2**30, size=64)
        assert compression_ratio(clustered) > compression_ratio(spread)

    def test_empty_array(self):
        packets, report = compress_pointer_array(np.array([], dtype=np.int64))
        assert packets == []
        assert report.ratio == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            compress_pointer_array(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=2**31 - 1), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        packets, _ = compress_pointer_array(array)
        assert np.array_equal(decompress_packets(packets), array)


class TestFormatConverter:
    def test_convert_produces_expected_bitvector(self):
        converter = FormatConverter()
        vector, stats = converter.convert(64, np.array([3, 10, 40]))
        assert vector.indices.tolist() == [3, 10, 40]
        assert stats.cycles == 1
        assert stats.pointers == 3

    def test_conflict_counting(self):
        converter = FormatConverter(lanes=16, word_bits=32)
        # Sixteen pointers in the same 32-bit word collide 15 times.
        _, stats = converter.convert(64, np.arange(16))
        assert stats.spmu_word_conflicts == 15

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            FormatConverter().convert(8, np.array([9]))

    def test_convert_many_aggregates(self):
        converter = FormatConverter()
        vectors, stats = converter.convert_many(128, [np.array([1]), np.array([2, 3])])
        assert len(vectors) == 2
        assert stats.pointers == 3


class TestComputeUnit:
    def test_map_cycles(self):
        cu = ComputeUnit(lanes=16)
        assert cu.map_cycles(32) == 2
        assert cu.map_cycles(33) == 3

    def test_ragged_counts_empty_rows(self):
        cu = ComputeUnit(lanes=16)
        assert cu.map_cycles_ragged([0, 5, 40]) == 1 + 1 + 3

    def test_reduce_cycles(self):
        cu = ComputeUnit(lanes=16)
        assert cu.reduce_cycles(16) == 1 + 4

    def test_utilization_tracking(self):
        cu = ComputeUnit(lanes=16)
        cu.map_cycles(8)
        assert cu.activity.utilization == pytest.approx(0.5)

    def test_distribute_work_imbalance(self):
        distribution = distribute_work([10, 10, 10, 100], units=2)
        assert distribution.critical_path_cycles == 110
        assert distribution.imbalance_cycles > 0

    def test_distribute_balanced(self):
        distribution = distribute_work([5] * 8, units=4)
        assert distribution.imbalance_fraction == 0.0


class TestAddressGenerator:
    def test_atomic_add_applies(self):
        ag = DRAMAddressGenerator(region_words=256)
        ag.process_vector([MemoryRequest(address=5, op=RMWOp.ADD, value=2.0)] * 3)
        assert ag.data()[5] == 6.0

    def test_burst_coalescing(self):
        ag = DRAMAddressGenerator(region_words=256)
        ag.process_vector([MemoryRequest(address=i, op=RMWOp.ADD, value=1.0) for i in range(16)])
        assert ag.stats.bursts_read == 1
        assert ag.stats.coalesced_requests == 15

    def test_sequential_streaming(self):
        ag = DRAMAddressGenerator(region_words=1024)
        ag.read_sequential(0, 128)
        assert ag.stats.bursts_read == 8
        assert ag.stats.sequential_bursts == 7

    def test_eviction_writes_back_dirty(self):
        ag = DRAMAddressGenerator(region_words=4096, burst_tracking_entries=2)
        for burst in range(4):
            ag.process_vector([MemoryRequest(address=burst * 16, op=RMWOp.ADD, value=1.0)])
        assert ag.stats.bursts_written >= 2

    def test_partitioned_dram_routing(self):
        dram = PartitionedDRAM(total_words=800, generators=8)
        dram.process([MemoryRequest(address=750, op=RMWOp.ADD, value=3.0)])
        ag_index, local = dram.ag_for(750)
        assert dram.generator(ag_index).data()[local] == 3.0

    def test_out_of_region(self):
        ag = DRAMAddressGenerator(region_words=16)
        with pytest.raises(SimulationError):
            ag.process_vector([MemoryRequest(address=99, op=RMWOp.READ)])


class TestAreaModel:
    def test_paper_overheads(self):
        assert area_overhead_vs_plasticine() == pytest.approx(0.16, abs=0.02)
        assert power_overhead_vs_plasticine() == pytest.approx(0.12, abs=0.02)

    def test_totals_match_paper(self):
        assert plasticine_area().total_mm2 == pytest.approx(158.6, rel=0.01)
        assert capstan_area().total_mm2 == pytest.approx(184.5, rel=0.02)

    def test_scanner_area_table_points(self):
        assert scanner_area_um2(256, 16) == 19898
        assert scanner_area_um2(512, 1) == 7777

    def test_scanner_area_monotonic(self):
        assert scanner_area_um2(512, 16) > scanner_area_um2(256, 16) > scanner_area_um2(128, 16)
        assert scanner_area_um2(256, 16) > scanner_area_um2(256, 4)

    def test_scheduler_area_table_points(self):
        assert scheduler_area_um2(16, 16) == 51359
        assert scheduler_area_um2(32, 32) == 90433

    def test_scheduler_area_extrapolates(self):
        assert scheduler_area_um2(64, 16) > scheduler_area_um2(32, 16)

    def test_sparse_fraction_halves_overhead(self):
        import dataclasses

        half = dataclasses.replace(CapstanConfig(), sparse_fraction=0.5)
        assert area_overhead_vs_plasticine(half) < area_overhead_vs_plasticine() * 0.7

    def test_area_scales_with_grid(self):
        small = capstan_area(CapstanConfig().scaled(0.5))
        assert small.total_mm2 < capstan_area().total_mm2
