"""Property tests pinning the packed-word substrate to its references.

Every vectorized kernel in :mod:`repro.formats.packed`, the array-native
``BitVector`` / ``BitTree`` builders, the columnar scanner batch path, and
the batched format converter must agree element-for-element with the
retained object-at-a-time implementations in
:mod:`repro.formats.reference` and the ``*_reference`` methods left on the
scanner and converter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.format_conversion import FormatConverter
from repro.core.scanner import (
    BitVectorScanner,
    DataScanner,
    ScanMode,
    scan_timing_from_mask,
    scan_timing_from_mask_reference,
)
from repro.config import ScannerConfig
from repro.errors import FormatError
from repro.formats import BitTree, BitVector, align_trees, packed
from repro.formats.reference import (
    align_trees_reference,
    bittree_from_indices_reference,
    bitvector_construct_reference,
    pack_indices_reference,
    packed_words_reference,
    popcount_reference,
    rank_reference,
    select_reference,
)
from repro.workloads.synthetic import sparse_bitvector, sparse_vector

unique_indices = st.lists(
    st.integers(min_value=0, max_value=511), unique=True, max_size=64
)
word_arrays = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=8
).map(lambda words: np.asarray(words, dtype=np.uint64))


class TestPackedKernels:
    @given(unique_indices)
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, indices):
        length = 512
        words = packed.pack_indices(np.asarray(indices, dtype=np.int64), length)
        mask = packed.unpack_words(words, length)
        assert np.flatnonzero(mask).tolist() == sorted(indices)
        assert np.array_equal(packed.pack_mask(mask), words)

    @given(unique_indices, st.sampled_from([8, 16, 32, 64, 20]))
    @settings(max_examples=60, deadline=None)
    def test_pack_matches_reference_any_word_width(self, indices, word_bits):
        index_array = np.asarray(indices, dtype=np.int64)
        assert np.array_equal(
            packed.pack_indices(index_array, 512, word_bits),
            pack_indices_reference(index_array, 512, word_bits),
        )

    @given(word_arrays)
    @settings(max_examples=60, deadline=None)
    def test_popcount_matches_reference(self, words):
        assert np.array_equal(packed.popcount(words), popcount_reference(words))

    @given(unique_indices)
    @settings(max_examples=60, deadline=None)
    def test_rank_matches_cumsum(self, indices):
        length = 512
        words = packed.pack_indices(np.asarray(indices, dtype=np.int64), length)
        mask = packed.unpack_words(words, length)
        prefix = np.concatenate(([0], np.cumsum(mask.astype(np.int64))))
        positions = np.arange(length, dtype=np.int64)
        assert np.array_equal(packed.rank(words, positions), prefix[:-1])
        assert np.array_equal(
            packed.rank(words, positions), rank_reference(words, positions)
        )

    @given(unique_indices)
    @settings(max_examples=60, deadline=None)
    def test_select_inverts_rank(self, indices):
        if not indices:
            return
        length = 512
        words = packed.pack_indices(np.asarray(indices, dtype=np.int64), length)
        ranks = np.arange(len(indices), dtype=np.int64)
        selected = packed.select(words, ranks, length)
        assert selected.tolist() == sorted(indices)
        assert np.array_equal(selected, select_reference(words, ranks, length))
        assert np.array_equal(packed.rank(words, selected), ranks)

    @given(unique_indices, unique_indices)
    @settings(max_examples=60, deadline=None)
    def test_intersect_union_match_boolean_masks(self, a, b):
        length = 512
        words_a = packed.pack_indices(np.asarray(a, dtype=np.int64), length)
        words_b = packed.pack_indices(np.asarray(b, dtype=np.int64), length)
        mask_a = packed.unpack_words(words_a, length)
        mask_b = packed.unpack_words(words_b, length)
        assert np.array_equal(
            packed.unpack_words(packed.intersect_words(words_a, words_b), length),
            mask_a & mask_b,
        )
        assert np.array_equal(
            packed.unpack_words(packed.union_words(words_a, words_b), length),
            mask_a | mask_b,
        )

    @given(unique_indices)
    @settings(max_examples=40, deadline=None)
    def test_test_bits_membership(self, indices):
        length = 512
        words = packed.pack_indices(np.asarray(indices, dtype=np.int64), length)
        probes = np.arange(length, dtype=np.int64)
        expected = np.zeros(length, dtype=bool)
        expected[np.asarray(indices, dtype=np.int64)] = True
        assert np.array_equal(packed.test_bits(words, probes), expected)

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            packed.pack_indices(np.array([512]), 512)
        with pytest.raises(FormatError):
            packed.pack_indices(np.array([-1]), 512)


class TestBitVectorSubstrate:
    @given(
        unique_indices,
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_construction_matches_reference(self, indices, with_values, as_array):
        length = 512
        values = (
            [float(i) + 0.5 for i in range(len(indices))] if with_values else None
        )
        ref_idx, ref_vals, ref_mask = bitvector_construct_reference(
            length, indices, values
        )
        given_indices = np.asarray(indices, dtype=np.int64) if as_array else indices
        given_values = (
            (np.asarray(values) if as_array else values) if with_values else None
        )
        vector = BitVector(length, given_indices, given_values)
        assert np.array_equal(vector.indices, ref_idx)
        assert np.array_equal(vector.values, ref_vals)
        assert np.array_equal(vector.mask, ref_mask)
        assert np.array_equal(
            vector.words, packed.pack_indices(ref_idx, length)
        )

    def test_accepts_generator_inputs(self):
        vector = BitVector(16, (i * 2 for i in range(4)), (float(i) for i in range(4)))
        assert vector.indices.tolist() == [0, 2, 4, 6]

    @given(unique_indices, st.sampled_from([8, 16, 32, 64, 20]))
    @settings(max_examples=40, deadline=None)
    def test_packed_words_matches_reference(self, indices, word_bits):
        vector = BitVector(512, indices)
        assert np.array_equal(
            vector.packed_words(word_bits), packed_words_reference(vector, word_bits)
        )

    @given(unique_indices, unique_indices)
    @settings(max_examples=40, deadline=None)
    def test_mask_ops_match_boolean(self, a, b):
        va = BitVector(512, a)
        vb = BitVector(512, b)
        mask_a, mask_b = va.mask, vb.mask
        assert np.array_equal(va.intersect_mask(vb), mask_a & mask_b)
        assert np.array_equal(va.union_mask(vb), mask_a | mask_b)

    def test_from_words_clears_stray_bits_beyond_length(self):
        stray = np.array([(1 << 20) | 1], dtype=np.uint64)
        vector = BitVector.from_words(10, stray)
        assert vector.indices.tolist() == [0]
        assert vector.words.tolist() == [1]
        scanner = BitVectorScanner()
        assert scanner.count(vector, vector, ScanMode.INTERSECT) == 1
        assert len(scanner.scan_batch(vector, vector, ScanMode.INTERSECT)) == 1
        assert stray[0] == (1 << 20) | 1  # caller's words untouched

    def test_sparse_bitvector_matches_dense_generator(self):
        for density in (0.0, 0.01, 0.2, 0.7):
            direct = sparse_bitvector(2048, density, seed=7)
            via_dense = BitVector.from_dense(sparse_vector(2048, density, seed=7))
            assert direct == via_dense


class TestBitTreeSubstrate:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2047),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            max_size=64,
        ),
        st.sampled_from([512, 256, 100]),
    )
    @settings(max_examples=50, deadline=None)
    def test_from_indices_matches_reference(self, entries, tile_bits):
        indices = np.asarray([e[0] for e in entries], dtype=np.int64)
        values = np.asarray([e[1] for e in entries], dtype=np.float64)
        fast = BitTree.from_indices(2048, indices, values, tile_bits)
        reference = bittree_from_indices_reference(2048, indices, values, tile_bits)
        assert np.array_equal(fast.to_dense(), reference.to_dense())
        assert np.array_equal(fast.indices(), reference.indices())
        assert fast.occupied_tiles == reference.occupied_tiles
        assert fast.nnz == reference.nnz
        assert fast.storage_bits() == reference.storage_bits()
        assert np.array_equal(
            fast.top_level().indices, reference.top_level().indices
        )
        for tile_id, tile in fast.iter_tiles():
            assert tile == reference.tile(tile_id)

    @given(
        st.lists(st.integers(min_value=0, max_value=4095), unique=True, max_size=48),
        st.lists(st.integers(min_value=0, max_value=4095), unique=True, max_size=48),
        st.sampled_from(["union", "intersect"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_align_trees_matches_reference(self, a, b, mode):
        tree_a = BitTree.from_indices(
            4096, np.asarray(a, dtype=np.int64), np.ones(len(a))
        )
        tree_b = BitTree.from_indices(
            4096, np.asarray(b, dtype=np.int64), np.ones(len(b))
        )
        fast = align_trees(tree_a, tree_b, mode)
        reference = align_trees_reference(tree_a, tree_b, mode)
        assert [t[0] for t in fast] == [t[0] for t in reference]
        for (_, fl, fr), (_, rl, rr) in zip(fast, reference):
            assert fl == rl
            assert fr == rr

    def test_words_matrix_shape_and_content(self):
        tree = BitTree.from_indices(
            2048, np.array([3, 600, 1500]), np.array([1.0, 2.0, 3.0])
        )
        words = tree.words
        assert words.shape == (4, 8)
        assert words[0, 0] == np.uint64(1) << np.uint64(3)
        assert words[1, (600 % 512) // 64] == np.uint64(1) << np.uint64(
            (600 % 512) % 64
        )

    def test_set_after_vectorized_build(self):
        tree = BitTree.from_indices(1024, np.array([5]), np.array([1.0]))
        tree.set(700, 2.0)
        tree.set(5, 9.0)
        assert tree.indices().tolist() == [5, 700]
        assert tree.values().tolist() == [9.0, 2.0]
        assert tree.occupied_tiles == 2


DENSITY_CASES = [0.0, 0.02, 0.15, 0.5]


class TestScanBatchEquivalence:
    @given(
        unique_indices,
        unique_indices,
        st.sampled_from([ScanMode.INTERSECT, ScanMode.UNION, ScanMode.SINGLE]),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_legacy_scan(self, a, b, mode):
        scanner = BitVectorScanner()
        va = BitVector(512, a)
        vb = None if mode is ScanMode.SINGLE else BitVector(512, b)
        batch = scanner.scan_batch(va, vb, mode)
        elements = scanner.scan(va, vb, mode)
        reference = scanner.scan_reference(va, vb, mode)
        assert elements == reference
        assert batch.elements() == reference
        assert len(batch) == len(reference)
        assert scanner.count(va, vb, mode) == len(reference)

    @pytest.mark.parametrize("density_a", DENSITY_CASES)
    @pytest.mark.parametrize("density_b", DENSITY_CASES)
    @pytest.mark.parametrize(
        "mode", [ScanMode.INTERSECT, ScanMode.UNION, ScanMode.SINGLE]
    )
    def test_batch_matches_legacy_across_densities(self, density_a, density_b, mode):
        scanner = BitVectorScanner()
        va = sparse_bitvector(4096, density_a, seed=11)
        vb = (
            None
            if mode is ScanMode.SINGLE
            else sparse_bitvector(4096, density_b, seed=23)
        )
        batch = scanner.scan_batch(va, vb, mode)
        reference = scanner.scan_reference(va, vb, mode)
        assert batch.elements() == reference
        assert scanner.timing(va, vb, mode) == scan_timing_from_mask_reference(
            scanner._combine_reference(va, vb, mode)[0], scanner.config
        )

    @given(unique_indices, st.sampled_from([32, 64, 256]), st.sampled_from([1, 4, 16]))
    @settings(max_examples=60, deadline=None)
    def test_timing_matches_reference(self, indices, bit_width, out):
        config = ScannerConfig(bit_width=bit_width, output_vectorization=out)
        mask = np.zeros(512, dtype=bool)
        mask[np.asarray(indices, dtype=np.int64)] = True
        assert scan_timing_from_mask(mask, config) == scan_timing_from_mask_reference(
            mask, config
        )

    def test_timing_empty_mask_quirk(self):
        config = ScannerConfig()
        empty = np.zeros(0, dtype=bool)
        assert scan_timing_from_mask(empty, config) == scan_timing_from_mask_reference(
            empty, config
        )

    @given(st.lists(st.floats(min_value=0.0, max_value=4.0), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_data_scanner_timing_matches_reference(self, values):
        scanner = DataScanner()
        array = np.asarray(values, dtype=np.float64)
        assert scanner.timing_cycles(array) == scanner.timing_cycles_reference(array)


class TestConverterBatch:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=255), unique=True, max_size=40),
            max_size=8,
        ),
        st.sampled_from([4, 16]),
    )
    @settings(max_examples=50, deadline=None)
    def test_convert_many_matches_reference(self, tiles, lanes):
        converter = FormatConverter(lanes=lanes, word_bits=32)
        tile_arrays = [np.asarray(tile, dtype=np.int64) for tile in tiles]
        fast_vectors, fast_stats = converter.convert_many(256, tile_arrays)
        ref_vectors, ref_stats = converter.convert_many_reference(256, tile_arrays)
        assert fast_stats == ref_stats
        assert len(fast_vectors) == len(ref_vectors)
        for fast, ref in zip(fast_vectors, ref_vectors):
            assert fast == ref
            assert np.array_equal(fast.mask, ref.mask)

    def test_convert_many_rejects_duplicates_and_range(self):
        converter = FormatConverter()
        with pytest.raises(FormatError):
            converter.convert_many(64, [np.array([1, 1])])
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            converter.convert_many(64, [np.array([64])])

    def test_convert_many_rejects_multidimensional_tiles(self):
        converter = FormatConverter()
        tile = np.array([[0, 1], [2, 3]])
        with pytest.raises(FormatError):
            converter.convert_many(64, [tile])
        with pytest.raises(FormatError):
            converter.convert_many_reference(64, [tile])

    def test_convert_single_conflicts_vectorized(self):
        converter = FormatConverter(lanes=16, word_bits=32)
        pointers = np.arange(16)
        assert converter._count_spmu_conflicts(
            pointers
        ) == converter._count_spmu_conflicts_reference(pointers)
        _, stats = converter.convert(64, pointers)
        assert stats.spmu_word_conflicts == 15
