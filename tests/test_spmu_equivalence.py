"""Equivalence tests: the array SpMU / shuffle backends vs the reference loops.

The array engine's contract is *stat-for-stat* equality with the original
per-cycle simulator -- same cycles, requests, elided reads, bank-busy
cycles, ordering stalls, per-cycle traces, and SRAM contents -- across
orderings x bank mappings x allocator kinds x structural parameters, plus
every configuration the evaluation harnesses (Table 4, Table 9, Figure 4)
actually measure. These tests pin that contract, together with the batched
throughput API's cache semantics and the shuffle fast path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ShuffleMode, SpMUConfig
from repro.core import spmu as spmu_module
from repro.core.ordering import OrderingMode
from repro.core.shuffle import merge_efficiency
from repro.core.spmu import (
    MemoryRequest,
    RMWOp,
    RequestTrace,
    SparseMemoryUnit,
    SpMUVariant,
    effective_bank_throughput,
    effective_bank_throughput_batch,
    measure_bank_utilization,
    random_request_trace,
    random_request_vectors,
)
from repro.core.spmu_array import simulate_variants
from repro.errors import SimulationError
from repro.eval.tables import TABLE4_PAPER
from repro.runtime.cache import ThroughputStore

ORDERINGS = tuple(OrderingMode)
ALL_OPS = tuple(RMWOp)


def _stats_tuple(stats):
    return (
        stats.cycles,
        stats.requests,
        stats.elided_reads,
        stats.bank_busy_cycles,
        stats.vectors,
        stats.stall_cycles_ordering,
    )


def _units(config, lanes, ordering, mapping, allocator):
    kwargs = dict(
        config=config,
        lanes=lanes,
        ordering=ordering,
        bank_mapping=mapping,
        allocator_kind=allocator,
        record_trace=True,
    )
    return (
        SparseMemoryUnit(backend="reference", **kwargs),
        SparseMemoryUnit(backend="array", **kwargs),
    )


def _assert_equivalent(config, lanes, ordering, mapping, allocator, vectors):
    reference, array = _units(config, lanes, ordering, mapping, allocator)
    ref_stats = reference.simulate(vectors)
    arr_stats = array.simulate(RequestTrace.from_vectors(vectors))
    assert _stats_tuple(ref_stats) == _stats_tuple(arr_stats)
    assert np.array_equal(
        ref_stats.per_cycle_active_banks, arr_stats.per_cycle_active_banks
    )
    words = reference.capacity_words
    assert np.array_equal(reference.read_data(0, words), array.read_data(0, words))


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Point the throughput store at a fresh directory with an empty memo."""
    monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
    monkeypatch.delenv("REPRO_THROUGHPUT_CACHE_DISABLE", raising=False)
    monkeypatch.setattr(spmu_module, "_THROUGHPUT_CACHE", {})
    return ThroughputStore()


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("ordering", ORDERINGS, ids=lambda o: o.value)
    @pytest.mark.parametrize("allocator", ("separable", "greedy"))
    @given(
        count=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
        lanes=st.sampled_from((1, 2, 8, 16)),
        depth=st.sampled_from((1, 2, 16)),
        write_fraction=st.sampled_from((0.0, 0.3, 1.0)),
        address_space=st.sampled_from((8, 64, 4096)),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_traces(
        self, ordering, allocator, count, seed, lanes, depth, write_fraction, address_space
    ):
        config = SpMUConfig(queue_depth=depth)
        vectors = random_request_vectors(
            count,
            lanes=lanes,
            address_space=address_space,
            seed=seed,
            write_fraction=write_fraction,
        )
        _assert_equivalent(config, lanes, ordering, "hash", allocator, vectors)

    @pytest.mark.parametrize("mapping", ("hash", "linear"))
    @pytest.mark.parametrize(
        "banks,depth,crossbar,priorities",
        [(16, 16, 16, 3), (32, 8, 32, 1), (16, 4, 32, 2), (8, 2, 16, 1)],
    )
    def test_structural_parameters(self, mapping, banks, depth, crossbar, priorities):
        config = SpMUConfig(
            banks=banks,
            queue_depth=depth,
            crossbar_inputs=crossbar,
            allocator_priorities=priorities,
        )
        vectors = random_request_vectors(24, lanes=16, seed=11, write_fraction=0.25)
        for ordering in ORDERINGS:
            for allocator in ("separable", "greedy"):
                _assert_equivalent(config, 16, ordering, mapping, allocator, vectors)

    @pytest.mark.parametrize(
        "ordering", (OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED)
    )
    def test_rmw_op_variety_preserves_memory_image(self, ordering):
        rng = np.random.default_rng(5)
        config = SpMUConfig(banks=8, words_per_bank=8, bloom_filter_entries=16)
        vectors = [
            [
                MemoryRequest(
                    address=int(rng.integers(0, 64)),
                    op=ALL_OPS[int(rng.integers(0, len(ALL_OPS)))],
                    value=float(np.round(rng.normal(), 3)),
                )
                for _ in range(int(rng.integers(0, 9)))
            ]
            for _ in range(10)
        ]
        _assert_equivalent(config, 8, ordering, "hash", "separable", vectors)

    def test_empty_and_all_elided_vectors(self):
        config = SpMUConfig(queue_depth=4)
        vectors = [
            [],
            [MemoryRequest(address=3, op=RMWOp.READ) for _ in range(8)],
            [],
            [MemoryRequest(address=3, op=RMWOp.ADD, value=1.0)],
            [],
        ]
        for ordering in ORDERINGS:
            _assert_equivalent(config, 8, ordering, "hash", "separable", vectors)

    def test_oversized_vector_rejected_by_both_backends(self):
        vectors = [[MemoryRequest(address=0) for _ in range(5)]]
        for backend in ("reference", "array"):
            unit = SparseMemoryUnit(lanes=4, backend=backend)
            with pytest.raises(SimulationError):
                unit.simulate(
                    vectors if backend == "reference" else RequestTrace.from_vectors(vectors)
                )

    def test_out_of_range_address_rejected_by_both_backends(self):
        vectors = [[MemoryRequest(address=10**9)]]
        for backend in ("reference", "array"):
            unit = SparseMemoryUnit(backend=backend)
            with pytest.raises(SimulationError):
                unit.simulate(
                    vectors if backend == "reference" else RequestTrace.from_vectors(vectors)
                )

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            SparseMemoryUnit(backend="magic")


class TestEvaluationConfigurations:
    """Every configuration the table/figure harnesses measure must agree."""

    @pytest.mark.parametrize(
        "depth,crossbar,priorities", sorted(TABLE4_PAPER), ids=str
    )
    def test_table4_grid(self, depth, crossbar, priorities):
        config = SpMUConfig(
            queue_depth=depth,
            crossbar_inputs=crossbar,
            allocator_priorities=priorities,
            allocator_iterations=3,
        )
        reference = measure_bank_utilization(config, vectors=48, backend="reference")
        array = measure_bank_utilization(config, vectors=48, backend="array")
        assert reference == array

    @pytest.mark.parametrize("ordering", ORDERINGS, ids=lambda o: o.value)
    def test_figure4_orderings(self, ordering):
        # The exact Figure 4 workload: 120 random vectors, seed 7.
        config = SpMUConfig()
        reference = measure_bank_utilization(
            config, ordering=ordering, vectors=120, backend="reference"
        )
        array = measure_bank_utilization(
            config, ordering=ordering, vectors=120, backend="array"
        )
        assert reference == array

    @pytest.mark.parametrize("mapping", ("hash", "linear"))
    @pytest.mark.parametrize(
        "ordering,allocator",
        [
            (OrderingMode.UNORDERED, "separable"),
            (OrderingMode.UNORDERED, "greedy"),
            (OrderingMode.ARBITRATED, "separable"),
        ],
        ids=("capstan", "weak", "arbitrated"),
    )
    def test_table9_variants(self, mapping, ordering, allocator):
        config = SpMUConfig()
        reference = measure_bank_utilization(
            config,
            ordering=ordering,
            vectors=120,
            bank_mapping=mapping,
            allocator_kind=allocator,
            backend="reference",
        )
        array = measure_bank_utilization(
            config,
            ordering=ordering,
            vectors=120,
            bank_mapping=mapping,
            allocator_kind=allocator,
            backend="array",
        )
        assert reference == array


class TestRequestTrace:
    def test_random_trace_matches_object_factory(self):
        vectors = random_request_vectors(9, lanes=8, seed=21, write_fraction=0.4)
        from_objects = RequestTrace.from_vectors(vectors)
        direct = random_request_trace(9, lanes=8, seed=21, write_fraction=0.4)
        for name in ("addresses", "ops", "values", "lanes", "vector_ids"):
            assert np.array_equal(getattr(from_objects, name), getattr(direct, name))
        assert from_objects.n_vectors == direct.n_vectors == 9
        assert len(direct) == 72

    def test_roundtrip_preserves_requests(self):
        vectors = [
            [MemoryRequest(address=4, op=RMWOp.MIN_REPORT_CHANGED, value=2.5)],
            [],
            [MemoryRequest(address=1), MemoryRequest(address=2, op=RMWOp.WRITE, value=7.0)],
        ]
        rebuilt = RequestTrace.from_vectors(vectors).to_vectors()
        assert len(rebuilt) == 3
        assert rebuilt[0][0].op is RMWOp.MIN_REPORT_CHANGED
        assert rebuilt[0][0].value == 2.5
        assert rebuilt[1] == []
        assert [r.address for r in rebuilt[2]] == [1, 2]

    def test_reference_backend_accepts_traces(self):
        trace = random_request_trace(6, lanes=4, seed=2)
        reference = SparseMemoryUnit(lanes=4, backend="reference")
        array = SparseMemoryUnit(lanes=4, backend="array")
        assert _stats_tuple(reference.simulate(trace)) == _stats_tuple(array.simulate(trace))


class TestRecordTrace:
    def test_trace_is_opt_in(self):
        vectors = random_request_vectors(10, seed=3)
        for backend in ("reference", "array"):
            stats = SparseMemoryUnit(backend=backend).simulate(vectors)
            assert stats.per_cycle_active_banks is None
            assert stats.bank_utilization > 0.0

    def test_trace_length_and_utilization_consistency(self):
        vectors = random_request_vectors(15, seed=4)
        for ordering in ORDERINGS:
            untraced = SparseMemoryUnit(ordering=ordering).simulate(vectors)
            traced_unit = SparseMemoryUnit(ordering=ordering, record_trace=True)
            traced = traced_unit.simulate(vectors)
            assert isinstance(traced.per_cycle_active_banks, np.ndarray)
            if ordering is not OrderingMode.ARBITRATED:
                assert traced.per_cycle_active_banks.size == traced.cycles
            assert int(traced.per_cycle_active_banks.sum()) == traced.requests
            assert traced.bank_utilization == untraced.bank_utilization


class TestBatchedThroughput:
    def _grid(self):
        variants = []
        for ordering in ORDERINGS:
            for mapping in ("hash", "linear"):
                variants.append(
                    SpMUVariant(
                        ordering=ordering,
                        bank_mapping=mapping,
                        config=SpMUConfig(banks=8, words_per_bank=512),
                        lanes=8,
                    )
                )
        return variants

    def test_matches_scalar_path(self, isolated_store):
        variants = self._grid()
        batched = effective_bank_throughput_batch(variants)
        spmu_module._THROUGHPUT_CACHE.clear()
        for variant, value in zip(variants, batched):
            scalar = effective_bank_throughput(
                ordering=variant.ordering,
                bank_mapping=variant.bank_mapping,
                allocator_kind=variant.allocator_kind,
                config=variant.config,
                lanes=variant.lanes,
            )
            assert scalar == value

    def test_matches_reference_backend(self, isolated_store):
        variants = self._grid()[:4]
        batched = effective_bank_throughput_batch(variants)
        reference = effective_bank_throughput_batch(variants, backend="reference")
        assert np.array_equal(batched, reference)

    def test_populates_store_and_memo_in_one_pass(self, isolated_store, monkeypatch):
        variants = self._grid()
        calls = []
        original = simulate_variants

        def counting(vs, traces, **kwargs):
            calls.append(len(vs))
            return original(vs, traces, **kwargs)

        monkeypatch.setattr(spmu_module, "simulate_variants", counting)
        first = effective_bank_throughput_batch(variants)
        assert calls == [len(variants)]  # one batched simulation call
        assert len(isolated_store) == len(variants)
        # Warm memo: no further simulation.
        second = effective_bank_throughput_batch(variants)
        assert calls == [len(variants)]
        assert np.array_equal(first, second)
        # Fresh process (cleared memo): served from the store, no simulation.
        spmu_module._THROUGHPUT_CACHE.clear()
        third = effective_bank_throughput_batch(variants)
        assert calls == [len(variants)]
        assert np.array_equal(first, third)

    def test_duplicate_variants_simulated_once(self, isolated_store, monkeypatch):
        variant = SpMUVariant(config=SpMUConfig(banks=8, words_per_bank=512), lanes=8)
        calls = []
        original = simulate_variants

        def counting(vs, traces, **kwargs):
            calls.append(len(vs))
            return original(vs, traces, **kwargs)

        monkeypatch.setattr(spmu_module, "simulate_variants", counting)
        values = effective_bank_throughput_batch([variant] * 5)
        assert calls == [1]
        assert np.unique(values).size == 1

    def test_store_many_roundtrip(self, tmp_path):
        store = ThroughputStore(root=tmp_path)
        store.store_many({"a" * 64: 1.5, "b" * 64: 2.5})
        assert store.load_many(["a" * 64, "b" * 64, "c" * 64]) == {
            "a" * 64: 1.5,
            "b" * 64: 2.5,
        }
        (tmp_path / ("d" * 64 + ".json")).write_text("{broken")
        assert store.load_many(["d" * 64]) == {}


class TestMergeEfficiencyBackends:
    @pytest.mark.parametrize("mode", tuple(ShuffleMode), ids=lambda m: m.value)
    @pytest.mark.parametrize("fraction", (0.0, 0.3, 0.7, 1.0))
    def test_fast_path_matches_reference(self, mode, fraction):
        reference = merge_efficiency(
            mode, fraction, lanes=8, vectors=12, backend="reference"
        )
        array = merge_efficiency(mode, fraction, lanes=8, vectors=12, backend="array")
        assert reference == array

    def test_design_point_traffic_matches(self):
        # The shape _shuffle_efficiency measures at the 16-lane design point.
        for mode in (ShuffleMode.MRG0, ShuffleMode.MRG1, ShuffleMode.MRG16):
            reference = merge_efficiency(
                mode, 0.45, lanes=16, vectors=24, backend="reference"
            )
            array = merge_efficiency(mode, 0.45, lanes=16, vectors=24, backend="array")
            assert reference == array


class TestPrefill:
    def test_prefill_throughputs_warms_the_store(self, isolated_store):
        from repro.runtime.dse import prefill_throughputs
        from repro.runtime.sweep import sweep

        variants = sweep(banks=(8,), lanes=(8,), queue_depth=(4, 8))
        resolved = prefill_throughputs(variants.values())
        assert resolved == 2
        assert len(isolated_store) == 2
        # Ideal-SRAM platforms need no calibration at all.
        ideal = sweep(ideal_sram=(True,))
        assert prefill_throughputs(ideal.values()) == 0

    def test_cli_prefill_only(self, tmp_path, monkeypatch, capsys):
        from repro.runtime.cli import main as cli_main

        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
        monkeypatch.setattr(spmu_module, "_THROUGHPUT_CACHE", {})
        rc = cli_main(
            [
                "dse",
                "--axis", "banks=8",
                "--axis", "lanes=8",
                "--axis", "queue_depth=4,8",
                "--prefill-only",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "prefilled SpMU throughputs for 2 distinct variants" in out
        assert len(ThroughputStore()) == 2

    def test_cli_prefill_store_is_read_back(self, tmp_path, monkeypatch):
        from repro.runtime.cli import main as cli_main

        monkeypatch.setenv("REPRO_THROUGHPUT_CACHE", str(tmp_path / "throughput"))
        monkeypatch.setattr(spmu_module, "_THROUGHPUT_CACHE", {})
        assert (
            cli_main(
                ["dse", "--axis", "banks=8", "--axis", "lanes=8", "--prefill-only"]
            )
            == 0
        )
        store = ThroughputStore()
        payloads = [
            json.loads(path.read_text()) for path in sorted(store.root.glob("*.json"))
        ]
        assert payloads and all(p["throughput"] > 0 for p in payloads)
