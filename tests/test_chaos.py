"""Chaos suite: the hardening invariants under injected faults.

Every test drives a real store/executor stack with a seeded
:class:`~repro.runtime.faults.FaultPlan` and asserts the invariants the
robustness work claims: no lost or double-committed units (attempt
markers prove exactly-once execution), byte-identical cache output
versus a fault-free run, dead-lettering after ``max_attempts``, and two
concurrent ``run_job`` claimants never double-running a unit.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.runtime.executors import LocalExecutor, SubprocessExecutor
from repro.runtime.executors.subprocess import _worker_env
from repro.runtime.faults import Fault, FaultPlan, FaultyExecutor
from repro.runtime.jobs import (
    JOB_DONE,
    JOB_FAILED,
    UNIT_DEAD,
    UNIT_DONE,
    JobSpec,
    JobStore,
    WorkUnit,
)


def _markers(scratch: Path, unit: int) -> int:
    root = scratch / f"unit-{unit}"
    return len(list(root.glob("attempt-*"))) if root.is_dir() else 0


def _probe(value, **extra):
    payload = {"kind": "probe", "value": value}
    payload.update(extra)
    return payload


class TestWorkerFaults:
    """Process-level faults against the subprocess backend."""

    def test_crash_mid_unit_respawns_and_retries(self, tmp_path):
        # The worker os._exit()s inside the unit; the executor must see a
        # dead worker, respawn, and complete the unit on the retry.
        plan = FaultPlan(
            [Fault(kind="crash", times=1)], state_dir=str(tmp_path / "faults")
        )
        executor = SubprocessExecutor(workers=1, retries=1, backoff_s=0.01)
        with plan.installed():
            outcomes = executor.run_units([_probe(3)])
        assert outcomes[0].status == "ok"
        assert outcomes[0].result["value"] == 6
        assert outcomes[0].attempts == 2

    def test_hang_is_cut_by_timeout_and_retried(self, tmp_path):
        plan = FaultPlan(
            [Fault(kind="hang", times=1)], state_dir=str(tmp_path / "faults")
        )
        executor = SubprocessExecutor(workers=1, timeout_s=1.0, retries=1, backoff_s=0.01)
        with plan.installed():
            outcomes = executor.run_units([_probe(3)])
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2

    def test_malformed_line_kills_worker_not_the_run(self, tmp_path):
        # A garbage protocol line must cost one attempt on a fresh worker,
        # not poison every later unit on the same connection.
        plan = FaultPlan(
            [Fault(kind="malformed_line", times=1)],
            state_dir=str(tmp_path / "faults"),
        )
        executor = SubprocessExecutor(workers=1, retries=1, backoff_s=0.01)
        with plan.installed():
            outcomes = executor.run_units([_probe(1), _probe(2)])
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert outcomes[0].attempts == 2
        assert outcomes[1].attempts == 1
        report = executor.health_report()
        assert report[0]["failures"] >= 1  # the protocol failure was recorded

    def test_truncated_line_surfaces_as_dead_worker(self, tmp_path):
        plan = FaultPlan(
            [Fault(kind="truncated_line", times=1)],
            state_dir=str(tmp_path / "faults"),
        )
        executor = SubprocessExecutor(workers=1, retries=1, backoff_s=0.01)
        with plan.installed():
            outcomes = executor.run_units([_probe(7)])
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2


class TestExactlyOnce:
    def test_byte_identical_cache_vs_fault_free_run(self, tmp_path):
        # The headline invariant: a sweep that crashed, retried, and
        # resumed must leave exactly the bytes a clean serial run leaves.
        from repro.runtime.registry import RunContext

        context = RunContext(scale=1 / 512)
        clean_root = tmp_path / "cache-clean"
        faulty_root = tmp_path / "cache-faulty"

        with JobStore(tmp_path / "clean.sqlite") as store:
            spec = JobSpec.profile_grid(["spmv-csr"], context, cache_root=clean_root)
            job = store.submit(spec)
            assert store.run_job(job.id, LocalExecutor()).state == JOB_DONE

        plan = FaultPlan([Fault(kind="error", times=2)], seed=11)
        executor = FaultyExecutor(LocalExecutor(retries=2, backoff_s=0.0), plan)
        with JobStore(tmp_path / "faulty.sqlite") as store:
            spec = JobSpec.profile_grid(["spmv-csr"], context, cache_root=faulty_root)
            job = store.submit(spec)
            assert store.run_job(job.id, executor).state == JOB_DONE

        clean = {path.name: path.read_bytes() for path in sorted(clean_root.iterdir())}
        faulty = {path.name: path.read_bytes() for path in sorted(faulty_root.iterdir())}
        assert clean and clean == faulty

    def test_exit_mid_wave_loses_only_the_uncommitted_wave(self, tmp_path):
        # The driver dies after a wave executed but before it committed;
        # the resume may re-execute that wave (work is lost, never
        # double-committed) and must not touch committed units.
        db = tmp_path / "runs.sqlite"
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(6, scratch=scratch)
        with JobStore(db) as store:
            job_id = store.submit(spec).id

        child_code = (
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.runtime.executors import LocalExecutor\n"
            "from repro.runtime.faults import Fault, FaultPlan, FaultyExecutor\n"
            "from repro.runtime.jobs import JobStore\n"
            "plan = FaultPlan(\n"
            "    [Fault(kind='exit_mid_wave', unit_index=1, exit_code=17)],\n"
            "    state_dir=sys.argv[3],\n"
            ")\n"
            "executor = FaultyExecutor(LocalExecutor(2), plan)\n"
            "with JobStore(Path(sys.argv[1])) as store:\n"
            "    store.run_job(int(sys.argv[2]), executor)\n"
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                child_code,
                str(db),
                str(job_id),
                str(tmp_path / "faults"),
            ],
            env=_worker_env(),
            timeout=120,
        )
        assert proc.returncode == 17  # died exactly where the plan said

        # Wave 1 (units 0-1) committed; wave 2 (units 2-3) executed but
        # died before commit.
        marks_after_crash = [_markers(scratch, i) for i in range(6)]
        assert marks_after_crash[:4] == [1, 1, 1, 1]
        assert marks_after_crash[4:] == [0, 0]
        with JobStore(db) as store:
            counts = store.unit_states(job_id)
            assert counts.get(UNIT_DONE, 0) == 2

            summary = store.run_job(job_id, LocalExecutor(2))
            assert summary.state == JOB_DONE
            units = store.units(job_id)
            assert all(unit.state == UNIT_DONE for unit in units)
            assert all(unit.result()["value"] == unit.seq * 2 for unit in units)
        # Committed units never re-ran; the lost wave re-ran exactly once.
        assert [_markers(scratch, i) for i in range(6)] == [1, 1, 2, 2, 1, 1]

    def test_concurrent_run_jobs_never_double_execute(self, tmp_path):
        # Two claimants drain the same job concurrently; the lease claims
        # must partition the units -- every unit done, every unit executed
        # exactly once (one attempt marker), no unit lost.
        db = tmp_path / "runs.sqlite"
        scratch = tmp_path / "scratch"
        spec = JobSpec.probes(8, sleep_s=0.05, scratch=scratch)
        with JobStore(db) as store:
            job_id = store.submit(spec).id

        errors = []

        def drain():
            try:
                with JobStore(db) as store:
                    store.run_job(job_id, LocalExecutor(2))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drain) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        with JobStore(db) as store:
            units = store.units(job_id)
            assert all(unit.state == UNIT_DONE for unit in units)
            assert store.job(job_id).state == JOB_DONE
        assert [_markers(scratch, i) for i in range(8)] == [1] * 8


class TestDeadLetter:
    def test_dead_letter_after_max_attempts(self, tmp_path):
        scratch = tmp_path / "scratch"
        units = (
            # Unit 0 fails forever (fail_times far beyond any budget).
            WorkUnit(
                key="u0",
                kind="probe",
                payload={
                    "kind": "probe",
                    "fail_times": 99,
                    "scratch": str(scratch / "unit-0"),
                },
            ),
            WorkUnit(key="u1", kind="probe", payload={"kind": "probe", "value": 1}),
        )
        spec = JobSpec(name="dead-letter", units=units)
        with JobStore(tmp_path / "runs.sqlite") as store:
            job_id = store.submit(spec).id
            executor = LocalExecutor(retries=1, backoff_s=0.0)
            summary = store.run_job(job_id, executor, max_attempts=2)
            assert summary.dead == 1
            assert summary.completed == 1
            assert summary.state == JOB_FAILED
            unit = store.units(job_id, state=UNIT_DEAD)[0]
            assert unit.seq == 0
            assert unit.attempts >= 2
            # Dead units are not claimable: a resume executes nothing.
            resumed = store.run_job(job_id, LocalExecutor())
            assert resumed.executed == 0
            assert _markers(scratch, 0) == 2

    def test_permanent_failure_dead_letters_without_retries(self, tmp_path):
        # An unregistered kind raises UnitSpecError (permanent): one
        # attempt, straight to the dead letter, retry budget untouched.
        unit = WorkUnit(key="bogus", kind="no_such_kind", payload={"kind": "no_such_kind"})
        spec = JobSpec(name="bogus", units=(unit,))
        with JobStore(tmp_path / "runs.sqlite") as store:
            job_id = store.submit(spec).id
            executor = LocalExecutor(retries=3, backoff_s=0.0)
            summary = store.run_job(job_id, executor, max_attempts=10)
            assert summary.dead == 1
            dead = store.units(job_id, state=UNIT_DEAD)[0]
            assert dead.attempts == 1
            assert "unknown work-unit kind" in dead.error

    def test_without_max_attempts_failures_stay_claimable(self, tmp_path):
        # The pre-dead-letter contract is the default: failed units retry
        # forever across resumes.
        unit = WorkUnit(
            key="boom", kind="probe", payload={"kind": "probe", "boom": "always"}
        )
        spec = JobSpec(name="boom", units=(unit,))
        with JobStore(tmp_path / "runs.sqlite") as store:
            job_id = store.submit(spec).id
            store.run_job(job_id, LocalExecutor())
            store.run_job(job_id, LocalExecutor())
            failed = store.units(job_id)[0]
            assert failed.state == "failed"
            assert failed.attempts == 2
            assert not store.units(job_id, state=UNIT_DEAD)


class TestSeededPlansAreDeterministic:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_same_seed_same_firing_schedule(self, seed):
        def schedule(s):
            plan = FaultPlan([Fault(kind="error", probability=0.4, times=50)], seed=s)
            wrapped = FaultyExecutor(LocalExecutor(retries=5, backoff_s=0.0), plan)
            outcomes = wrapped.run_units([_probe(i) for i in range(12)])
            return [(o.status, o.attempts) for o in outcomes]

        # Whatever a seed makes the run do -- including exhausting a
        # unit's retries -- it must make it do identically every time.
        assert schedule(seed) == schedule(seed)
