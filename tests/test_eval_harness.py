"""Integration tests for the evaluation harness (tables and figures).

These run the full pipeline (functional app execution -> profile -> timing
model -> table/figure rows) at a small dataset scale and assert the
qualitative claims of the paper: who wins, which design points are ranked
where, and which knobs matter.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    APP_DATASETS,
    APP_ORDER,
    collect_profiles,
    figure4_ordering_trace,
    figure5a_bandwidth_sensitivity,
    figure5b_area_sensitivity,
    figure5c_compression_sensitivity,
    figure7_stall_breakdown,
    format_mapping,
    format_series,
    format_table,
    paper_vs_measured,
    table4_spmu_throughput,
    table5_scanner_area,
    table8_area,
    table9_spmu_sensitivity,
    table10_ordering_modes,
    table11_shuffle_sensitivity,
    table12_performance,
    table13_asic_comparison,
)

#: Small-but-representative subset used for the heavier harness tests.
SUBSET_APPS = ["spmv-csr", "spmv-coo", "spmv-csc", "bfs", "pagerank-edge", "spadd"]


@pytest.fixture(scope="module")
def profile_set():
    return collect_profiles(apps=SUBSET_APPS, scale=1 / 256)


class TestExperimentInfrastructure:
    def test_every_app_has_three_datasets(self):
        for app in APP_ORDER:
            assert len(APP_DATASETS[app]) == 3

    def test_collect_profiles_covers_requested_apps(self, profile_set):
        assert set(profile_set.apps()) == set(SUBSET_APPS)
        for app in SUBSET_APPS:
            assert len(profile_set.for_app(app)) == 3

    def test_profiles_are_nontrivial(self, profile_set):
        for (_, _), profile in profile_set.profiles.items():
            assert profile.compute_iterations > 0
            assert profile.vector_slots > 0


class TestTable4:
    def test_throughput_improves_with_depth_and_priorities(self):
        rows = table4_spmu_throughput(
            depths=(8, 16), crossbars=(16,), priorities=(1, 3), vectors=80
        )
        by_depth = {row["depth"]: row for row in rows}
        assert by_depth[16]["measured_3pri_pct"] > by_depth[8]["measured_1pri_pct"]
        for row in rows:
            # Priorities mainly combat head-of-line blocking; allow a small
            # measurement-noise band on the short microbenchmark trace.
            assert row["measured_3pri_pct"] >= row["measured_1pri_pct"] - 6.0

    def test_paper_reference_attached(self):
        rows = table4_spmu_throughput(depths=(16,), crossbars=(16,), priorities=(3,), vectors=40)
        assert rows[0]["paper_3pri_pct"] == 79.9
        assert rows[0]["scheduler_area_um2"] == 51359


class TestTables5And8:
    def test_table5_matches_paper_exactly(self):
        rows = table5_scanner_area()
        assert rows[1]["width"] == 256
        assert rows[1]["out16_um2"] == 19898

    def test_table8_overheads(self):
        result = table8_area()
        assert result["area_overhead"] == pytest.approx(result["paper_area_overhead"], abs=0.03)
        assert result["power_overhead"] == pytest.approx(result["paper_power_overhead"], abs=0.03)


class TestTables9Through11:
    def test_table9_ranking(self, profile_set):
        result = table9_spmu_sensitivity(profile_set)
        gmean = result["gmean"]
        assert gmean["ideal"] <= gmean["capstan-hash"] <= gmean["arbitrated-hash"]
        assert gmean["capstan-hash"] <= gmean["capstan-linear"]
        assert gmean["arbitrated-linear"] >= gmean["arbitrated-hash"]

    def test_table10_ordering_ranking(self, profile_set):
        result = table10_ordering_modes(profile_set)
        gmean = result["gmean"]
        assert gmean["unordered"] == pytest.approx(1.0)
        assert gmean["address-ordered"] >= 1.0
        assert gmean["fully-ordered"] >= gmean["address-ordered"]

    def test_table11_no_network_is_slowest(self, profile_set):
        result = table11_shuffle_sensitivity(profile_set)
        for app, modes in result["per_app"].items():
            assert modes["none"] >= modes["mrg-1"] - 1e-6
            assert modes["mrg-16"] <= modes["none"] + 1e-6


class TestTables12And13:
    def test_table12_platform_ranking(self, profile_set):
        result = table12_performance(profile_set)
        gmean = result["gmean"]
        assert gmean["capstan-ideal"] <= gmean["capstan-hbm2e"] <= gmean["capstan-hbm2"]
        assert gmean["capstan-hbm2"] <= gmean["capstan-ddr4"]
        assert gmean["cpu-xeon"] > gmean["capstan-hbm2e"]
        assert gmean["gpu-v100"] > gmean["capstan-hbm2e"]
        assert gmean["plasticine-hbm2e"] > gmean["capstan-hbm2e"]

    def test_table12_cpu_slower_than_gpu(self, profile_set):
        result = table12_performance(profile_set)
        assert result["gmean"]["cpu-xeon"] > result["gmean"]["gpu-v100"]

    def test_table13_matraptor_capstan_wins_big(self):
        profiles = collect_profiles(
            apps=["spmv-csc", "conv", "pagerank-edge", "bfs", "sssp", "spmspm"], scale=1 / 256
        )
        result = table13_asic_comparison(profiles)
        assert result["speedup"]["matraptor"] > 2.0
        assert result["speedup"]["eie"] < result["speedup"]["matraptor"]


class TestFigures:
    def test_figure4_mode_ranking(self):
        result = figure4_ordering_trace(vectors=60)
        measured = result["measured_utilization_pct"]
        assert measured["unordered"] > measured["arbitrated"]
        assert measured["unordered"] > measured["fully-ordered"]
        assert measured["address-ordered"] > measured["fully-ordered"]

    def test_figure5a_memory_bound_apps_scale(self, profile_set):
        series = figure5a_bandwidth_sensitivity(profile_set, bandwidths_gbps=(20, 200, 2000))
        for app in ("spmv-csr", "pagerank-edge"):
            speedups = series[app]
            assert speedups[-1] > speedups[0]
            assert all(b >= a - 1e-6 for a, b in zip(speedups, speedups[1:]))

    def test_figure5b_parallelism_scales(self, profile_set):
        series = figure5b_area_sensitivity(profile_set, parallelism_points=(2, 8, 32))
        for app in SUBSET_APPS:
            assert series[app][-1] > series[app][0]

    def test_figure5c_compression_helps_pointer_heavy_apps(self, profile_set):
        series = figure5c_compression_sensitivity(profile_set, bandwidths_gbps=(20, 68))
        assert max(series["spmv-coo"]) >= max(series["spmv-csr"]) - 0.05
        for app in SUBSET_APPS:
            assert all(s >= 0.99 for s in series[app])

    def test_figure7_fractions_sum_to_one(self, profile_set):
        breakdown = figure7_stall_breakdown(profile_set)
        for app, fractions in breakdown.items():
            assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)
            assert fractions["active"] > 0

    def test_figure7_bfs_network_heavy(self, profile_set):
        breakdown = figure7_stall_breakdown(profile_set)
        assert breakdown["bfs"]["network"] > breakdown["spmv-csr"]["network"]


class TestReportFormatting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}], ["a", "b"], title="T")
        assert "T" in text and "2.50" in text

    def test_format_mapping(self):
        text = format_mapping({"x": 1.234}, title="M")
        assert "1.23" in text

    def test_paper_vs_measured(self):
        text = paper_vs_measured({"x": 1.0}, {"x": 2.0, "y": 3.0})
        assert "x" in text and "y" in text

    def test_format_series(self):
        text = format_series({"bw": [1, 2], "app": [1.0, 2.0]}, x_key="bw")
        assert "app" in text
