"""Tests for DCSR/DCSC, BCSR, banded, bit-vector, and bit-tree formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (
    BandedMatrix,
    BCSRMatrix,
    BitTree,
    BitVector,
    DCSCMatrix,
    DCSRMatrix,
    align_trees,
)


class TestDCSR:
    def test_drops_empty_rows(self, small_dense):
        matrix = DCSRMatrix.from_dense(small_dense)
        assert matrix.stored_rows == 3
        assert matrix.row_ids.tolist() == [0, 2, 3]

    def test_roundtrip(self, small_dense):
        assert np.array_equal(DCSRMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_row_slice(self, small_dense):
        matrix = DCSRMatrix.from_dense(small_dense)
        row_id, cols, values = matrix.row_slice(1)
        assert row_id == 2
        assert cols.tolist() == [0, 1, 3]
        assert values.tolist() == [3.0, 4.0, 5.0]

    def test_storage_smaller_than_csr_for_hypersparse(self):
        dense = np.zeros((100, 100))
        dense[3, 7] = 1.0
        dcsr = DCSRMatrix.from_dense(dense)
        from repro.formats import CSRMatrix

        assert dcsr.storage_bytes() < CSRMatrix.from_dense(dense).storage_bytes()

    def test_out_of_range_slice(self, small_dense):
        with pytest.raises(FormatError):
            DCSRMatrix.from_dense(small_dense).row_slice(99)


class TestDCSC:
    def test_roundtrip(self, small_dense):
        assert np.array_equal(DCSCMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_stored_cols(self, small_dense):
        matrix = DCSCMatrix.from_dense(small_dense)
        assert matrix.stored_cols == 4  # every column of the fixture is non-empty

    def test_iter_nonzeros_matches(self, small_dense):
        matrix = DCSCMatrix.from_dense(small_dense)
        triples = set(matrix.iter_nonzeros())
        expected = {(r, c, small_dense[r, c]) for r, c in zip(*np.nonzero(small_dense))}
        assert triples == expected


class TestBCSR:
    def test_roundtrip(self):
        dense = np.zeros((8, 8))
        dense[0:2, 0:2] = 1.0
        dense[4, 6] = 3.0
        matrix = BCSRMatrix.from_dense(dense, block_size=2)
        assert np.array_equal(matrix.to_dense(), dense)

    def test_block_count_and_fill(self):
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0
        matrix = BCSRMatrix.from_dense(dense, block_size=2)
        assert matrix.block_count == 1
        assert matrix.stored_elements == 4
        assert matrix.block_fill_ratio() == pytest.approx(0.25)

    def test_dimension_must_divide(self):
        with pytest.raises(FormatError):
            BCSRMatrix.from_dense(np.zeros((5, 4)), block_size=2)

    def test_nnz_excludes_padding_zeros(self):
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0
        dense[1, 1] = 2.0
        matrix = BCSRMatrix.from_dense(dense, block_size=2)
        assert matrix.nnz == 2


class TestBanded:
    def test_roundtrip_tridiagonal(self):
        dense = np.diag(np.arange(1.0, 6.0)) + np.diag(np.ones(4), 1)
        matrix = BandedMatrix.from_dense(dense, offsets=[0, 1])
        assert np.array_equal(matrix.to_dense(), dense)

    def test_offsets_sorted(self):
        dense = np.eye(4)
        matrix = BandedMatrix.from_dense(dense, offsets=[0])
        assert matrix.offsets == [0]

    def test_missing_diagonal_raises(self):
        matrix = BandedMatrix.from_dense(np.eye(3), offsets=[0])
        with pytest.raises(FormatError):
            matrix.diagonal(1)

    def test_negative_offset(self):
        dense = np.diag(np.ones(3), -1)
        matrix = BandedMatrix.from_dense(dense, offsets=[-1])
        assert np.array_equal(matrix.to_dense(), dense)


class TestBitVector:
    def test_from_dense(self):
        bv = BitVector.from_dense(np.array([0.0, 1.0, 0.0, 2.0]))
        assert bv.nnz == 2
        assert bv.indices.tolist() == [1, 3]
        assert bv.values.tolist() == [1.0, 2.0]

    def test_mask_and_roundtrip(self):
        dense = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        bv = BitVector.from_dense(dense)
        assert bv.mask.tolist() == [False, True, False, True, False]
        assert np.array_equal(bv.to_dense(), dense)

    def test_intersect_union_masks(self):
        a = BitVector(6, [0, 2, 4])
        b = BitVector(6, [2, 3, 4])
        assert np.nonzero(a.intersect_mask(b))[0].tolist() == [2, 4]
        assert np.nonzero(a.union_mask(b))[0].tolist() == [0, 2, 3, 4]

    def test_compressed_position(self):
        bv = BitVector(8, [1, 4, 6])
        assert bv.compressed_position(4) == 1
        with pytest.raises(FormatError):
            bv.compressed_position(2)

    def test_packed_words(self):
        bv = BitVector(40, [0, 33])
        words = bv.packed_words(32)
        assert words[0] == 1
        assert words[1] == 2

    def test_duplicate_indices_rejected(self):
        with pytest.raises(FormatError):
            BitVector(4, [1, 1])

    def test_length_mismatch_rejected(self):
        a = BitVector(4, [0])
        b = BitVector(5, [0])
        with pytest.raises(FormatError):
            a.intersect_mask(b)

    def test_storage_bits(self):
        bv = BitVector(64, [0, 1, 2])
        assert bv.storage_bits() == 64 + 3 * 32

    @given(st.lists(st.integers(min_value=0, max_value=127), unique=True, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, indices):
        bv = BitVector(128, indices)
        assert sorted(indices) == bv.indices.tolist()
        assert np.count_nonzero(bv.to_dense()) == len(indices)


class TestBitTree:
    def test_from_dense_roundtrip(self):
        dense = np.zeros(2048)
        dense[[3, 600, 1500]] = [1.0, 2.0, 3.0]
        tree = BitTree.from_dense(dense)
        assert np.array_equal(tree.to_dense(), dense)
        assert tree.occupied_tiles == 3

    def test_top_level(self):
        dense = np.zeros(2048)
        dense[[3, 600]] = 1.0
        tree = BitTree.from_dense(dense)
        assert tree.top_level().indices.tolist() == [0, 1]

    def test_storage_beats_bitvector_when_hypersparse(self):
        dense = np.zeros(262_144)
        dense[5] = 1.0
        tree = BitTree.from_dense(dense)
        bv = BitVector.from_dense(dense)
        assert tree.storage_bits() < bv.storage_bits()

    def test_set_rejects_zero(self):
        tree = BitTree(1024)
        with pytest.raises(FormatError):
            tree.set(0, 0.0)

    def test_align_union_and_intersect(self):
        a = BitTree.from_dense(np.concatenate([np.ones(10), np.zeros(1014)]))
        b_dense = np.zeros(1024)
        b_dense[600] = 1.0
        b = BitTree.from_dense(b_dense)
        union = align_trees(a, b, "union")
        intersect = align_trees(a, b, "intersect")
        assert [tile_id for tile_id, _, _ in union] == [0, 1]
        assert intersect == []

    def test_align_rejects_mismatched(self):
        with pytest.raises(FormatError):
            align_trees(BitTree(1024), BitTree(2048))
