"""Tests for the workload generators and tiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.formats import to_csr
from repro.workloads import (
    RESNET_LAYERS,
    TABLE6_DATASETS,
    balanced_partition,
    banded_fem_matrix,
    circuit_matrix,
    clustered_sparse_vector,
    cross_tile_fraction,
    dataset_names,
    generate_conv_layer,
    graph_datasets,
    layer_names,
    load_dataset,
    make_diagonally_dominant,
    partition_graph_by_edges,
    partition_rows_round_robin,
    power_law_graph,
    reference_convolution,
    road_network_graph,
    round_robin_partition,
    sparse_vector,
    uniform_random_matrix,
)


class TestSyntheticGenerators:
    def test_uniform_matrix_nnz(self):
        matrix = uniform_random_matrix(100, 100, 500, seed=1)
        assert matrix.shape == (100, 100)
        assert abs(matrix.nnz - 500) <= 5

    def test_banded_clusters_near_diagonal(self):
        matrix = banded_fem_matrix(200, 2000, seed=1)
        rows, cols, _ = matrix.to_coo_arrays()
        assert np.median(np.abs(rows - cols)) < 30

    def test_banded_has_full_diagonal(self):
        matrix = banded_fem_matrix(50, 200, seed=2)
        dense = matrix.to_dense()
        assert np.all(np.diagonal(dense) != 0)

    def test_circuit_has_hub_rows(self):
        matrix = circuit_matrix(500, 3000, dense_nodes=4, seed=1)
        row_lengths = to_csr(matrix).row_lengths()
        assert row_lengths.max() > 5 * np.median(row_lengths)

    def test_power_law_degree_skew(self):
        graph = power_law_graph(1000, 8000, seed=1)
        degrees = np.bincount(graph.rows, minlength=1000)
        assert degrees.max() > 10 * max(1.0, np.median(degrees))

    def test_power_law_no_self_loops(self):
        graph = power_law_graph(200, 1000, seed=2)
        assert not np.any(graph.rows == graph.cols)

    def test_road_network_bounded_degree(self):
        graph = road_network_graph(400, 1500, seed=1)
        degrees = np.bincount(graph.rows, minlength=400)
        assert degrees.max() <= 10

    def test_sparse_vector_density(self):
        vector = sparse_vector(1000, 0.3, seed=1)
        assert abs(np.count_nonzero(vector) - 300) <= 2

    def test_clustered_vector_clusters(self):
        vector = clustered_sparse_vector(10_000, 0.05, cluster_size=64, seed=1)
        nonzero = np.nonzero(vector)[0]
        gaps = np.diff(nonzero)
        assert np.mean(gaps == 1) > 0.5

    def test_diagonally_dominant(self):
        matrix = make_diagonally_dominant(uniform_random_matrix(50, 50, 300, seed=3))
        dense = matrix.to_dense()
        off_diag = np.abs(dense).sum(axis=1) - np.abs(np.diagonal(dense))
        assert np.all(np.abs(np.diagonal(dense)) > off_diag - 1e-9)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            uniform_random_matrix(0, 10, 5)
        with pytest.raises(WorkloadError):
            sparse_vector(10, 2.0)


class TestDatasetRegistry:
    def test_all_table6_datasets_registered(self):
        for name in (
            "ckt11752_dc_1",
            "Trefethen_20000",
            "bcsstk30",
            "usroads-48",
            "web-Stanford",
            "flickr",
            "spaceStation_4",
            "qc324",
            "mbeacxc",
        ):
            assert name in TABLE6_DATASETS

    def test_published_density_matches_table6(self):
        spec = TABLE6_DATASETS["bcsstk30"]
        assert spec.density_percent == pytest.approx(0.244, abs=0.01)

    def test_load_dataset_scales_dimension(self):
        dataset = load_dataset("flickr", scale=1 / 64)
        assert dataset.matrix.shape[0] == pytest.approx(820_878 / 64, rel=0.01)

    def test_load_dataset_preserves_degree(self):
        dataset = load_dataset("web-Stanford", scale=1 / 64)
        spec = dataset.spec
        published_degree = spec.nnz / spec.rows
        generated_degree = dataset.matrix.nnz / dataset.matrix.shape[0]
        assert generated_degree == pytest.approx(published_degree, rel=0.35)

    def test_load_dataset_cached(self):
        a = load_dataset("qc324")
        b = load_dataset("qc324")
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(WorkloadError):
            load_dataset("nonexistent")

    def test_dataset_names_filter(self):
        assert "usroads-48" in dataset_names("PR")
        assert "qc324" not in dataset_names("PR")

    def test_group_helpers(self):
        assert len(graph_datasets(scale=1 / 256)) == 3

    def test_scaled_description_mentions_substitution(self):
        dataset = load_dataset("qc324")
        assert "paper" in dataset.scaled_description
        assert "generated" in dataset.scaled_description


class TestResNetLayers:
    def test_layers_registered(self):
        assert set(layer_names()) == {"resnet50-1", "resnet50-2", "resnet50-29"}

    def test_density_matches_spec(self):
        workload = generate_conv_layer("resnet50-2", scale=0.25)
        spec = RESNET_LAYERS["resnet50-2"]
        assert workload.activation_density == pytest.approx(spec.activation_density, abs=0.06)
        assert workload.weight_density == pytest.approx(spec.weight_density, abs=0.08)

    def test_shapes(self):
        workload = generate_conv_layer("resnet50-1", scale=0.25)
        assert workload.activations.shape[1:] == (56, 56)
        assert workload.weights.shape[1:3] == (1, 1)

    def test_sparse_macs_less_than_dense(self):
        workload = generate_conv_layer("resnet50-2", scale=0.125)
        assert workload.sparse_macs() < workload.macs()

    def test_reference_convolution_shape(self):
        workload = generate_conv_layer("resnet50-1", scale=0.125)
        assert reference_convolution(workload).shape == workload.output_shape

    def test_unknown_layer(self):
        with pytest.raises(WorkloadError):
            generate_conv_layer("resnet50-99")


class TestTiling:
    def test_round_robin_assignment(self):
        partition = round_robin_partition(10, 3)
        assert partition.assignments.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_balanced_partition_beats_round_robin_on_skew(self):
        weights = [100, 1, 1, 1, 1, 1, 1, 99]
        balanced = balanced_partition(weights, 2)
        naive = round_robin_partition(len(weights), 2, weights)
        assert balanced.imbalance <= naive.imbalance

    def test_graph_partition_by_edges(self, tiny_graph):
        csr = to_csr(tiny_graph.matrix)
        partition = partition_graph_by_edges(csr, 8)
        assert partition.imbalance < 1.5

    def test_row_round_robin(self, tiny_matrix_dataset):
        csr = to_csr(tiny_matrix_dataset.matrix)
        partition = partition_rows_round_robin(csr, 16)
        assert partition.tiles == 16
        assert partition.assignments.size == csr.shape[0]

    def test_cross_tile_fraction_range(self, tiny_graph):
        csr = to_csr(tiny_graph.matrix)
        partition = partition_graph_by_edges(csr, 8)
        fraction = cross_tile_fraction(csr, partition)
        assert 0.0 <= fraction <= 1.0

    def test_invalid_tiles(self):
        with pytest.raises(WorkloadError):
            round_robin_partition(5, 0)
