"""Vectorized-vs-reference backend equivalence over the registry grid.

The vectorized profiling kernels must be *indistinguishable* from the
per-element reference loops: every registered (application, dataset) cell
is executed under both backends and the resulting profiles are compared
field for field (including floats -- every counter is derived from integer
event counts, so no tolerance is needed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import bfs, sparse_add, spmv_csr, sssp
from repro.errors import WorkloadError
from repro.formats import to_csr
from repro.runtime import registry
from repro.runtime.cache import profile_to_dict
from repro.runtime.registry import RunContext
from repro.workloads import load_dataset

#: Small-scale context shared by every equivalence cell (SpMSpM ignores the
#: dataset scale and always runs its small Table 6 matrices at full size).
SCALE = 1.0 / 256.0
CONV_SCALE = 1.0 / 16.0

GRID = [
    (spec.name, dataset)
    for spec in registry.registered_specs()
    for dataset in spec.datasets
]


def _context(backend: str) -> RunContext:
    return RunContext(scale=SCALE, conv_scale=CONV_SCALE, backend=backend)


@pytest.mark.parametrize("app,dataset", GRID, ids=[f"{a}-{d}" for a, d in GRID])
def test_backends_produce_identical_profiles(app, dataset):
    spec = registry.get_spec(app)
    vectorized = profile_to_dict(spec.execute(dataset, _context("vectorized")))
    reference = profile_to_dict(spec.execute(dataset, _context("reference")))
    mismatched = {
        key: (vectorized[key], reference[key])
        for key in vectorized
        if vectorized[key] != reference[key]
    }
    assert not mismatched, f"{app}/{dataset} backend mismatch: {mismatched}"


def test_unknown_backend_rejected():
    matrix = to_csr(load_dataset("Trefethen_20000", scale=1 / 256).matrix)
    with pytest.raises(WorkloadError):
        spmv_csr(matrix, np.ones(matrix.shape[1]), backend="loops")


def test_backend_functional_outputs_agree():
    """Outputs agree numerically (bit-identical is not required)."""
    generated = load_dataset("Trefethen_20000", scale=1 / 128)
    csr = to_csr(generated.matrix)
    vector = np.random.default_rng(5).random(csr.shape[1])
    vec = spmv_csr(csr, vector, backend="vectorized")
    ref = spmv_csr(csr, vector, backend="reference")
    assert np.allclose(vec.output, ref.output)


def test_traversal_outputs_identical():
    """BFS parents and SSSP distances match exactly across backends."""
    graph = load_dataset("web-Stanford", scale=1 / 256).matrix
    bfs_vec = bfs(graph, source=0, backend="vectorized")
    bfs_ref = bfs(graph, source=0, backend="reference")
    assert np.array_equal(bfs_vec.output, bfs_ref.output)
    sssp_vec = sssp(graph, source=0, backend="vectorized")
    sssp_ref = sssp(graph, source=0, backend="reference")
    assert np.array_equal(sssp_vec.output, sssp_ref.output)


def test_spadd_output_bit_identical():
    """M+M accumulates each entry in the same order under both backends."""
    a = to_csr(load_dataset("ckt11752_dc_1", scale=1 / 128).matrix)
    b = to_csr(load_dataset("ckt11752_dc_1", scale=1 / 128, seed=29).matrix)
    vec = sparse_add(a, b, backend="vectorized")
    ref = sparse_add(a, b, backend="reference")
    assert np.array_equal(vec.output.col_indices, ref.output.col_indices)
    assert np.array_equal(vec.output.values, ref.output.values)
    assert np.array_equal(vec.output.row_pointers, ref.output.row_pointers)


def test_scanner_override_applies_to_both_backends():
    """The Figure 6 scanner sweep re-profiles identically per backend."""
    from repro.config import ScannerConfig

    swept = ScannerConfig(bit_width=64, output_vectorization=4)
    spec = registry.get_spec("spadd")
    vec = spec.execute(
        "Trefethen_20000",
        RunContext(scale=SCALE, scanner=swept, backend="vectorized"),
    )
    ref = spec.execute(
        "Trefethen_20000",
        RunContext(scale=SCALE, scanner=swept, backend="reference"),
    )
    assert profile_to_dict(vec) == profile_to_dict(ref)
    plain = spec.execute("Trefethen_20000", RunContext(scale=SCALE))
    assert vec.scan_cycles != plain.scan_cycles
