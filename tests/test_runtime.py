"""Tests for the experiment runtime: registry, profile cache, runner, sweep."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps.profile import WorkloadProfile
from repro.core.ordering import OrderingMode
from repro.config import MemoryTechnology, ScannerConfig
from repro.errors import ConfigurationError
from repro.eval.experiments import APP_DATASETS, APP_ORDER
from repro.runtime import registry as registry_module
from repro.runtime.cache import ProfileCache, profile_from_dict, profile_to_dict
from repro.runtime import runner as runner_module
from repro.runtime.executors import pool as pool_module
from repro.runtime.registry import AppSpec, RegistryError, RunContext, register
from repro.runtime.runner import ExperimentRunner, default_workers, pool_is_profitable
from repro.runtime.sweep import sweep


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the machine has cores so worker pools are not elided."""
    monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 4)

#: Expected Table 12 application order.
EXPECTED_APPS = (
    "spmv-csr",
    "spmv-coo",
    "spmv-csc",
    "conv",
    "pagerank-pull",
    "pagerank-edge",
    "bfs",
    "sssp",
    "spadd",
    "spmspm",
    "bicgstab",
)

#: Small scale for the functional runs these tests do perform.
TINY = 1.0 / 512.0


class TestRegistry:
    def test_all_eleven_apps_registered_in_order(self):
        assert registry_module.app_order() == EXPECTED_APPS

    def test_registry_matches_eval_views(self):
        assert APP_ORDER == registry_module.app_order()
        assert APP_DATASETS == registry_module.app_datasets()
        for spec in registry_module.registered_specs():
            assert len(spec.datasets) == 3

    def test_unknown_app_raises(self):
        with pytest.raises(RegistryError):
            registry_module.get_spec("not-an-app")
        # RegistryError is a ValueError, preserving the legacy contract.
        with pytest.raises(ValueError):
            registry_module.execute("not-an-app", "ckt11752_dc_1")

    def test_conflicting_registration_raises_identical_reload_allowed(self):
        spec = registry_module.get_spec("bfs")
        # A module reload produces a new-but-identical spec: allowed.
        clone = dataclasses.replace(spec)
        try:
            assert register(clone) is clone
        finally:
            register(spec)
        # Same name with a different shape: rejected.
        conflicting = dataclasses.replace(spec, datasets=("flickr",))
        with pytest.raises(RegistryError):
            register(conflicting)
        assert registry_module.get_spec("bfs").datasets == spec.datasets

    def test_execute_round_trips_through_spec(self):
        context = RunContext(scale=TINY)
        profile = registry_module.execute("spmv-csr", "ckt11752_dc_1", context)
        assert profile.app == "spmv-csr"
        assert profile.dataset == "ckt11752_dc_1"
        assert profile.compute_iterations > 0

    def test_scanner_override_changes_scan_cost_and_restores_default(self):
        from repro.apps import scan_model

        default_ctor = scan_model.ScannerConfig
        base = registry_module.execute("spadd", "ckt11752_dc_1", RunContext(scale=TINY))
        narrow = registry_module.execute(
            "spadd",
            "ckt11752_dc_1",
            RunContext(scale=TINY, scanner=ScannerConfig(bit_width=1, output_vectorization=1)),
        )
        assert scan_model.ScannerConfig is default_ctor
        assert narrow.scan_cycles > base.scan_cycles


class TestProfileCache:
    def _profile(self, **overrides) -> WorkloadProfile:
        values = dict(
            app="spmv-csr",
            dataset="ckt11752_dc_1",
            compute_iterations=100,
            vector_slots=10,
            tile_work=[1.0, 2.5],
            extra={"touched_nnz": 42.0},
        )
        values.update(overrides)
        return WorkloadProfile(**values)

    def test_round_trip_preserves_every_field(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        profile = self._profile()
        key = cache.key("spmv-csr", "ckt11752_dc_1", RunContext(scale=TINY))
        cache.store(key, profile)
        loaded = cache.load(key)
        assert loaded is not None
        assert profile_to_dict(loaded) == profile_to_dict(profile)
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        assert cache.load(cache.key("bfs", "flickr", RunContext())) is None
        assert cache.misses == 1

    def test_key_changes_with_scale_and_context(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        base = cache.key("bfs", "flickr", RunContext(scale=1 / 64))
        assert cache.key("bfs", "flickr", RunContext(scale=1 / 128)) != base
        assert cache.key("bfs", "flickr", RunContext(scale=1 / 64, pagerank_iterations=3)) != base
        assert cache.key("bfs", "usroads-48", RunContext(scale=1 / 64)) != base
        assert cache.key("sssp", "flickr", RunContext(scale=1 / 64)) != base
        assert cache.key("bfs", "flickr", RunContext(scale=1 / 64)) == base

    def test_key_fingerprints_only_declared_context_fields(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        base = cache.key("bfs", "flickr", RunContext(scale=1 / 64), context_fields=("scale",))
        same = cache.key(
            "bfs",
            "flickr",
            RunContext(scale=1 / 64, pagerank_iterations=5, conv_scale=0.5),
            context_fields=("scale",),
        )
        assert same == base
        assert registry_module.get_spec("bfs").context_fields == ("scale",)
        # SpMSpM hardcodes full scale, so its profiles are scale-independent.
        assert registry_module.get_spec("spmspm").context_fields == ()
        assert cache.key(
            "spmspm", "qc324", RunContext(scale=1 / 64), context_fields=()
        ) == cache.key("spmspm", "qc324", RunContext(scale=1 / 512), context_fields=())

    def test_key_includes_full_scanner_config(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        wide = cache.key(
            "conv", "resnet50-1", RunContext(scanner=ScannerConfig(data_width=16))
        )
        narrow = cache.key(
            "conv", "resnet50-1", RunContext(scanner=ScannerConfig(data_width=1))
        )
        assert wide != narrow

    def test_key_changes_with_code_fingerprint(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        context = RunContext(scale=1 / 64)
        old_code = cache.key("bfs", "flickr", context, fingerprint="aaa")
        new_code = cache.key("bfs", "flickr", context, fingerprint="bbb")
        assert old_code != new_code
        cache.store(old_code, self._profile(app="bfs", dataset="flickr"))
        assert cache.load(new_code) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        key = cache.key("bfs", "flickr", RunContext())
        cache.store(key, self._profile(app="bfs", dataset="flickr"))
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None

    def test_unknown_fields_ignored_on_load(self):
        data = profile_to_dict(self._profile())
        data["from_the_future"] = 1
        restored = profile_from_dict(data)
        assert restored.app == "spmv-csr"

    def test_clear(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        cache.store(cache.key("bfs", "flickr", RunContext()), self._profile())
        (tmp_path / "leftover.tmp").write_text("partial write")
        assert len(cache) == 1
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.tmp"))

    def test_prune_removes_stale_code_entries_and_temps(self, tmp_path):
        import json

        cache = ProfileCache(root=tmp_path)
        fresh_key = cache.key("bfs", "flickr", RunContext())
        cache.store(fresh_key, self._profile(app="bfs", dataset="flickr"))
        stale_path = tmp_path / "stale.json"
        payload = json.loads((tmp_path / f"{fresh_key}.json").read_text())
        payload["code"] = "an-older-fingerprint"
        stale_path.write_text(json.dumps(payload))
        (tmp_path / "leftover.tmp").write_text("partial write")
        assert cache.prune() == 2
        assert cache.load(fresh_key) is not None
        assert not stale_path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestExperimentRunner:
    APPS = ["spmv-csr", "bfs"]

    def test_serial_and_parallel_results_equivalent(self, multicore):
        context = RunContext(scale=TINY)
        serial = ExperimentRunner(context=context, workers=1, cache=False).run(apps=self.APPS)
        parallel = ExperimentRunner(context=context, workers=2, cache=False).run(apps=self.APPS)
        assert [(r.app, r.dataset, r.status) for r in serial.results] == [
            (r.app, r.dataset, r.status) for r in parallel.results
        ]
        for left, right in zip(serial.results, parallel.results):
            assert profile_to_dict(left.profile) == profile_to_dict(right.profile)

    def test_warm_cache_run_performs_zero_functional_executions(self, tmp_path, monkeypatch):
        context = RunContext(scale=TINY)
        cache = ProfileCache(root=tmp_path)
        cold = ExperimentRunner(context=context, workers=1, cache=cache).run(apps=self.APPS)
        assert cold.executed_count() == len(cold.results)

        def forbidden(*args, **kwargs):
            raise AssertionError("functional execution on a warm cache")

        monkeypatch.setattr(registry_module, "execute", forbidden)
        warm = ExperimentRunner(context=context, workers=1, cache=cache).run(apps=self.APPS)
        assert warm.cached_count() == len(warm.results)
        assert warm.executed_count() == 0
        for left, right in zip(cold.results, warm.results):
            assert profile_to_dict(left.profile) == profile_to_dict(right.profile)

    def test_cache_invalidated_on_scale_change(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        first = ExperimentRunner(
            context=RunContext(scale=TINY), workers=1, cache=cache
        ).run(apps=["spmv-csr"])
        assert first.cached_count() == 0
        rescaled = ExperimentRunner(
            context=RunContext(scale=1 / 256), workers=1, cache=cache
        ).run(apps=["spmv-csr"])
        assert rescaled.cached_count() == 0
        assert rescaled.executed_count() == len(rescaled.results)

    def test_task_grid_is_deterministic(self):
        runner = ExperimentRunner(cache=False)
        grid = runner.tasks()
        assert grid == [
            (app, dataset) for app in EXPECTED_APPS for dataset in APP_DATASETS[app]
        ]

    def test_error_reporting_without_raise(self, multicore):
        failing = AppSpec(
            name="always-fails",
            datasets=("ckt11752_dc_1", "Trefethen_20000"),
            prepare=lambda dataset, context: {},
            run=lambda: (_ for _ in ()).throw(RuntimeError("boom")),
            order=9999,
        )
        register(failing)
        try:
            report = ExperimentRunner(cache=False, raise_on_error=False).run(
                apps=["always-fails"]
            )
            assert len(report.errors()) == 2
            assert "boom" in report.errors()[0].error
            with pytest.raises(RuntimeError):
                ExperimentRunner(cache=False, raise_on_error=True).run(apps=["always-fails"])
            # Across a process pool the worker traceback is chained on.
            with pytest.raises(RuntimeError) as excinfo:
                ExperimentRunner(cache=False, workers=2, raise_on_error=True).run(
                    apps=["always-fails"]
                )
            assert "boom" in str(excinfo.value.__cause__)
        finally:
            registry_module._REGISTRY.pop("always-fails", None)

    def test_pool_elided_on_single_core(self, monkeypatch):
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 1)

        def forbidden(*args, **kwargs):
            raise AssertionError("process pool used on a single-core machine")

        monkeypatch.setattr(pool_module, "ProcessPoolExecutor", forbidden)
        report = ExperimentRunner(
            context=RunContext(scale=TINY), workers=4, cache=False
        ).run(apps=["spmv-csr"])
        assert report.executed_count() == len(report.results)

    def test_cached_results_report_lookup_time(self, tmp_path):
        context = RunContext(scale=TINY)
        cache = ProfileCache(root=tmp_path)
        ExperimentRunner(context=context, workers=1, cache=cache).run(apps=["spmv-csr"])
        warm = ExperimentRunner(context=context, workers=1, cache=cache).run(
            apps=["spmv-csr"]
        )
        assert warm.cached_count() == len(warm.results)
        # The lookup is fast but it is real work; 0.0 would hide it.
        assert all(r.duration_s > 0.0 for r in warm.results)

    def test_default_workers_warns_once_on_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "8x")
        monkeypatch.setattr(runner_module, "_warned_bad_workers", False)
        with pytest.warns(RuntimeWarning, match="REPRO_EVAL_WORKERS"):
            assert default_workers() == 1
        # Second call falls back silently instead of spamming.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert default_workers() == 1

    def test_default_workers_parses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "6")
        assert default_workers() == 6

    def test_pool_profitability_rules(self, monkeypatch):
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 8)
        assert pool_is_profitable(4, 10)
        assert not pool_is_profitable(1, 10)  # serial requested
        assert not pool_is_profitable(4, 1)  # nothing to overlap
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 1)
        assert not pool_is_profitable(4, 10)  # no cores to use
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: None)
        assert not pool_is_profitable(4, 10)  # unknown counts as one


class TestBackendPlumbing:
    def test_backend_threaded_to_run_callable(self):
        seen = {}

        def fake_run(backend="vectorized", **kwargs):
            seen["backend"] = backend
            return WorkloadProfile(app="probe", dataset="d")

        probe = AppSpec(
            name="backend-probe",
            datasets=("d",),
            prepare=lambda dataset, context: {},
            run=fake_run,
            order=9999,
        )
        register(probe)
        try:
            registry_module.execute(
                "backend-probe", "d", RunContext(backend="reference")
            )
            assert seen["backend"] == "reference"
        finally:
            registry_module._REGISTRY.pop("backend-probe", None)

    def test_backendless_run_callable_still_works(self):
        probe = AppSpec(
            name="no-backend-probe",
            datasets=("d",),
            prepare=lambda dataset, context: {},
            run=lambda: WorkloadProfile(app="probe", dataset="d"),
            order=9999,
        )
        register(probe)
        try:
            profile = registry_module.execute("no-backend-probe", "d", RunContext())
            assert profile.app == "probe"
        finally:
            registry_module._REGISTRY.pop("no-backend-probe", None)

    def test_cache_key_distinguishes_backends(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        vectorized = cache.key("bfs", "flickr", RunContext(backend="vectorized"))
        reference = cache.key("bfs", "flickr", RunContext(backend="reference"))
        assert vectorized != reference
        # The backend is fingerprinted even for apps declaring no context
        # fields (cached profiles always record which kernels produced them).
        assert cache.key(
            "spmspm", "qc324", RunContext(backend="vectorized"), context_fields=()
        ) != cache.key(
            "spmspm", "qc324", RunContext(backend="reference"), context_fields=()
        )


class TestSweep:
    def test_cartesian_order_and_names(self):
        variants = sweep(
            allocator=("separable", "greedy"), bank_mapping=("hash", "linear")
        )
        assert list(variants) == [
            "separable-hash",
            "separable-linear",
            "greedy-hash",
            "greedy-linear",
        ]
        assert variants["greedy-linear"].allocator == "greedy"
        assert variants["greedy-linear"].bank_mapping == "linear"
        assert variants["greedy-linear"].name == "greedy-linear"

    def test_memory_and_ordering_axes(self):
        variants = sweep(
            memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
            ordering=(OrderingMode.UNORDERED,),
        )
        assert list(variants) == ["hbm2e-unordered", "ddr4-unordered"]
        assert variants["ddr4-unordered"].config.memory is MemoryTechnology.DDR4

    def test_custom_naming(self):
        variants = sweep(
            memory=(MemoryTechnology.HBM2,),
            name=lambda combo: f"capstan-{combo['memory'].value}",
        )
        assert list(variants) == ["capstan-hbm2"]

    def test_invalid_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(warp_drive=(1, 2))
        with pytest.raises(ConfigurationError):
            sweep()
        with pytest.raises(ConfigurationError):
            sweep(memory=("hbm2e",))
