"""Memory-bounded chunked execution: budget planner + per-engine identity.

Two contracts, pinned across every batch engine:

* the budget primitives (:mod:`repro._budget`) parse human-readable byte
  budgets, derive chunk plans from per-item cost models, and stream
  iterables lazily;
* every engine's chunked execution -- platform-axis costing, the SpMU
  variant grid, tile conversion, scanner position ranges, and streaming
  DSE -- is *bit-identical* to its unchunked pass for chunk size 1, a
  prime mid-size, a larger-than-grid size, and an explicit byte budget.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._budget import (
    ENV_MEMORY_BUDGET,
    ChunkPlan,
    iter_chunked,
    parse_memory_budget,
    plan_chunks,
    resolve_memory_budget,
)
from repro.apps.profile import WorkloadProfile
from repro.apps.timing import estimate_cycles_batch, iter_cycles_batches
from repro.config import SpMUConfig
from repro.core.format_conversion import FormatConverter
from repro.core.ordering import OrderingMode
from repro.core.scanner import BitVectorScanner, ScanMode
from repro.core.spmu import RequestTrace, SpMUVariant, random_request_vectors
from repro.core.spmu_array import simulate_variants
from repro.errors import ConfigurationError, SimulationError
from repro.formats.bitvector import BitVector
from repro.runtime.dse import explore
from repro.runtime.sweep import sweep

CHUNK_SIZES = (1, 7, 10_000)  # one, a prime mid-size, larger than any grid


# --------------------------------------------------------------------------- #
# Budget primitives
# --------------------------------------------------------------------------- #


class TestBudgetPrimitives:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("64K", 64 << 10),
            ("64k", 64 << 10),
            ("2KiB", 2 << 10),
            ("1.5M", int(1.5 * (1 << 20))),
            ("2G", 2 << 30),
            ("1T", 1 << 40),
            ("128B", 128),
            (4096, 4096),
            (4096.0, 4096),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("bad", ["", "64Q", "lots", "-1", "0", -5, 0, True])
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_memory_budget(bad)

    def test_parse_none_passes_through(self):
        assert parse_memory_budget(None) is None

    def test_resolve_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "1M")
        assert resolve_memory_budget(2048) == 2048
        assert resolve_memory_budget(None) == 1 << 20
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "")
        assert resolve_memory_budget(None) is None

    def test_plan_chunks_divides_budget(self):
        plan = plan_chunks(100, bytes_per_item=64, memory_budget=640)
        assert plan.chunk_items == 10
        assert plan.n_chunks == 10
        bounds = list(plan.bounds())
        assert bounds[0] == (0, 10)
        assert bounds[-1] == (90, 100)

    def test_plan_chunks_floors_at_min_items(self):
        plan = plan_chunks(5, bytes_per_item=1 << 20, memory_budget=1024)
        assert plan.chunk_items == 1
        plan = plan_chunks(5, bytes_per_item=1 << 20, memory_budget=1024, min_items=3)
        assert plan.chunk_items == 3

    def test_plan_chunks_without_budget_is_one_chunk(self):
        plan = plan_chunks(17, bytes_per_item=8, memory_budget=None)
        assert plan.n_chunks == 1
        assert list(plan.slices()) == [slice(0, 17)]

    def test_empty_plan(self):
        assert ChunkPlan(0, 4).n_chunks == 0
        assert list(ChunkPlan(0, 4).bounds()) == []

    def test_iter_chunked_is_lazy(self):
        def generator():
            yield from range(10)
            raise AssertionError("over-consumed")

        chunks = iter_chunked(generator(), 4)
        assert next(chunks) == [0, 1, 2, 3]
        assert next(chunks) == [4, 5, 6, 7]

    def test_iter_chunked_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            list(iter_chunked([1, 2], 0))


# --------------------------------------------------------------------------- #
# Engine identity: chunked == unchunked, bit for bit
# --------------------------------------------------------------------------- #


def _profiles():
    return [
        WorkloadProfile(
            app="synthetic",
            dataset=f"d{i}",
            compute_iterations=10_000 * (i + 1),
            vector_slots=500 * (i + 1),
            scan_cycles=300 * (i + 1),
            sram_random_updates=4_000 * (i + 1),
            dram_stream_read_bytes=1e5 * (i + 1),
            outer_parallelism=4 * (i + 1),
        )
        for i in range(3)
    ]


def _platforms():
    return list(sweep(lanes=(8, 16), banks=(8, 16), ideal_sram=(True,)).values())


class TestChunkedCosting:
    def test_chunk_sizes_are_bit_identical(self):
        profiles, platforms = _profiles(), _platforms()
        full = estimate_cycles_batch(profiles, platforms)
        for chunk in CHUNK_SIZES:
            part = estimate_cycles_batch(profiles, platforms, chunk_platforms=chunk)
            assert np.array_equal(full.cycles, part.cycles)
            assert full.categories.keys() == part.categories.keys()
            for name in full.categories:
                assert np.array_equal(full.categories[name], part.categories[name])

    def test_memory_budget_is_bit_identical(self):
        profiles, platforms = _profiles(), _platforms()
        full = estimate_cycles_batch(profiles, platforms)
        tight = estimate_cycles_batch(profiles, platforms, memory_budget=1024)
        assert np.array_equal(full.cycles, tight.cycles)

    def test_env_budget_is_bit_identical(self, monkeypatch):
        profiles, platforms = _profiles(), _platforms()
        full = estimate_cycles_batch(profiles, platforms)
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "4K")
        assert np.array_equal(
            full.cycles, estimate_cycles_batch(profiles, platforms).cycles
        )

    def test_accepts_platform_generator(self):
        profiles, platforms = _profiles(), _platforms()
        full = estimate_cycles_batch(profiles, platforms)
        lazy = estimate_cycles_batch(
            profiles, (p for p in platforms), chunk_platforms=2
        )
        assert np.array_equal(full.cycles, lazy.cycles)

    def test_iter_batches_align_with_grid(self):
        profiles, platforms = _profiles(), _platforms()
        full = estimate_cycles_batch(profiles, platforms)
        column = 0
        for chunk, part in iter_cycles_batches(
            profiles, platforms, chunk_platforms=3
        ):
            width = len(chunk)
            assert np.array_equal(
                full.cycles[:, column : column + width], part.cycles
            )
            column += width
        assert column == len(platforms)

    def test_empty_grids_keep_shapes(self):
        profiles, platforms = _profiles(), _platforms()
        assert estimate_cycles_batch(profiles, [], chunk_platforms=1).cycles.shape == (
            len(profiles),
            0,
        )
        assert estimate_cycles_batch([], platforms, chunk_platforms=2).cycles.shape == (
            0,
            len(platforms),
        )


class TestChunkedSpMU:
    def _grid(self):
        variants, traces = [], []
        for i, (ordering, depth) in enumerate(
            [
                (OrderingMode.UNORDERED, 4),
                (OrderingMode.ADDRESS_ORDERED, 8),
                (OrderingMode.FULLY_ORDERED, 4),
                (OrderingMode.ARBITRATED, 16),
                (OrderingMode.ADDRESS_ORDERED, 4),
            ]
        ):
            variants.append(
                SpMUVariant(ordering=ordering, config=SpMUConfig(queue_depth=depth))
            )
            traces.append(
                RequestTrace.from_vectors(
                    random_request_vectors(4, lanes=16, address_space=512, seed=i)
                )
            )
        return variants, traces

    @staticmethod
    def _stats(results):
        return [
            (
                r.cycles,
                r.requests,
                r.elided_reads,
                r.bank_busy_cycles,
                r.vectors,
                r.stall_cycles_ordering,
            )
            for r in results
        ]

    def test_chunk_sizes_are_identical(self):
        variants, traces = self._grid()
        full = self._stats(simulate_variants(variants, traces))
        for chunk in CHUNK_SIZES:
            part = simulate_variants(variants, traces, chunk_variants=chunk)
            assert self._stats(part) == full

    def test_memory_budget_is_identical(self):
        variants, traces = self._grid()
        full = self._stats(simulate_variants(variants, traces))
        assert self._stats(simulate_variants(variants, traces, memory_budget=2048)) == full

    def test_accepts_generators(self):
        variants, traces = self._grid()
        full = self._stats(simulate_variants(variants, traces))
        lazy = simulate_variants(
            (v for v in variants), (t for t in traces), chunk_variants=2
        )
        assert self._stats(lazy) == full

    def test_length_mismatch_raises(self):
        variants, traces = self._grid()
        with pytest.raises(SimulationError):
            simulate_variants(variants, traces[:-1])
        with pytest.raises(SimulationError):
            simulate_variants(variants[:-1], traces)


class TestChunkedConversion:
    def _tiles(self, rng, length=300, n_tiles=9):
        return [
            np.sort(
                rng.choice(length, size=int(rng.integers(0, length)), replace=False)
            )
            for _ in range(n_tiles)
        ]

    def test_chunk_sizes_are_identical(self):
        rng = np.random.default_rng(7)
        converter = FormatConverter(lanes=16, word_bits=32)
        tiles = self._tiles(rng)
        full_vectors, full_stats = converter.convert_many(300, tiles)
        for chunk in CHUNK_SIZES:
            vectors, stats = converter.convert_many(300, tiles, chunk_tiles=chunk)
            assert stats == full_stats
            assert len(vectors) == len(full_vectors)
            for got, want in zip(vectors, full_vectors):
                assert np.array_equal(got._packed(), want._packed())
                assert np.array_equal(got._sorted_indices(), want._sorted_indices())

    def test_budget_and_generator(self):
        rng = np.random.default_rng(8)
        converter = FormatConverter()
        tiles = self._tiles(rng)
        _, full_stats = converter.convert_many(300, tiles)
        _, stats = converter.convert_many(300, iter(tiles), memory_budget=2048)
        assert stats == full_stats

    def test_empty_tile_set(self):
        converter = FormatConverter()
        vectors, stats = converter.convert_many(64, [], chunk_tiles=1)
        assert vectors == []
        assert (stats.pointers, stats.cycles, stats.words_written) == (0, 0, 0)


class TestChunkedScan:
    @given(
        length=st.integers(min_value=0, max_value=400),
        density_a=st.floats(min_value=0.0, max_value=1.0),
        density_b=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
        chunk=st.sampled_from(CHUNK_SIZES + (97,)),
        mode=st.sampled_from((ScanMode.INTERSECT, ScanMode.UNION)),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_scan_is_bit_identical(
        self, length, density_a, density_b, seed, chunk, mode
    ):
        rng = np.random.default_rng(seed)
        vector_a = BitVector(
            length, np.sort(rng.choice(length, int(length * density_a), replace=False))
        ) if length else BitVector(0, np.zeros(0, dtype=np.int64))
        vector_b = BitVector(
            length, np.sort(rng.choice(length, int(length * density_b), replace=False))
        ) if length else BitVector(0, np.zeros(0, dtype=np.int64))
        scanner = BitVectorScanner()
        full = scanner.scan_batch(vector_a, vector_b, mode)
        part = scanner.scan_batch(vector_a, vector_b, mode, chunk_positions=chunk)
        for field in ("dense_index", "ordinal", "index_a", "index_b"):
            want, got = getattr(full, field), getattr(part, field)
            assert want.dtype == got.dtype
            assert np.array_equal(want, got)

    def test_budget_chunks_and_matches(self):
        rng = np.random.default_rng(11)
        a = BitVector(512, np.sort(rng.choice(512, 200, replace=False)))
        b = BitVector(512, np.sort(rng.choice(512, 150, replace=False)))
        scanner = BitVectorScanner()
        full = scanner.scan_batch(a, b, ScanMode.UNION)
        part = scanner.scan_batch(a, b, ScanMode.UNION, memory_budget=1024)
        assert np.array_equal(full.dense_index, part.dense_index)
        assert np.array_equal(full.index_a, part.index_a)

    def test_single_mode_ignores_chunking(self):
        a = BitVector(64, np.asarray([1, 5, 40], dtype=np.int64))
        scanner = BitVectorScanner()
        full = scanner.scan_batch(a, None, ScanMode.SINGLE)
        part = scanner.scan_batch(a, None, ScanMode.SINGLE, chunk_positions=3)
        assert np.array_equal(full.dense_index, part.dense_index)

    def test_nonpositive_chunk_rejected(self):
        a = BitVector(8, np.asarray([1], dtype=np.int64))
        b = BitVector(8, np.asarray([2], dtype=np.int64))
        with pytest.raises(SimulationError):
            BitVectorScanner().scan_batch(a, b, chunk_positions=0)


class TestStreamingDSE:
    def test_streamed_matches_materialized(self):
        profiles = _profiles()
        axes = dict(lanes=(8, 16), banks=(8, 16), ideal_sram=(True,))
        full = explore(profiles=profiles, **axes)
        streamed = explore(profiles=profiles, memory_budget=2048, **axes)
        assert streamed.batch is None
        assert np.array_equal(full.gmean_cycles, streamed.gmean_cycles)
        assert np.array_equal(full.area_mm2, streamed.area_mm2)
        assert full.frontier() == streamed.frontier()
        assert full.rows() == streamed.rows()

    def test_keep_grid_materializes_under_budget(self):
        profiles = _profiles()
        axes = dict(lanes=(8, 16), banks=(8, 16), ideal_sram=(True,))
        full = explore(profiles=profiles, **axes)
        kept = explore(profiles=profiles, memory_budget=2048, keep_grid=True, **axes)
        assert kept.batch is not None
        assert np.array_equal(full.cycles, kept.cycles)

    def test_streamed_cycles_access_raises(self):
        streamed = explore(
            profiles=_profiles(),
            memory_budget=1024,
            lanes=(8, 16),
            ideal_sram=(True,),
        )
        assert streamed.batch is None
        with pytest.raises(ConfigurationError):
            streamed.cycles


class TestCLIBudgetSeam:
    def test_memory_budget_flag_exports_env(self, monkeypatch):
        from repro.runtime.cli import main

        monkeypatch.delenv(ENV_MEMORY_BUDGET, raising=False)
        assert main(["--list", "--memory-budget", "64K"]) == 0
        import os

        assert os.environ[ENV_MEMORY_BUDGET] == str(64 << 10)

    def test_bad_memory_budget_is_a_usage_error(self, capsys):
        from repro.runtime.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--list", "--memory-budget", "64Q"])
        assert excinfo.value.code == 2
