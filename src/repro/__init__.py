"""Capstan: A Vector RDA for Sparsity -- a Python reproduction (MICRO 2021).

The package is organized by layer:

* :mod:`repro.formats` -- sparse tensor storage formats (CSR, CSC, COO,
  DCSR, BCSR, banded, bit-vector, bit-tree).
* :mod:`repro.lang` -- the declarative sparse-iteration programming model
  (Foreach / Reduce loop nests with Scan loop headers).
* :mod:`repro.core` -- Capstan's hardware components: the sparse memory
  unit with its separable bank allocator, the bit-vector scanner, the
  butterfly shuffle network, atomic DRAM address generators, DRAM
  compression, and the calibrated area/power model.
* :mod:`repro.sim` -- the simulation substrate (DRAM/SRAM/network models,
  stall accounting).
* :mod:`repro.apps` -- the paper's applications expressed with the sparse
  iteration primitives, plus the Capstan timing model.
* :mod:`repro.baselines` -- Plasticine, CPU, GPU, and ASIC baselines.
* :mod:`repro.workloads` -- synthetic stand-ins for the paper's datasets.
* :mod:`repro.eval` -- one harness per table and figure of the evaluation.
"""

from .config import (
    CapstanConfig,
    MemoryTechnology,
    PlasticineConfig,
    ScannerConfig,
    ShuffleConfig,
    ShuffleMode,
    SpMUConfig,
    default_config,
)
from .errors import (
    CapstanError,
    ConfigurationError,
    ConversionError,
    FormatError,
    OrderingViolationError,
    ProgramError,
    SimulationError,
    WorkloadError,
)

__version__ = "0.1.0"

__all__ = [
    "CapstanConfig",
    "PlasticineConfig",
    "SpMUConfig",
    "ScannerConfig",
    "ShuffleConfig",
    "ShuffleMode",
    "MemoryTechnology",
    "default_config",
    "CapstanError",
    "FormatError",
    "ConversionError",
    "ConfigurationError",
    "SimulationError",
    "OrderingViolationError",
    "ProgramError",
    "WorkloadError",
    "__version__",
]
