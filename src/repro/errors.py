"""Exception hierarchy for the Capstan reproduction.

All library-specific exceptions derive from :class:`CapstanError` so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class CapstanError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FormatError(CapstanError):
    """Raised when a sparse tensor format is malformed or misused.

    Examples include non-monotonic CSR row pointers, out-of-range column
    indices, or attempting to build a format from inconsistent arrays.
    """


class ConversionError(FormatError):
    """Raised when a conversion between sparse formats is not possible."""


class ConfigurationError(CapstanError):
    """Raised when an architecture configuration is invalid.

    For example a lane count that is not a power of two, or a shuffle
    network whose endpoint count does not match the grid.
    """


class SimulationError(CapstanError):
    """Raised when a hardware component simulation reaches an invalid state."""


class OrderingViolationError(SimulationError):
    """Raised when a memory ordering constraint would be violated.

    The SpMU raises this if a verification pass detects that the completion
    order of requests is inconsistent with the configured
    :class:`~repro.core.ordering.OrderingMode`.
    """


class ProgramError(CapstanError):
    """Raised when a sparse-iteration program is malformed.

    For example nesting a :class:`~repro.lang.loops.Scan` over inputs with
    mismatched lengths, or reducing with a non-associative operator where the
    schedule requires reassociation.
    """


class WorkloadError(CapstanError):
    """Raised when a workload/dataset cannot be generated or loaded."""
