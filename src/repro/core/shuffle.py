"""Butterfly shuffle (merge) network (Section 3.2, Figure 3d/3e).

The shuffle network routes vectorized memory requests from parallel
outer-loop iterations (one vector per CU) to the memory partition that owns
each address, while preserving enough information to undo the permutation
when replies return -- the property positional dataflow requires.

Each network is a butterfly of *merge units*. At every stage a merge unit
examines one address bit to decide which half of the network a request
belongs to, drops requests intended for the other half, and merges the two
incoming vectors. Merging may shift a request by at most ``max_shift``
lanes (+/-1 in the paper's Mrg-1 design point; 0 for Mrg-0; unrestricted
for the full-crossbar Mrg-16). Requests that cannot be placed within the
shift budget spill to a follow-up vector, consuming an extra network cycle.
A 64-entry inverse-permutation FIFO per merge unit records the shuffle
decisions so replies can be un-permuted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ShuffleConfig, ShuffleMode
from ..errors import SimulationError


@dataclass(frozen=True)
class ShuffleRequest:
    """One element travelling through the shuffle network.

    Attributes:
        source: Originating CU index.
        lane: Lane within the source CU's vector.
        address: Global address used for partition routing.
        payload: Opaque value carried alongside (e.g. the store data).
    """

    source: int
    lane: int
    address: int
    payload: float = 0.0


@dataclass
class ShuffleStats:
    """Timing statistics for routing one batch of vectors.

    Attributes:
        input_vectors: Vectors presented at the network inputs.
        output_vectors: Vectors emitted at the memory-side outputs (summed
            over all destinations); the merge success rate is
            ``input_vectors / output_vectors`` folded over stages.
        merge_cycles: Total merge-unit cycles consumed.
        spilled_requests: Requests that could not be placed within the lane
            shift budget and required an extra output vector.
        bypassed_requests: Requests that skipped the network entirely
            because they were already at their destination partition.
    """

    input_vectors: int = 0
    output_vectors: int = 0
    merge_cycles: int = 0
    spilled_requests: int = 0
    bypassed_requests: int = 0
    per_destination_vectors: Dict[int, int] = field(default_factory=dict)

    @property
    def expansion_factor(self) -> float:
        """Output vectors per input vector; 1.0 means perfect merging."""
        if self.input_vectors == 0:
            return 0.0
        return self.output_vectors / self.input_vectors


class MergeUnit:
    """One butterfly merge unit: partition on an address bit, then merge."""

    def __init__(self, lanes: int, max_shift: int, fifo_depth: int = 64):
        if lanes <= 0:
            raise SimulationError("lanes must be positive")
        self._lanes = lanes
        self._max_shift = max_shift
        self._fifo_depth = fifo_depth
        self._decision_fifo: List[Tuple[int, ...]] = []

    @property
    def fifo_occupancy(self) -> int:
        """Inverse-permutation records currently buffered."""
        return len(self._decision_fifo)

    def merge(
        self,
        upper: Sequence[Optional[ShuffleRequest]],
        lower: Sequence[Optional[ShuffleRequest]],
    ) -> Tuple[List[List[Optional[ShuffleRequest]]], int]:
        """Merge two already-partitioned vectors into as few vectors as possible.

        Both inputs must contain only requests destined for this unit's half
        (the caller partitions by address bit). Returns the list of output
        vectors and the number of requests that spilled past the first
        output vector.
        """
        slots: List[List[Optional[ShuffleRequest]]] = [[None] * self._lanes]
        spilled = 0
        for vector in (upper, lower):
            for lane, request in enumerate(vector):
                if request is None:
                    continue
                placed = self._place(slots, lane, request)
                if placed > 0:
                    spilled += 1
        if len(self._decision_fifo) >= self._fifo_depth:
            # A full inverse-permutation FIFO back-pressures the pipeline;
            # model it by recycling the oldest entry (replies have returned).
            self._decision_fifo.pop(0)
        self._decision_fifo.append(tuple(range(self._lanes)))
        return slots, spilled

    def _place(
        self,
        slots: List[List[Optional[ShuffleRequest]]],
        preferred_lane: int,
        request: ShuffleRequest,
    ) -> int:
        """Place ``request`` near ``preferred_lane``; return the vector index used."""
        for vector_index, vector in enumerate(slots):
            candidates = self._candidate_lanes(preferred_lane)
            for lane in candidates:
                if vector[lane] is None:
                    vector[lane] = request
                    return vector_index
        # No room within the shift budget in any existing vector: spill.
        new_vector: List[Optional[ShuffleRequest]] = [None] * self._lanes
        new_vector[preferred_lane] = request
        slots.append(new_vector)
        return len(slots) - 1

    def _candidate_lanes(self, preferred: int) -> List[int]:
        """Lanes reachable from ``preferred`` within the shift budget."""
        if self._max_shift >= self._lanes:
            order = sorted(range(self._lanes), key=lambda lane: abs(lane - preferred))
            return order
        lanes = [preferred]
        for delta in range(1, self._max_shift + 1):
            if preferred - delta >= 0:
                lanes.append(preferred - delta)
            if preferred + delta < self._lanes:
                lanes.append(preferred + delta)
        return lanes


class ShuffleNetwork:
    """A butterfly network of merge units routing vectors to partitions.

    Args:
        config: Shuffle configuration (mode, endpoints, FIFO depth).
        lanes: Vector width of each request vector.
    """

    def __init__(self, config: Optional[ShuffleConfig] = None, lanes: int = 16):
        self._config = config or ShuffleConfig()
        self._config.validate()
        self._lanes = lanes
        self._stages = int(np.log2(self._config.endpoints))
        self._max_shift = self._config.mode.max_shift

    @property
    def config(self) -> ShuffleConfig:
        """The network's configuration."""
        return self._config

    @property
    def stages(self) -> int:
        """Number of butterfly stages (log2 of endpoints)."""
        return self._stages

    def route(
        self,
        vectors_by_source: Dict[int, List[ShuffleRequest]],
        partition_of: Optional[Dict[int, int]] = None,
        partitions: Optional[int] = None,
    ) -> Tuple[Dict[int, List[List[Optional[ShuffleRequest]]]], ShuffleStats]:
        """Route request vectors from CUs to destination memory partitions.

        Args:
            vectors_by_source: One request vector per source CU.
            partition_of: Optional explicit address -> partition mapping; if
                omitted, the address's high bits select the partition.
            partitions: Number of destination partitions (defaults to the
                configured endpoint count).

        Returns:
            A mapping from destination partition to the list of output
            vectors delivered there, and the routing statistics.
        """
        n_partitions = partitions or self._config.endpoints
        stats = ShuffleStats(input_vectors=len(vectors_by_source))
        if self._config.mode is ShuffleMode.NONE:
            return self._route_without_network(vectors_by_source, partition_of, n_partitions, stats)

        # Group requests by destination partition, tracking bypasses.
        grouped: Dict[int, List[ShuffleRequest]] = {p: [] for p in range(n_partitions)}
        for source, vector in vectors_by_source.items():
            for request in vector:
                destination = self._destination(request, partition_of, n_partitions)
                if destination == source % n_partitions:
                    stats.bypassed_requests += 1
                grouped[destination].append(request)

        outputs: Dict[int, List[List[Optional[ShuffleRequest]]]] = {}
        merge_unit = MergeUnit(self._lanes, self._max_shift, self._config.permutation_fifo_depth)
        for destination, requests in grouped.items():
            if not requests:
                continue
            vectors: List[List[Optional[ShuffleRequest]]] = []
            spilled_total = 0
            # Requests arrive as per-source vectors; merge them pairwise,
            # one butterfly stage per halving, approximated by a single
            # sequence of pairwise merges (log2(sources) deep).
            pending = self._initial_vectors(requests)
            while len(pending) > 1:
                merged_round: List[List[Optional[ShuffleRequest]]] = []
                for i in range(0, len(pending), 2):
                    if i + 1 >= len(pending):
                        merged_round.append(pending[i])
                        continue
                    merged, spilled = merge_unit.merge(pending[i], pending[i + 1])
                    merged_round.extend(merged)
                    spilled_total += spilled
                    stats.merge_cycles += 1
                if len(merged_round) >= len(pending):
                    # No further compaction possible; stop merging.
                    pending = merged_round
                    break
                pending = merged_round
            vectors = pending
            outputs[destination] = vectors
            stats.output_vectors += len(vectors)
            stats.spilled_requests += spilled_total
            stats.per_destination_vectors[destination] = len(vectors)
        return outputs, stats

    def _route_without_network(
        self,
        vectors_by_source: Dict[int, List[ShuffleRequest]],
        partition_of: Optional[Dict[int, int]],
        n_partitions: int,
        stats: ShuffleStats,
    ) -> Tuple[Dict[int, List[List[Optional[ShuffleRequest]]]], ShuffleStats]:
        """Model the no-network baseline: every cross-partition request is a
        separate scalar transfer (one output vector per request)."""
        outputs: Dict[int, List[List[Optional[ShuffleRequest]]]] = {}
        for source, vector in vectors_by_source.items():
            for request in vector:
                destination = self._destination(request, partition_of, n_partitions)
                padded: List[Optional[ShuffleRequest]] = [None] * self._lanes
                padded[request.lane % self._lanes] = request
                outputs.setdefault(destination, []).append(padded)
                stats.output_vectors += 1
                if destination == source % n_partitions:
                    stats.bypassed_requests += 1
        for destination, vectors in outputs.items():
            stats.per_destination_vectors[destination] = len(vectors)
        return outputs, stats

    def _destination(
        self,
        request: ShuffleRequest,
        partition_of: Optional[Dict[int, int]],
        n_partitions: int,
    ) -> int:
        if partition_of is not None:
            try:
                return partition_of[request.address] % n_partitions
            except KeyError as exc:
                raise SimulationError(f"no partition for address {request.address}") from exc
        return (request.address // max(1, 2 ** 16 // n_partitions)) % n_partitions

    def _initial_vectors(
        self, requests: List[ShuffleRequest]
    ) -> List[List[Optional[ShuffleRequest]]]:
        """Group a destination's requests back into their source vectors."""
        by_source: Dict[int, List[Optional[ShuffleRequest]]] = {}
        for request in requests:
            vector = by_source.setdefault(request.source, [None] * self._lanes)
            lane = request.lane % self._lanes
            if vector[lane] is not None:
                # Two requests from the same source lane (different vectors in
                # time); start a fresh slot keyed by a synthetic source id.
                synthetic = request.source + 10_000 * (1 + sum(1 for s in by_source if s >= 10_000))
                vector = by_source.setdefault(synthetic, [None] * self._lanes)
            vector[lane] = request
        return list(by_source.values())


def _candidate_lane_order(lanes: int, max_shift: int) -> List[List[int]]:
    """Per preferred lane, the placement order ``MergeUnit._place`` probes."""
    unit = MergeUnit(lanes, max_shift)
    return [unit._candidate_lanes(lane) for lane in range(lanes)]


def _merge_pair_masks(
    upper: int, lower: int, candidates: List[List[int]]
) -> List[int]:
    """Bitmask replica of ``MergeUnit.merge`` for unit-payload requests.

    Occupancy is all the merge decision depends on, so each vector is one
    integer whose set bits are occupied positions; requests are placed in
    the same (vector, candidate-lane) probe order as the object-based unit.
    """
    slots = [0]
    for source in (upper, lower):
        remaining = source
        while remaining:
            lane = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            for index, vector in enumerate(slots):
                placed = False
                for candidate in candidates[lane]:
                    if not (vector >> candidate) & 1:
                        slots[index] = vector | (1 << candidate)
                        placed = True
                        break
                if placed:
                    break
            else:
                slots.append(1 << lane)
    return slots


class _RawStreamReplay:
    """Replays a ``numpy.random.Generator``'s draw stream with plain ints.

    The merge-efficiency microbenchmark makes millions of scalar
    ``random()`` / ``integers()`` calls whose per-call numpy overhead
    dwarfs the arithmetic. This replays the exact same value stream from
    bulk ``random_raw`` words: ``random()`` is the standard 53-bit double
    conversion of one word, and bounded ``integers`` is numpy's buffered
    32-bit Lemire rejection (the buffer half-word carries across calls,
    exactly as in the C implementation). The generator is private to one
    measurement, so over-drawing raw words is unobservable. Equality with
    the real generator is pinned by the backend-equivalence tests.
    """

    __slots__ = ("_bit_generator", "_words", "_pos", "_half", "_has_half")

    def __init__(self, seed: int):
        self._bit_generator = np.random.default_rng(seed).bit_generator
        self._words: List[int] = []
        self._pos = 0
        self._half = 0
        self._has_half = False

    def _word(self) -> int:
        if self._pos >= len(self._words):
            self._words = self._bit_generator.random_raw(4096).tolist()
            self._pos = 0
        word = self._words[self._pos]
        self._pos += 1
        return word

    def random(self) -> float:
        return (self._word() >> 11) * (1.0 / 9007199254740992.0)

    def _uint32(self) -> int:
        if self._has_half:
            self._has_half = False
            return self._half
        word = self._word()
        self._half = word >> 32
        self._has_half = True
        return word & 0xFFFFFFFF

    def integers(self, bound: int) -> int:
        product = self._uint32() * bound
        leftover = product & 0xFFFFFFFF
        if leftover < bound:
            threshold = (4294967296 - bound) % bound
            while leftover < threshold:
                product = self._uint32() * bound
                leftover = product & 0xFFFFFFFF
        return product >> 32


def _merge_efficiency_fast(
    mode: ShuffleMode,
    cross_partition_fraction: float,
    sources: int,
    lanes: int,
    vectors: int,
    partitions: int,
    seed: int,
) -> float:
    """Mask-based fast path of :func:`merge_efficiency`.

    Draws the identical random request stream (same generator draws in the
    same order) but routes it as lane-occupancy bitmasks instead of
    :class:`ShuffleRequest` objects walked through per-slot Python scans.
    Produces exactly the reference's efficiency for the microbenchmark's
    traffic shape, where every (source, lane) carries at most one request
    and the partition stride keeps each address inside its partition.
    """
    rng = _RawStreamReplay(seed)
    candidates = _candidate_lane_order(lanes, mode.max_shift)
    none_mode = mode is ShuffleMode.NONE
    total_requests = 0
    total_vector_slots = 0
    for _ in range(vectors):
        by_destination = [[0] * sources for _ in range(partitions)]
        for source in range(sources):
            home = source % partitions
            for lane in range(lanes):
                if rng.random() < cross_partition_fraction:
                    destination = rng.integers(partitions)
                else:
                    destination = home
                rng.integers(1024)  # the address's low bits; routing-neutral
                by_destination[destination][source] |= 1 << lane
            total_requests += lanes
        if none_mode:
            # Without a network every request is its own output vector.
            total_vector_slots += lanes * sources * lanes
            continue
        for masks in by_destination:
            pending = [mask for mask in masks if mask]
            if not pending:
                continue
            while len(pending) > 1:
                merged_round: List[int] = []
                for i in range(0, len(pending), 2):
                    if i + 1 >= len(pending):
                        merged_round.append(pending[i])
                        continue
                    merged_round.extend(
                        _merge_pair_masks(pending[i], pending[i + 1], candidates)
                    )
                if len(merged_round) >= len(pending):
                    pending = merged_round
                    break
                pending = merged_round
            total_vector_slots += len(pending) * lanes
    if total_vector_slots == 0:
        return 0.0
    return total_requests / total_vector_slots


def merge_efficiency(
    mode: ShuffleMode,
    cross_partition_fraction: float,
    sources: int = 4,
    lanes: int = 16,
    vectors: int = 64,
    partitions: int = 4,
    seed: int = 3,
    config: Optional[ShuffleConfig] = None,
    backend: str = "array",
) -> float:
    """Measure how well a shuffle mode compacts cross-partition traffic.

    Returns the ratio of delivered request slots to delivered vector slots
    (higher is better; 1.0 means every output vector is full). Used by the
    Table 11 harness and the application network model.

    Args:
        config: Optional full shuffle configuration whose crossbar
            parameters (e.g. the inverse-permutation FIFO depth) the
            measured network should use; ``mode`` and the microbenchmark's
            partition count still override its routing shape. ``None``
            measures a default-parameter network.
        backend: ``"array"`` (default) measures through the bitmask fast
            path -- identical results, no per-request object churn;
            ``"reference"`` walks :class:`ShuffleRequest` objects through
            the full :class:`ShuffleNetwork`.
    """
    import dataclasses

    base = config if config is not None else ShuffleConfig()
    network_config = dataclasses.replace(base, mode=mode, endpoints=max(partitions, 2))
    # Validate up front so an invalid configuration is rejected identically
    # on both backends (the reference validates when building the network).
    network_config.validate()
    if backend == "array" and partitions >= 1 and (2**16) // partitions >= 1024:
        # The configured crossbar parameters (FIFO depth) cannot change the
        # measured efficiency, so the fast path ignores them.
        return _merge_efficiency_fast(
            mode, cross_partition_fraction, sources, lanes, vectors, partitions, seed
        )

    rng = np.random.default_rng(seed)
    network = ShuffleNetwork(network_config, lanes=lanes)
    total_requests = 0
    total_vector_slots = 0
    for _ in range(vectors):
        vectors_by_source: Dict[int, List[ShuffleRequest]] = {}
        for source in range(sources):
            vector = []
            for lane in range(lanes):
                if rng.random() < cross_partition_fraction:
                    destination = int(rng.integers(0, partitions))
                else:
                    destination = source % partitions
                address = destination * (2 ** 16 // partitions) + int(rng.integers(0, 1024))
                vector.append(ShuffleRequest(source=source, lane=lane, address=address))
            vectors_by_source[source] = vector
            total_requests += lanes
        outputs, stats = network.route(vectors_by_source, partitions=partitions)
        for destination_vectors in outputs.values():
            total_vector_slots += len(destination_vectors) * lanes
    if total_vector_slots == 0:
        return 0.0
    return total_requests / total_vector_slots
