"""Address-order Bloom filter (Section 3.1.2).

When the SpMU runs in address-ordered mode, an incoming request must stall
before entering the reordering pipeline if it *may* conflict with a pending
in-queue request to the same address. An exact check would need a CAM over
every queued address; Capstan instead uses a small (128-entry) Bloom filter,
accepting occasional false-positive stalls in exchange for area.
"""

from __future__ import annotations

from typing import Iterable


class BloomFilter:
    """A counting Bloom filter over integer addresses.

    A counting variant is used so entries can be removed when their request
    leaves the pipeline, matching the hardware's insert-on-enqueue /
    clear-on-dequeue behaviour.
    """

    def __init__(self, entries: int = 128, hashes: int = 2):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if hashes <= 0:
            raise ValueError("hashes must be positive")
        self._entries = entries
        self._hashes = hashes
        self._counters = [0] * entries
        self._inserted = 0

    @property
    def entries(self) -> int:
        """Number of counter slots."""
        return self._entries

    @property
    def inserted(self) -> int:
        """Number of addresses currently tracked (inserts minus removes)."""
        return self._inserted

    def _slots(self, address: int) -> Iterable[int]:
        address = int(address)
        for i in range(self._hashes):
            # Knuth-style multiplicative hashing with per-hash salts keeps the
            # model simple and deterministic.
            yield ((address * 2654435761 + i * 0x9E3779B9) >> 7) % self._entries

    def insert(self, address: int) -> None:
        """Record ``address`` as pending."""
        for slot in self._slots(address):
            self._counters[slot] += 1
        self._inserted += 1

    def remove(self, address: int) -> None:
        """Remove one pending occurrence of ``address``.

        Removing an address that was never inserted leaves the filter in an
        inconsistent state, so this raises instead of silently underflowing.
        """
        slots = list(self._slots(address))
        if any(self._counters[slot] == 0 for slot in slots):
            raise ValueError(f"address {address} was not inserted")
        for slot in slots:
            self._counters[slot] -= 1
        self._inserted -= 1

    def may_contain(self, address: int) -> bool:
        """Whether ``address`` may be pending (no false negatives)."""
        return all(self._counters[slot] > 0 for slot in self._slots(address))

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._counters = [0] * self._entries
        self._inserted = 0

    def false_positive_rate_estimate(self) -> float:
        """Rough analytic false-positive probability at the current load."""
        if self._inserted == 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self._entries) ** (self._hashes * self._inserted)
        return fill ** self._hashes
