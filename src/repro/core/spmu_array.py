"""Array-based SpMU simulation engine (the batched microbenchmark backend).

The reference simulator in :mod:`repro.core.spmu` walks one
``List[List[MemoryRequest]]`` trace through the reordering pipeline with
per-cycle Python loops over request objects. This module re-expresses the
same machine as array passes over a flat trace representation
(``addresses`` / ``ops`` / ``lanes`` / ``vector_ids`` numpy arrays) and --
crucially -- simulates *many SpMU variants in lock-step*: every per-cycle
quantity (queue occupancy, allocator request matrices, grants, completions,
Bloom-filter state) is a tensor indexed by variant, so a whole design-space
grid of (ordering, bank mapping, allocator, structure, lanes) points costs
a handful of numpy operations per cycle instead of hundreds of Python-level
scans per cycle *per variant*.

Three scheduling regimes are implemented:

* ``ARBITRATED`` -- closed form: a vector with ``k`` requests to its most
  contended bank takes ``k`` cycles, so per-vector cycle counts are a
  ``bincount``/``max`` pass over ``(vector, bank)`` keys.
* ``FULLY_ORDERED`` -- closed form: only one vector is ever in flight, and
  each cycle issues the maximal conflict-free program-order prefix, so a
  single scan over lanes assigns every request an issue round and the
  per-vector occupancy (rounds + pipeline latency) composes additively.
* ``UNORDERED`` / ``ADDRESS_ORDERED`` -- a lock-step cycle loop whose inner
  work (queue refill, separable/greedy allocation, oldest-request
  resolution, retirement) is vectorized across all variants at once.

Every path reproduces the reference loop's statistics *exactly* -- cycles,
requests, elided reads, bank-busy cycles, ordering stalls, and (when
requested) the per-cycle active-bank trace -- which the equivalence tests
and the ``spmu`` benchmark gate assert configuration by configuration.

The public entry point is :func:`simulate_variants`; the object-level
wrappers (``SparseMemoryUnit(backend="array")``,
:func:`~repro.core.spmu.effective_bank_throughput_batch`) live in
:mod:`repro.core.spmu`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._budget import resolve_memory_budget
from .._compiled import resolve_backend
from ..config import SpMUConfig
from ..errors import SimulationError
from .allocator import SeparableAllocator
from .bank_hash import get_bank_mapper_array
from .ordering import OrderingMode

#: Integer op codes used by array request traces. ``OP_READ`` must stay 0;
#: the engine treats codes <= ``OP_SUB`` as the vectorizable fast path for
#: functional execution and anything above as requiring the scalar RMW
#: fallback.
OP_READ = 0
OP_ADD = 1
OP_SUB = 2
OP_OTHER_BASE = 3

#: Knuth-style multiplicative hash constants of the reference Bloom filter.
_BLOOM_MULT = 2654435761
_BLOOM_SALT = 0x9E3779B9


@dataclass(frozen=True)
class SpMUVariant:
    """One SpMU microbenchmark configuration point.

    Mirrors the :class:`~repro.core.spmu.SparseMemoryUnit` constructor
    arguments so a design-space sweep can be described as plain data and
    simulated in one :func:`simulate_variants` call.
    """

    ordering: OrderingMode = OrderingMode.UNORDERED
    bank_mapping: str = "hash"
    allocator_kind: str = "separable"
    config: SpMUConfig = field(default_factory=SpMUConfig)
    lanes: int = 16
    pipeline_latency: int = 3


@dataclass
class SimResult:
    """Raw result of one simulated variant (pre-:class:`SpMUStats`).

    Attributes:
        cycles / requests / elided_reads / bank_busy_cycles / vectors /
        stall_cycles_ordering: The reference loop's aggregate statistics.
        per_cycle_active_banks: Active-bank count per simulated cycle, or
            ``None`` unless the trace was recorded.
        issue_vectors / issue_lanes: The ``(vector, lane)`` coordinates of
            every executed request in issue order, or ``None`` unless issue
            collection was requested (used for functional execution).
    """

    cycles: int
    requests: int
    elided_reads: int
    bank_busy_cycles: int
    vectors: int
    stall_cycles_ordering: int
    per_cycle_active_banks: Optional[np.ndarray] = None
    issue_vectors: Optional[np.ndarray] = None
    issue_lanes: Optional[np.ndarray] = None


@dataclass
class _PreparedTrace:
    """A request trace densified to ``(vector, lane)`` matrices."""

    n_vectors: int
    width: int
    lengths: np.ndarray
    addr_mat: np.ndarray
    op_mat: np.ndarray
    val_mat: np.ndarray
    kept: np.ndarray
    kept_counts: np.ndarray
    has_dup: np.ndarray
    total_kept: int
    elided: int
    min_address: int
    max_address: int
    _bank_mats: Dict[Tuple[str, int], np.ndarray] = field(default_factory=dict)

    def bank_mat(self, mapping: str, banks: int) -> np.ndarray:
        """The per-(vector, lane) bank matrix for one mapping scheme."""
        key = (mapping, banks)
        cached = self._bank_mats.get(key)
        if cached is None:
            mapper = get_bank_mapper_array(mapping)
            safe = np.where(self.kept, self.addr_mat, 0)
            cached = np.where(self.kept, mapper(safe, banks), -1).astype(np.int16)
            self._bank_mats[key] = cached
        return cached


def prepare_trace(trace) -> _PreparedTrace:
    """Densify a flat request trace and apply repeated-read elision.

    ``trace`` is any object exposing ``addresses`` / ``ops`` / ``values`` /
    ``lanes`` / ``vector_ids`` arrays plus an ``n_vectors`` count (see
    :class:`~repro.core.spmu.RequestTrace`). Duplicate read-only accesses
    to an address already read earlier in the same vector are squashed,
    exactly as the reference pipeline's enqueue stage does.
    """
    addresses = np.asarray(trace.addresses, dtype=np.int64)
    ops = np.asarray(trace.ops, dtype=np.int16)
    values = np.asarray(trace.values, dtype=np.float64)
    lanes = np.asarray(trace.lanes, dtype=np.int64)
    vector_ids = np.asarray(trace.vector_ids, dtype=np.int64)
    n_vectors = int(trace.n_vectors)
    n = addresses.size

    lengths = np.bincount(vector_ids, minlength=n_vectors) if n else np.zeros(n_vectors, np.int64)
    width = int(lanes.max()) + 1 if n else 0

    # Repeated-read elision: among read-only requests, keep the first
    # occurrence of each (vector, address) pair in lane order. Trace order
    # is (vector asc, lane asc), so np.unique's first-occurrence indices
    # select exactly the request the reference's seen_reads dict keeps.
    elide = np.zeros(n, dtype=bool)
    read_mask = ops == OP_READ
    if read_mask.any():
        ridx = np.nonzero(read_mask)[0]
        max_addr = int(addresses.max()) if n else 0
        key = vector_ids[ridx] * (max_addr + 1) + addresses[ridx]
        _, first = np.unique(key, return_index=True)
        keep_read = np.zeros(ridx.size, dtype=bool)
        keep_read[first] = True
        elide[ridx[~keep_read]] = True
    kept_flat = ~elide

    addr_mat = np.full((n_vectors, width), -1, dtype=np.int64)
    op_mat = np.full((n_vectors, width), -1, dtype=np.int16)
    val_mat = np.zeros((n_vectors, width), dtype=np.float64)
    kept = np.zeros((n_vectors, width), dtype=bool)
    if n:
        kv = vector_ids[kept_flat]
        kl = lanes[kept_flat]
        addr_mat[kv, kl] = addresses[kept_flat]
        op_mat[kv, kl] = ops[kept_flat]
        val_mat[kv, kl] = values[kept_flat]
        kept[kv, kl] = True
    kept_counts = kept.sum(axis=1).astype(np.int64)

    # Intra-vector duplicate addresses among kept requests (the
    # address-ordered mode's split-stall condition).
    has_dup = np.zeros(n_vectors, dtype=bool)
    if n:
        kv = vector_ids[kept_flat]
        ka = addresses[kept_flat]
        order = np.lexsort((ka, kv))
        sv, sa = kv[order], ka[order]
        dup = np.zeros(sv.size, dtype=bool)
        dup[1:] = (sv[1:] == sv[:-1]) & (sa[1:] == sa[:-1])
        has_dup[sv[dup]] = True

    return _PreparedTrace(
        n_vectors=n_vectors,
        width=width,
        lengths=lengths,
        addr_mat=addr_mat,
        op_mat=op_mat,
        val_mat=val_mat,
        kept=kept,
        kept_counts=kept_counts,
        has_dup=has_dup,
        total_kept=int(kept_flat.sum()),
        elided=int(elide.sum()),
        min_address=int(addresses.min()) if n else 0,
        max_address=int(addresses.max()) if n else 0,
    )


def _validate(variant: SpMUVariant, prep: _PreparedTrace) -> None:
    """Reject traces the reference simulator would reject."""
    variant.config.validate()
    if prep.lengths.size and int(prep.lengths.max()) > variant.lanes:
        bad = int(np.argmax(prep.lengths > variant.lanes))
        raise SimulationError(
            f"vector {bad} has {int(prep.lengths[bad])} requests for {variant.lanes} lanes"
        )
    words = variant.config.banks * variant.config.words_per_bank
    if prep.min_address < 0 or prep.max_address >= words:
        bad = prep.min_address if prep.min_address < 0 else prep.max_address
        raise SimulationError(f"address {bad} outside SpMU capacity")


def _bloom_slots(addresses: np.ndarray, entries: int, salt_index: int) -> np.ndarray:
    """Vectorized counting-Bloom slot computation, exact vs the reference.

    The reference hashes with arbitrary-precision Python ints; the int64
    fast path is exact whenever the product cannot overflow, which a guard
    checks before trusting it.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and int(addresses.max()) > (2**62) // _BLOOM_MULT:
        slots = [
            ((int(a) * _BLOOM_MULT + salt_index * _BLOOM_SALT) >> 7) % entries
            for a in addresses.ravel()
        ]
        return np.array(slots, dtype=np.int64).reshape(addresses.shape)
    return ((addresses * _BLOOM_MULT + salt_index * _BLOOM_SALT) >> 7) % entries


# --------------------------------------------------------------------------- #
# Closed forms: arbitrated and fully-ordered scheduling
# --------------------------------------------------------------------------- #


def _simulate_arbitrated(
    variant: SpMUVariant, prep: _PreparedTrace, record_trace: bool, collect_issues: bool
) -> SimResult:
    """Closed-form arbitrated baseline: bincount over (vector, bank) keys."""
    banks = variant.config.banks
    bank = prep.bank_mat(variant.bank_mapping, banks)
    nv = prep.n_vectors
    vi, li = np.nonzero(prep.kept)
    counts = np.zeros((nv, banks), dtype=np.int64)
    if vi.size:
        np.add.at(counts, (vi, bank[vi, li]), 1)
    rounds = counts.max(axis=1) if nv and banks else np.zeros(nv, dtype=np.int64)
    cycles = int(rounds.sum())

    trace_arr = None
    if record_trace:
        tmax = int(rounds.max()) if nv else 0
        if tmax:
            grid = (counts[:, None, :] > np.arange(tmax)[None, :, None]).sum(axis=-1)
            mask = np.arange(tmax)[None, :] < rounds[:, None]
            trace_arr = grid[mask].astype(np.int64)
        else:
            trace_arr = np.zeros(0, dtype=np.int64)

    issue_vec = issue_lane = None
    if collect_issues:
        if vi.size:
            bk = bank[vi, li]
            order = np.lexsort((li, bk, vi))
            sv, sb = vi[order], bk[order]
            new_group = np.ones(sv.size, dtype=bool)
            new_group[1:] = (sv[1:] != sv[:-1]) | (sb[1:] != sb[:-1])
            starts = np.nonzero(new_group)[0]
            group = np.cumsum(new_group) - 1
            rank_sorted = np.arange(sv.size) - starts[group]
            rank = np.empty(sv.size, dtype=np.int64)
            rank[order] = rank_sorted
            final = np.lexsort((li, rank, vi))
            issue_vec, issue_lane = vi[final], li[final]
        else:
            issue_vec = issue_lane = np.zeros(0, dtype=np.int64)

    return SimResult(
        cycles=cycles,
        requests=prep.total_kept,
        elided_reads=prep.elided,
        bank_busy_cycles=prep.total_kept,
        vectors=nv,
        stall_cycles_ordering=0,
        per_cycle_active_banks=trace_arr,
        issue_vectors=issue_vec,
        issue_lanes=issue_lane,
    )


def _simulate_fully_ordered(
    variant: SpMUVariant, prep: _PreparedTrace, record_trace: bool, collect_issues: bool
) -> SimResult:
    """Closed-form fully-ordered mode.

    One vector is in flight at a time; each cycle issues the maximal
    conflict-free program-order prefix of its remaining requests, so a
    single left-to-right scan over lanes assigns every request its issue
    round. A vector with ``r`` rounds occupies the queue for ``r +
    pipeline_latency`` cycles (its last completion must retire before the
    next vector may enter); an all-elided vector occupies exactly one.
    Every occupied cycle with another vector waiting stalls the enqueue
    stage once (unless the queue is single-entry, in which case the
    reference's refill loop never reaches the stall check).
    """
    banks = variant.config.banks
    latency = max(1, variant.pipeline_latency)
    bank = prep.bank_mat(variant.bank_mapping, banks)
    nv, width = prep.n_vectors, prep.width

    seen = np.zeros((nv, banks), dtype=bool)
    round_idx = np.zeros(nv, dtype=np.int64)
    rounds_of = np.full((nv, max(width, 1)), -1, dtype=np.int64)[:, :width]
    rows = np.arange(nv)
    for lane in range(width):
        b = bank[:, lane]
        k = b >= 0
        if not k.any():
            continue
        safe = np.where(k, b, 0)
        conflict = seen[rows, safe] & k
        if conflict.any():
            round_idx[conflict] += 1
            seen[conflict] = False
        seen[rows[k], b[k]] = True
        rounds_of[k, lane] = round_idx[k]

    rounds = np.where(prep.kept_counts > 0, round_idx + 1, 0)
    delta = np.where(prep.kept_counts > 0, rounds + latency, 1)
    cycles = int(delta.sum())
    if nv and variant.config.queue_depth > 1:
        stalls = cycles - int(delta[-1])
    else:
        stalls = 0

    trace_arr = None
    if record_trace:
        parts: List[np.ndarray] = []
        for v in range(nv):
            if prep.kept_counts[v]:
                row = rounds_of[v]
                parts.append(np.bincount(row[row >= 0], minlength=int(rounds[v])))
                parts.append(np.zeros(latency, dtype=np.int64))
            else:
                parts.append(np.zeros(1, dtype=np.int64))
        trace_arr = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    issue_vec = issue_lane = None
    if collect_issues:
        issue_vec, issue_lane = np.nonzero(prep.kept)

    return SimResult(
        cycles=cycles,
        requests=prep.total_kept,
        elided_reads=prep.elided,
        bank_busy_cycles=prep.total_kept,
        vectors=nv,
        stall_cycles_ordering=stalls,
        per_cycle_active_banks=trace_arr,
        issue_vectors=issue_vec,
        issue_lanes=issue_lane,
    )


# --------------------------------------------------------------------------- #
# Lock-step cycle loop: unordered and address-ordered scheduling
# --------------------------------------------------------------------------- #


class _LockStepState:
    """All per-variant state of the lock-step scheduled simulation.

    Row ``j`` of every array describes one still-running variant; finished
    variants are periodically compacted out so the tail of a heterogeneous
    grid does not pay tensor work for variants that already completed.
    ``orig`` maps rows back to positions in the caller's variant list.
    """

    def __init__(self, variants: Sequence[SpMUVariant], preps: Sequence[_PreparedTrace]):
        v_count = len(variants)
        self.NV = max((p.n_vectors for p in preps), default=0)
        self.W = max((p.width for p in preps), default=0)
        self.B = max(v.config.banks for v in variants)
        self.D = max(v.config.queue_depth for v in variants)
        nv_pad = max(self.NV, 1)
        w_pad = max(self.W, 1)

        self.pend = np.full((v_count, nv_pad, w_pad), -1, dtype=np.int16)
        # Per (variant, vector): kept requests not yet *retired* (pending in
        # the queue or in flight through the pipeline). Issues leave it
        # unchanged -- only completions decrement -- so a vector's queue
        # slot frees exactly when its count reaches zero, which matches the
        # reference's "no pending and no outstanding" retirement test.
        self.remaining = np.zeros((v_count, nv_pad), dtype=np.int32)
        for j, (variant, prep) in enumerate(zip(variants, preps)):
            if prep.n_vectors and prep.width:
                bank = prep.bank_mat(variant.bank_mapping, variant.config.banks)
                self.pend[j, : prep.n_vectors, : prep.width] = bank
            self.remaining[j, : prep.n_vectors] = prep.kept_counts

        self.qvec = np.full((v_count, self.D), -1, dtype=np.int64)
        self.qn = np.zeros(v_count, dtype=np.int64)
        self.waiting = np.zeros(v_count, dtype=np.int64)
        self.nv = np.array([p.n_vectors for p in preps], dtype=np.int64)
        self.total = np.array([p.total_kept for p in preps], dtype=np.int64)
        self.executed = np.zeros(v_count, dtype=np.int64)
        self.stalls = np.zeros(v_count, dtype=np.int64)
        self.depth = np.array([v.config.queue_depth for v in variants], dtype=np.int64)
        self.ipl = np.array(
            [max(1, v.config.crossbar_inputs // v.lanes) for v in variants], dtype=np.int64
        )
        self.latency = np.array([max(1, v.pipeline_latency) for v in variants], dtype=np.int64)
        self.sep = np.array([v.allocator_kind == "separable" for v in variants], dtype=bool)
        self.iters = np.array(
            [v.config.allocator_iterations if v.allocator_kind == "separable" else 0
             for v in variants],
            dtype=np.int64,
        )
        self.max_it = int(self.iters.max()) if self.sep.any() else 0
        self.cutoffs = np.full((v_count, max(self.max_it, 1)), -1, dtype=np.int64)
        for j, variant in enumerate(variants):
            if variant.allocator_kind != "separable":
                continue
            allocator = SeparableAllocator(
                lanes=variant.lanes,
                banks=variant.config.banks,
                iterations=variant.config.allocator_iterations,
                priorities=variant.config.allocator_priorities,
                queue_depth=variant.config.queue_depth,
            )
            self.cutoffs[j, : len(allocator.age_cutoffs)] = allocator.age_cutoffs
        self.max_cycles = 64 * (self.total + self.nv + 8)
        self.active = self.nv > 0
        self.orig = np.arange(v_count)
        self.row_of = np.arange(v_count)
        self.v2 = np.arange(v_count)[:, None]
        # Static per-pass facts, hoisted so the cycle loop avoids per-cycle
        # reductions: which input-speedup passes have separable / greedy
        # bidders at all, and the eligibility mask per pass.
        self._derive_pass_tables()

        # Address-ordered state: one Bloom counter row per AO variant plus a
        # sentinel column that padded (non-kept) lane slots alias so batched
        # inserts and membership checks need no masking.
        ao_idx = [j for j, v in enumerate(variants) if v.ordering is OrderingMode.ADDRESS_ORDERED]
        self.has_ao = bool(ao_idx)
        self.ao_row = np.full(v_count, -1, dtype=np.int64)
        self.ao_row[ao_idx] = np.arange(len(ao_idx))
        self.entries_max = max(
            (variants[j].config.bloom_filter_entries for j in ao_idx), default=1
        )
        self.counters = np.zeros((max(len(ao_idx), 1), self.entries_max + 1), dtype=np.int32)
        #: Both Bloom slots per (AO variant, vector, lane), stacked on the
        #: last axis; padded (non-kept) entries alias the sentinel column.
        self.s01 = np.full(
            (max(len(ao_idx), 1), nv_pad, w_pad, 2), self.entries_max, dtype=np.int64
        )
        self.ao_dup = np.zeros((max(len(ao_idx), 1), nv_pad), dtype=np.int64)
        for row, j in enumerate(ao_idx):
            prep = preps[j]
            entries = variants[j].config.bloom_filter_entries
            if prep.n_vectors and prep.width:
                kv, kl = np.nonzero(prep.kept)
                addr = prep.addr_mat[kv, kl]
                self.s01[row, kv, kl, 0] = _bloom_slots(addr, entries, 0)
                self.s01[row, kv, kl, 1] = _bloom_slots(addr, entries, 1)
            self.ao_dup[row, : prep.n_vectors] = prep.has_dup.astype(np.int64)

    def compact(self, results_cycles, results_stats):
        """Drop finished rows, flushing their accumulated statistics."""
        keep = np.nonzero(self.active)[0]
        dropped = np.nonzero(~self.active)[0]
        for j in dropped:
            results_stats[self.orig[j]] = (int(self.executed[j]), int(self.stalls[j]))
        for name in (
            "pend", "remaining", "qvec", "qn", "waiting", "nv", "total",
            "executed", "stalls", "depth", "ipl", "latency", "sep", "iters", "cutoffs",
            "max_cycles", "active", "orig", "ao_row",
        ):
            setattr(self, name, getattr(self, name)[keep])
        self.row_of = np.full(self.row_of.size, -1, dtype=np.int64)
        self.row_of[self.orig] = np.arange(keep.size)
        self.v2 = np.arange(keep.size)[:, None]
        self._derive_pass_tables()

    def _derive_pass_tables(self) -> None:
        """Precompute static per-pass / per-iteration allocator tables.

        A row that is inactive (or whose queue is empty) bids for nothing,
        so pass 0 needs no runtime row mask at all: its separable cutoffs
        and greedy row set are fixed at construction. Later input-speedup
        passes still mask rows by their crossbar's ``issues_per_lane``.
        """
        ipl_max = int(self.ipl.max()) if self.ipl.size else 1
        self.pass_eligible = [self.ipl > p for p in range(ipl_max)]
        self.pass_has_sep = [bool((self.sep & (self.ipl > p)).any()) for p in range(ipl_max)]
        self.pass_has_greedy = [
            bool((~self.sep & (self.ipl > p)).any()) for p in range(ipl_max)
        ]
        max_it = self.max_it
        self.iter_eligible = [self.sep & (it < self.iters) for it in range(max_it)]
        #: Pass-0 separable cutoff columns, fully precomputed (-1 disables).
        self.iter_cut0 = [
            np.where(self.iter_eligible[it], self.cutoffs[:, it], -1) for it in range(max_it)
        ]
        #: Pass-0 greedy row set, fully precomputed.
        self.greedy_rows0 = np.nonzero(~self.sep)[0]


def _refill_lockstep(state: _LockStepState, pos: np.ndarray) -> None:
    """One cycle's queue-refill stage, vectorized across variants.

    Mirrors the reference ``_refill_queue``. Unordered variants accept
    unconditionally, so their whole refill (consecutive vector ids into
    consecutive queue slots) lands in one scatter. Address-ordered
    variants go attempt by attempt: each pays the intra-vector-duplicate
    split stall on every attempt and stops for the cycle on a Bloom-filter
    hit, with the accepted vector's addresses inserted before the next
    attempt so an in-cycle follow-up sees them.
    """
    can = state.active & (state.waiting < state.nv) & (state.qn < state.depth)
    if state.has_ao:
        plain = can & (state.ao_row < 0)
    else:
        plain = can
    if plain.any():
        accept = np.where(
            plain, np.minimum(state.depth - state.qn, state.nv - state.waiting), 0
        )
        write = (pos >= state.qn[:, None]) & (pos < (state.qn + accept)[:, None])
        state.qvec[write] = (state.waiting[:, None] + pos - state.qn[:, None])[write]
        state.qn += accept
        state.waiting += accept
    if not state.has_ao:
        return
    open_mask = can & (state.ao_row >= 0)
    while open_mask.any():
        idx = np.nonzero(open_mask)[0]
        arows = state.ao_row[idx]
        aw = state.waiting[idx]
        state.stalls[idx] += state.ao_dup[arows, aw]
        s01 = state.s01[arows, aw]
        flags = state.counters[arows[:, None, None], s01] > 0
        may = flags.all(axis=2).any(axis=1)
        state.stalls[idx[may]] += 1
        acc = idx[~may]
        if acc.size:
            acc_rows = arows[~may]
            rep = np.repeat(acc_rows, 2 * s01.shape[1])
            np.add.at(state.counters, (rep, s01[~may].reshape(acc.size, -1).ravel()), 1)
            state.counters[:, state.entries_max] = 0
            state.qvec[acc, state.qn[acc]] = state.waiting[acc]
            state.qn[acc] += 1
            state.waiting[acc] += 1
        open_mask[idx[may]] = False
        open_mask &= (state.waiting < state.nv) & (state.qn < state.depth)


#: Sentinel queue position marking "no pending request" in the min-age
#: tensor; larger than any real position or age cutoff.
_NO_POS = 1 << 20


def _allocate_shallow(
    state: _LockStepState, vb: np.ndarray, pass_row: np.ndarray, taken: np.ndarray
) -> np.ndarray:
    """Allocation fast path when no variant queues more than one vector.

    With at most one age-0 candidate per lane, both allocators reduce to
    "each bank accepts its lowest bidding lane": the separable stage-1
    pick is the lane's only bank, stage 2 keeps the lowest lane, and later
    iterations cannot add grants because a losing lane's only bank is
    already taken; the greedy lane scan makes the same choices. This state
    dominates address-ordered runs, where the Bloom filter admits vectors
    one at a time.
    """
    v_rows, _, lanes_dim = vb.shape
    empty = np.zeros(0, dtype=np.int64)
    head = vb[:, 0, :]
    valid = (head >= 0) & pass_row[:, None]
    if not valid.any():
        return empty, empty, empty
    valid &= ~taken[np.arange(v_rows)[:, None], np.where(head >= 0, head, 0)]
    vi, li = np.nonzero(valid)
    if not vi.size:
        return empty, empty, empty
    winner = np.full((v_rows, state.B), lanes_dim, dtype=np.int64)
    np.minimum.at(winner, (vi, head[vi, li]), li)
    gvi, gbi = np.nonzero(winner < lanes_dim)
    gli = winner[gvi, gbi]
    taken[gvi, gbi] = True
    return gvi, gli, gbi


def _min_position_tensor(state: _LockStepState, vb: np.ndarray) -> np.ndarray:
    """``P[v, lane, bank]`` = oldest queue position bidding that pair.

    A queued vector holds at most one request per lane, so per (lane,
    bank) the candidate ages within one variant are distinct queue
    positions and the minimum identifies the reference's
    ``_oldest_request_for`` choice directly.
    """
    v_rows, _, lanes_dim = vb.shape
    min_pos = np.full((v_rows, lanes_dim, state.B), _NO_POS, dtype=np.int32)
    vi, di, li = np.nonzero(vb >= 0)
    if vi.size:
        np.minimum.at(min_pos, (vi, li, vb[vi, di, li]), di)
    return min_pos


def _allocate_lockstep(
    state: _LockStepState,
    min_pos: np.ndarray,
    pass_index: int,
    pass_row: np.ndarray,
    taken: np.ndarray,
    has_sep: bool,
    has_greedy: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One allocation pass for every variant; returns per-lane grant banks.

    Separable variants run their configured number of two-stage iterations
    with per-iteration age cutoffs; greedy variants scan lanes in order
    granting each lane its oldest pending bank that is still free. Both
    operate on the ``(variant, lane, bank)`` min-age tensor: a pair is an
    eligible allocator input iff its oldest bidder is younger than the
    iteration's cutoff (separable) or exists at all (greedy).
    """
    v_rows, lanes_dim, _ = min_pos.shape
    grants: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    if has_sep:
        lane_done = np.zeros((v_rows, lanes_dim), dtype=bool)
        for it in range(state.max_it):
            if pass_index == 0:
                cut = state.iter_cut0[it]
            else:
                cut = np.where(
                    pass_row & state.iter_eligible[it], state.cutoffs[:, it], -1
                )
            matrix = min_pos < cut[:, None, None]
            matrix &= ~taken[:, None, :]
            if it:
                matrix &= ~lane_done[:, :, None]
            rows_any = matrix.any(axis=-1)
            rvi, rli = np.nonzero(rows_any)
            if not rvi.size:
                continue
            choice = matrix[rvi, rli].argmax(axis=-1)
            winner = np.full((v_rows, state.B), lanes_dim, dtype=np.int64)
            np.minimum.at(winner, (rvi, choice), rli)
            gvi, gbi = np.nonzero(winner < lanes_dim)
            gli = winner[gvi, gbi]
            lane_done[gvi, gli] = True
            taken[gvi, gbi] = True
            grants.append((gvi, gli, gbi))

    if has_greedy:
        # The reference greedy allocator walks lanes in order (lower lanes
        # win), so the scan is sequential over lanes -- but each lane's
        # pick is one masked argmin over its per-bank oldest bidders,
        # computed on the greedy rows only. Granted banks are invalidated
        # in the working tensor instead of re-masking every lane.
        if pass_index == 0:
            rows_all = state.greedy_rows0
        else:
            rows_all = np.nonzero(pass_row & ~state.sep)[0]
        masked = np.where(taken[rows_all][:, None, :], _NO_POS, min_pos[rows_all])
        live_lanes = np.nonzero((masked < _NO_POS).any(axis=(0, 2)))[0].tolist()
        seq = np.arange(rows_all.size)
        locals_: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for lane in live_lanes:
            row = masked[:, lane, :]
            banks = row.argmin(axis=1)
            rows = np.nonzero(row[seq, banks] < _NO_POS)[0]
            if rows.size:
                won = banks[rows]
                masked[rows, :, won] = _NO_POS
                locals_.append((lane, rows, won))
        if locals_:
            g_rows = np.concatenate([entry[1] for entry in locals_])
            g_banks = np.concatenate([entry[2] for entry in locals_])
            g_lanes = np.repeat(
                np.array([entry[0] for entry in locals_], dtype=np.int64),
                [entry[1].size for entry in locals_],
            )
            g_rows = rows_all[g_rows]
            taken[g_rows, g_banks] = True
            grants.append((g_rows, g_lanes, g_banks))
    if not grants:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    if len(grants) == 1:
        return grants[0]
    return (
        np.concatenate([g[0] for g in grants]),
        np.concatenate([g[1] for g in grants]),
        np.concatenate([g[2] for g in grants]),
    )


def _simulate_scheduled_lockstep(
    variants: Sequence[SpMUVariant],
    preps: Sequence[_PreparedTrace],
    record_trace: bool,
    collect_issues: bool,
) -> List[SimResult]:
    """Lock-step simulation of unordered / address-ordered variants."""
    v_total = len(variants)
    state = _LockStepState(variants, preps)
    cycles_out = np.zeros(v_total, dtype=np.int64)
    stats_out: Dict[int, Tuple[int, int]] = {}
    completions: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
    trace_rows: List[np.ndarray] = []
    issue_chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    cycle = 0
    pos = np.arange(state.D)[None, :]
    uniform_latency: Optional[int] = (
        int(state.latency[0])
        if v_total and bool(np.all(state.latency == state.latency[0]))
        else None
    )
    live = int(state.active.sum())
    guard_cycle = int(state.max_cycles.max()) if v_total else 0
    while live:
        if cycle > guard_cycle:
            # Some active variant exceeded the largest convergence bound;
            # pinpointing which one is error-path work, so the exact
            # per-variant check only runs here.
            if (state.active & (cycle > state.max_cycles)).any():
                raise SimulationError("SpMU simulation did not converge")

        _refill_lockstep(state, pos)

        v_rows = state.orig.size
        v2 = state.v2
        validq = pos < state.qn[:, None]
        qv = np.where(validq, state.qvec, 0)
        vb = state.pend[v2, qv]
        vb[~validq] = -1

        taken = np.zeros((v_rows, state.B), dtype=bool)
        if record_trace:
            cycle_counts = np.zeros(v_rows, dtype=np.int64)
        shallow = bool(state.qn.max(initial=0) <= 1)
        min_pos = None if shallow else _min_position_tensor(state, vb)
        for p in range(len(state.pass_eligible)):
            pass_row = state.active if p == 0 else state.active & state.pass_eligible[p]
            if shallow:
                gvi, gli, gbi = _allocate_shallow(state, vb, pass_row, taken)
            else:
                gvi, gli, gbi = _allocate_lockstep(
                    state, min_pos, p, pass_row, taken,
                    state.pass_has_sep[p], state.pass_has_greedy[p],
                )
            if not gvi.size:
                break
            if shallow:
                gdi = np.zeros(gvi.size, dtype=np.int64)
            else:
                gdi = min_pos[gvi, gli, gbi]
            gvecs = state.qvec[gvi, gdi]

            if state.has_ao:
                ao_sel = state.ao_row[gvi] >= 0
                if ao_sel.any():
                    arows = state.ao_row[gvi[ao_sel]]
                    av = gvecs[ao_sel]
                    al = gli[ao_sel]
                    s01 = state.s01[arows, av, al]
                    ok = (state.counters[arows[:, None], s01] > 0).all(axis=1)
                    np.subtract.at(
                        state.counters, (np.repeat(arows[ok], 2), s01[ok].ravel()), 1
                    )

            state.pend[gvi, gvecs, gli] = -1
            vb[gvi, gdi, gli] = -1
            if not shallow and p + 1 < len(state.pass_eligible):
                # Keep the min-age tensor valid for the next input-speedup
                # pass: only the issued (lane, bank) pairs can change, and
                # their new oldest bidder is re-derived from the gathered
                # pending-bank columns.
                cols = vb[gvi, :, gli]
                min_pos[gvi, gli, gbi] = np.where(
                    cols == gbi[:, None], pos, _NO_POS
                ).min(axis=1)
            counts = np.bincount(gvi, minlength=v_rows)
            state.executed += counts
            if record_trace:
                cycle_counts += counts
            if uniform_latency is not None:
                completions.setdefault(cycle + uniform_latency, []).append(
                    (state.orig[gvi], gvecs)
                )
            else:
                complete_at = cycle + state.latency[gvi]
                for c in np.unique(complete_at):
                    sel = complete_at == c
                    completions.setdefault(int(c), []).append(
                        (state.orig[gvi[sel]], gvecs[sel])
                    )
            if collect_issues:
                issue_chunks.append((state.orig[gvi], gvecs, gli))

        if record_trace:
            full = np.zeros(v_total, dtype=np.int64)
            full[state.orig] = cycle_counts
            trace_rows.append(full)

        retired = completions.pop(cycle, None)
        if retired is not None:
            for orig_ids, vecs in retired:
                rows = state.row_of[orig_ids]
                np.subtract.at(state.remaining, (rows, vecs), 1)

        # Queue occupancy is unchanged since the refill, so the gathered
        # (validq, qv) still describe it; a queue entry retires once all of
        # its kept requests completed (``remaining`` hits zero, i.e. no
        # pending requests and no in-flight completions). A variant can
        # only newly finish on a cycle that retired an entry.
        remove = validq & (state.remaining[v2, qv] == 0)
        cycle += 1
        if remove.any():
            keep_q = validq & ~remove
            order = np.argsort(~keep_q, axis=1, kind="stable")
            state.qvec = state.qvec[v2, order]
            state.qn = keep_q.sum(axis=1).astype(np.int64)

            finished = (
                state.active
                & (state.executed >= state.total)
                & (state.qn == 0)
                & (state.waiting >= state.nv)
            )
            if finished.any():
                cycles_out[state.orig[finished]] = cycle
                state.active &= ~finished
                live = int(state.active.sum())
                if live and live <= state.orig.size // 2 and state.orig.size > 4:
                    state.compact(cycles_out, stats_out)

    for j in range(state.orig.size):
        stats_out[state.orig[j]] = (int(state.executed[j]), int(state.stalls[j]))

    results: List[SimResult] = []
    trace_mat = np.array(trace_rows) if record_trace and trace_rows else None
    for i, (variant, prep) in enumerate(zip(variants, preps)):
        executed, stalls = stats_out[i]
        trace_arr = None
        if record_trace:
            cycles_i = int(cycles_out[i])
            if trace_mat is not None:
                trace_arr = trace_mat[:cycles_i, i].copy()
            else:
                trace_arr = np.zeros(0, dtype=np.int64)
        issue_vec = issue_lane = None
        if collect_issues:
            vec_parts = [vecs[orig_ids == i] for orig_ids, vecs, _ in issue_chunks]
            lane_parts = [lanes[orig_ids == i] for orig_ids, _, lanes in issue_chunks]
            issue_vec = (
                np.concatenate(vec_parts) if vec_parts else np.zeros(0, dtype=np.int64)
            )
            issue_lane = (
                np.concatenate(lane_parts) if lane_parts else np.zeros(0, dtype=np.int64)
            )
        results.append(
            SimResult(
                cycles=int(cycles_out[i]),
                requests=executed,
                elided_reads=prep.elided,
                bank_busy_cycles=executed,
                vectors=prep.n_vectors,
                stall_cycles_ordering=stalls,
                per_cycle_active_banks=trace_arr,
                issue_vectors=issue_vec,
                issue_lanes=issue_lane,
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Compiled single-variant backend
# --------------------------------------------------------------------------- #


def _simulate_scheduled_compiled(
    variants: Sequence[SpMUVariant], preps: Sequence[_PreparedTrace]
) -> List[SimResult]:
    """Run scheduled variants through the scalar per-cycle kernel.

    One :func:`~repro.core.spmu_kernel.simulate_scheduled_single` call per
    variant; with numba installed the kernel is JIT-compiled, without it
    the same function runs as plain Python (which is how the equivalence
    tests pin it against the lock-step engine). Trace recording and issue
    collection are not supported here -- callers route those to the
    lock-step engine.
    """
    from .spmu_kernel import simulate_scheduled_single

    results: List[SimResult] = []
    for variant, prep in zip(variants, preps):
        config = variant.config
        banks = config.banks
        pend = prep.bank_mat(variant.bank_mapping, banks).astype(np.int64)
        remaining = prep.kept_counts.astype(np.int64)
        is_ao = variant.ordering is OrderingMode.ADDRESS_ORDERED
        entries = config.bloom_filter_entries if is_ao else 1
        if is_ao and prep.n_vectors and prep.width:
            safe = np.where(prep.kept, prep.addr_mat, 0)
            slots0 = np.where(prep.kept, _bloom_slots(safe, entries, 0), 0)
            slots1 = np.where(prep.kept, _bloom_slots(safe, entries, 1), 0)
        else:
            slots0 = np.zeros(pend.shape, dtype=np.int64)
            slots1 = slots0
        if variant.allocator_kind == "separable":
            allocator = SeparableAllocator(
                lanes=variant.lanes,
                banks=banks,
                iterations=config.allocator_iterations,
                priorities=config.allocator_priorities,
                queue_depth=config.queue_depth,
            )
            cutoffs = np.asarray(allocator.age_cutoffs, dtype=np.int64)
        else:
            cutoffs = np.zeros(0, dtype=np.int64)
        cycles, executed, stalls = simulate_scheduled_single(
            pend,
            remaining,
            np.ascontiguousarray(slots0, dtype=np.int64),
            np.ascontiguousarray(slots1, dtype=np.int64),
            prep.has_dup.astype(np.int64),
            np.zeros(entries, dtype=np.int64),
            cutoffs,
            variant.allocator_kind == "separable",
            is_ao,
            prep.total_kept,
            config.queue_depth,
            banks,
            max(1, config.crossbar_inputs // variant.lanes),
            max(1, variant.pipeline_latency),
            64 * (prep.total_kept + prep.n_vectors + 8),
        )
        if cycles < 0:
            raise SimulationError("SpMU simulation did not converge")
        results.append(
            SimResult(
                cycles=int(cycles),
                requests=int(executed),
                elided_reads=prep.elided,
                bank_busy_cycles=int(executed),
                vectors=prep.n_vectors,
                stall_cycles_ordering=int(stalls),
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Public entry point
# --------------------------------------------------------------------------- #


def _paired_inputs(variants: Iterable[SpMUVariant], traces: Iterable[object]):
    """Zip variants with traces lazily, rejecting length mismatches."""
    variant_iter = iter(variants)
    trace_iter = iter(traces)
    sentinel = object()
    while True:
        variant = next(variant_iter, sentinel)
        trace = next(trace_iter, sentinel)
        if variant is sentinel and trace is sentinel:
            return
        if variant is sentinel or trace is sentinel:
            raise SimulationError("simulate_variants needs one trace per variant")
        yield variant, trace


def _variant_footprint(variant: SpMUVariant, prep: _PreparedTrace) -> int:
    """Rough lock-step working-set bytes one variant contributes.

    The dominant tensors are the pending-bank matrix, the gathered queue
    view, and the per-pass (lane, bank) min-age tensor; address-ordered
    variants add the Bloom slot tensor. The estimate only needs to be
    proportionate -- the budget planner divides it into the byte budget to
    size chunks.
    """
    nv = max(prep.n_vectors, 1)
    w = max(prep.width, 1)
    depth = variant.config.queue_depth
    banks = variant.config.banks
    footprint = nv * w * 2 + nv * 4  # pend row + remaining
    footprint += depth * w * 4  # gathered queue view + masks
    footprint += w * banks * 6  # min-age tensor + allocator matrices
    if variant.ordering is OrderingMode.ADDRESS_ORDERED:
        footprint += nv * w * 16 + nv * 8  # Bloom slots + duplicate flags
        footprint += variant.config.bloom_filter_entries * 4
    return max(footprint, 1024)


def _simulate_chunk(
    chunk: List[Tuple[SpMUVariant, _PreparedTrace]],
    record_trace: bool,
    collect_issues: bool,
    backend: str,
) -> List[SimResult]:
    """Simulate one chunk of (variant, prepared trace) pairs."""
    results: List[Optional[SimResult]] = [None] * len(chunk)
    scheduled: List[int] = []
    for i, (variant, prep) in enumerate(chunk):
        if variant.ordering is OrderingMode.ARBITRATED:
            results[i] = _simulate_arbitrated(variant, prep, record_trace, collect_issues)
        elif variant.ordering is OrderingMode.FULLY_ORDERED:
            results[i] = _simulate_fully_ordered(variant, prep, record_trace, collect_issues)
        else:
            scheduled.append(i)
    # Unordered and address-ordered variants share one lock-step loop: the
    # per-cycle tensor work is dominated by fixed per-operation overhead,
    # so batching every queue-scheduled variant into a single loop
    # amortizes it best (finished variants are compacted out of the tail).
    # The compiled backend instead runs each variant through the scalar
    # per-cycle kernel; it covers the stats-only path, so trace recording
    # and issue collection stay on the lock-step engine.
    if scheduled:
        sched_variants = [chunk[i][0] for i in scheduled]
        sched_preps = [chunk[i][1] for i in scheduled]
        if backend == "numba" and not record_trace and not collect_issues:
            batch = _simulate_scheduled_compiled(sched_variants, sched_preps)
        else:
            batch = _simulate_scheduled_lockstep(
                sched_variants, sched_preps, record_trace, collect_issues
            )
        for i, result in zip(scheduled, batch):
            results[i] = result
    return results  # type: ignore[return-value]


def simulate_variants(
    variants: Iterable[SpMUVariant],
    traces: Iterable[object],
    *,
    record_trace: bool = False,
    collect_issues: bool = False,
    backend: Optional[str] = None,
    memory_budget: Union[int, str, None] = None,
    chunk_variants: Optional[int] = None,
) -> List[SimResult]:
    """Simulate one request trace per variant, batched across variants.

    Args:
        variants: The SpMU configuration points to simulate. Any iterable
            (including a generator) is accepted; it is consumed lazily.
        traces: One :class:`~repro.core.spmu.RequestTrace` per variant
            (typically shared between variants with equal lane counts --
            shared trace objects are prepared once).
        record_trace: Collect the per-cycle active-bank trace.
        collect_issues: Collect every request's ``(vector, lane)`` issue
            coordinates in issue order (needed for functional execution).
        backend: ``None`` (process default), ``"numpy"`` (the lock-step
            engine), or ``"numba"`` (the compiled per-cycle kernel; falls
            back to numpy with a warning when numba is absent).
        memory_budget: Byte budget bounding the lock-step state; the
            variant grid is streamed through in budget-sized chunks whose
            results are bit-identical to one unchunked pass. ``None``
            defers to ``REPRO_MEMORY_BUDGET``.
        chunk_variants: Explicit chunk size in variants (overrides the
            cost model; mainly for the equivalence tests).

    Returns:
        One :class:`SimResult` per variant, stat-for-stat equal to the
        reference simulator on the same trace.
    """
    budget = resolve_memory_budget(memory_budget)
    backend = resolve_backend(backend, feature="SpMU scheduling")

    # Prepared traces are cached by trace identity; the trace object is
    # kept alongside so a caller-side generator cannot recycle an id.
    prep_cache: Dict[int, Tuple[object, _PreparedTrace]] = {}
    results: List[SimResult] = []
    chunk: List[Tuple[SpMUVariant, _PreparedTrace]] = []
    chunk_bytes = 0
    for variant, trace in _paired_inputs(variants, traces):
        cached = prep_cache.get(id(trace))
        if cached is None:
            cached = (trace, prepare_trace(trace))
            prep_cache[id(trace)] = cached
        prep = cached[1]
        _validate(variant, prep)
        footprint = _variant_footprint(variant, prep)
        if chunk and (
            (chunk_variants is not None and len(chunk) >= chunk_variants)
            or (budget is not None and chunk_bytes + footprint > budget)
        ):
            results.extend(_simulate_chunk(chunk, record_trace, collect_issues, backend))
            chunk = []
            chunk_bytes = 0
        chunk.append((variant, prep))
        chunk_bytes += footprint
    if chunk:
        results.extend(_simulate_chunk(chunk, record_trace, collect_issues, backend))
    return results
