"""Pointer-to-bit-vector format conversion hardware (Section 3.4).

Capstan's scanners operate on bit-vectors, but compressed pointer lists are
often more bandwidth-efficient to store in DRAM. Converting pointers to
bit-vectors inside the SpMU would require multiple read-modify-writes to
the same word (bank conflicts), so dedicated conversion hardware in the
compute tile performs the conversion as pointers stream in.

The model converts pointer tiles into bit-vector tiles, counts conversion
cycles (one pointer per lane per cycle), and reports the word-level write
conflicts that the dedicated hardware avoids relative to doing the same
conversion through the SpMU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..formats.bitvector import BitVector


@dataclass(frozen=True)
class ConversionStats:
    """Cost accounting for one pointer-to-bit-vector conversion.

    Attributes:
        pointers: Pointers converted.
        cycles: Conversion cycles (``ceil(pointers / lanes)``).
        words_written: 32-bit bit-vector words produced.
        spmu_word_conflicts: Same-word updates that would have collided had
            the conversion been done with SpMU read-modify-writes instead.
    """

    pointers: int
    cycles: int
    words_written: int
    spmu_word_conflicts: int


class FormatConverter:
    """Streaming pointer-to-bit-vector converter attached to a compute tile."""

    def __init__(self, lanes: int = 16, word_bits: int = 32):
        if lanes <= 0:
            raise SimulationError("lanes must be positive")
        if word_bits <= 0:
            raise SimulationError("word_bits must be positive")
        self._lanes = lanes
        self._word_bits = word_bits

    @property
    def lanes(self) -> int:
        """Pointers consumed per conversion cycle."""
        return self._lanes

    def convert(
        self,
        length: int,
        pointers: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> Tuple[BitVector, ConversionStats]:
        """Convert a pointer tile into a bit-vector tile.

        Args:
            length: Logical length of the output bit-vector.
            pointers: Sorted or unsorted unique pointer indices.
            values: Optional values aligned with ``pointers`` (defaults to 1).

        Returns:
            The bit-vector and the conversion cost statistics.
        """
        pointer_array = np.asarray(pointers, dtype=np.int64)
        if pointer_array.size and (
            pointer_array.min() < 0 or pointer_array.max() >= length
        ):
            raise SimulationError("pointer outside bit-vector length")
        if values is not None:
            value_array = np.asarray(values, dtype=np.float64)
            if value_array.size != pointer_array.size:
                raise SimulationError("values must align with pointers")
        else:
            value_array = None
        vector = BitVector(length, pointer_array, value_array)
        cycles = int(np.ceil(pointer_array.size / self._lanes)) if pointer_array.size else 0
        words_written = (length + self._word_bits - 1) // self._word_bits
        conflicts = self._count_spmu_conflicts(pointer_array)
        stats = ConversionStats(
            pointers=int(pointer_array.size),
            cycles=cycles,
            words_written=words_written,
            spmu_word_conflicts=conflicts,
        )
        return vector, stats

    def convert_many(
        self, length: int, pointer_tiles: List[np.ndarray]
    ) -> Tuple[List[BitVector], ConversionStats]:
        """Convert a sequence of pointer tiles, aggregating the statistics."""
        vectors: List[BitVector] = []
        pointers = 0
        cycles = 0
        words = 0
        conflicts = 0
        for tile in pointer_tiles:
            vector, stats = self.convert(length, tile)
            vectors.append(vector)
            pointers += stats.pointers
            cycles += stats.cycles
            words += stats.words_written
            conflicts += stats.spmu_word_conflicts
        return vectors, ConversionStats(
            pointers=pointers,
            cycles=cycles,
            words_written=words,
            spmu_word_conflicts=conflicts,
        )

    def _count_spmu_conflicts(self, pointers: np.ndarray) -> int:
        """Same-word collisions a vectorized SpMU conversion would incur.

        Processing ``lanes`` pointers per cycle, any two pointers in the same
        cycle that touch the same 32-bit word would serialize in the SpMU.
        """
        conflicts = 0
        for start in range(0, pointers.size, self._lanes):
            chunk_words = pointers[start : start + self._lanes] // self._word_bits
            unique = np.unique(chunk_words)
            conflicts += int(chunk_words.size - unique.size)
        return conflicts
