"""Pointer-to-bit-vector format conversion hardware (Section 3.4).

Capstan's scanners operate on bit-vectors, but compressed pointer lists are
often more bandwidth-efficient to store in DRAM. Converting pointers to
bit-vectors inside the SpMU would require multiple read-modify-writes to
the same word (bank conflicts), so dedicated conversion hardware in the
compute tile performs the conversion as pointers stream in.

The model converts pointer tiles into bit-vector tiles, counts conversion
cycles (one pointer per lane per cycle), and reports the word-level write
conflicts that the dedicated hardware avoids relative to doing the same
conversion through the SpMU.

:meth:`FormatConverter.convert_many` is batched: it validates the whole
tile set at once, packs every tile's occupancy words in one pass over the
packed-word substrate, and aggregates :class:`ConversionStats` (including
the SpMU conflict count, a single vectorized distinct-key reduction) without
per-tile Python work. The per-tile loop is retained as
:meth:`FormatConverter.convert_many_reference` for equivalence pinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .._budget import resolve_memory_budget
from ..errors import FormatError, SimulationError
from ..formats import packed
from ..formats.bitvector import BitVector


@dataclass(frozen=True)
class ConversionStats:
    """Cost accounting for one pointer-to-bit-vector conversion.

    Attributes:
        pointers: Pointers converted.
        cycles: Conversion cycles (``ceil(pointers / lanes)``).
        words_written: 32-bit bit-vector words produced.
        spmu_word_conflicts: Same-word updates that would have collided had
            the conversion been done with SpMU read-modify-writes instead.
    """

    pointers: int
    cycles: int
    words_written: int
    spmu_word_conflicts: int


class FormatConverter:
    """Streaming pointer-to-bit-vector converter attached to a compute tile."""

    def __init__(self, lanes: int = 16, word_bits: int = 32):
        if lanes <= 0:
            raise SimulationError("lanes must be positive")
        if word_bits <= 0:
            raise SimulationError("word_bits must be positive")
        self._lanes = lanes
        self._word_bits = word_bits

    @property
    def lanes(self) -> int:
        """Pointers consumed per conversion cycle."""
        return self._lanes

    def _words_per_tile(self, length: int) -> int:
        """Output words per converted tile of ``length`` bit positions."""
        return (length + self._word_bits - 1) // self._word_bits

    def convert(
        self,
        length: int,
        pointers: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> Tuple[BitVector, ConversionStats]:
        """Convert a pointer tile into a bit-vector tile.

        Args:
            length: Logical length of the output bit-vector.
            pointers: Sorted or unsorted unique pointer indices.
            values: Optional values aligned with ``pointers`` (defaults to 1).

        Returns:
            The bit-vector and the conversion cost statistics.
        """
        pointer_array = np.asarray(pointers, dtype=np.int64)
        if pointer_array.size and (
            pointer_array.min() < 0 or pointer_array.max() >= length
        ):
            raise SimulationError("pointer outside bit-vector length")
        if values is not None:
            value_array = np.asarray(values, dtype=np.float64)
            if value_array.size != pointer_array.size:
                raise SimulationError("values must align with pointers")
        else:
            value_array = None
        vector = BitVector(length, pointer_array, value_array)
        cycles = int(np.ceil(pointer_array.size / self._lanes)) if pointer_array.size else 0
        stats = ConversionStats(
            pointers=int(pointer_array.size),
            cycles=cycles,
            words_written=self._words_per_tile(length),
            spmu_word_conflicts=self._count_spmu_conflicts(pointer_array),
        )
        return vector, stats

    def convert_many(
        self,
        length: int,
        pointer_tiles: Iterable[np.ndarray],
        *,
        memory_budget: Optional[int] = None,
        chunk_tiles: Optional[int] = None,
    ) -> Tuple[List[BitVector], ConversionStats]:
        """Convert a sequence of pointer tiles, aggregating the statistics.

        All tiles share one validation pass, one packed-word build, and one
        conflict reduction; statistics (cycles, words written, conflicts)
        come out of closed-form array expressions instead of a per-tile
        accumulation loop.

        Args:
            length: Logical length of every output bit-vector.
            pointer_tiles: Pointer tiles; any iterable (consumed lazily when
                chunking, so generators stream without materializing).
            memory_budget: Byte budget for the batched build's working set;
                tiles are converted chunk by chunk under it. Conversion
                state restarts at tile boundaries and the statistics are
                per-tile sums, so the chunked result is identical to the
                unchunked one. ``None`` defers to ``REPRO_MEMORY_BUDGET``.
            chunk_tiles: Explicit chunk size in tiles (overrides the cost
                model; mainly for the equivalence tests).
        """
        budget = resolve_memory_budget(memory_budget)
        if budget is None and chunk_tiles is None:
            return self._convert_chunk(
                length, [np.asarray(tile, dtype=np.int64) for tile in pointer_tiles]
            )

        words_per_tile64 = packed.word_count(length)
        vectors: List[BitVector] = []
        totals = np.zeros(4, dtype=np.int64)
        chunk: List[np.ndarray] = []
        chunk_bytes = 0

        def _flush() -> None:
            nonlocal chunk, chunk_bytes
            chunk_vectors, stats = self._convert_chunk(length, chunk)
            vectors.extend(chunk_vectors)
            totals[0] += stats.pointers
            totals[1] += stats.cycles
            totals[2] += stats.words_written
            totals[3] += stats.spmu_word_conflicts
            chunk = []
            chunk_bytes = 0

        for tile in pointer_tiles:
            tile_array = np.asarray(tile, dtype=np.int64)
            # Packed words for the tile plus the flat sort/id temporaries.
            tile_bytes = words_per_tile64 * 8 + tile_array.size * 48 + 128
            if chunk and (
                (chunk_tiles is not None and len(chunk) >= chunk_tiles)
                or (budget is not None and chunk_bytes + tile_bytes > budget)
            ):
                _flush()
            chunk.append(tile_array)
            chunk_bytes += tile_bytes
        if chunk:
            _flush()
        return vectors, ConversionStats(
            pointers=int(totals[0]),
            cycles=int(totals[1]),
            words_written=int(totals[2]),
            spmu_word_conflicts=int(totals[3]),
        )

    def _convert_chunk(
        self, length: int, tile_arrays: List[np.ndarray]
    ) -> Tuple[List[BitVector], ConversionStats]:
        """The single-pass batched build over one chunk of tiles."""
        if any(tile.ndim != 1 for tile in tile_arrays):
            raise FormatError("bit-vector indices must be one-dimensional")
        sizes = np.asarray([tile.size for tile in tile_arrays], dtype=np.int64)
        n_tiles = int(sizes.size)
        if n_tiles == 0:
            return [], ConversionStats(0, 0, 0, 0)
        flat = (
            np.concatenate(tile_arrays)
            if sizes.sum()
            else np.empty(0, dtype=np.int64)
        )
        if flat.size and (flat.min() < 0 or flat.max() >= length):
            raise SimulationError("pointer outside bit-vector length")
        tile_ids = np.repeat(np.arange(n_tiles, dtype=np.int64), sizes)
        order = np.lexsort((flat, tile_ids))
        sorted_flat = flat[order]
        sorted_tiles = tile_ids[order]
        if flat.size > 1:
            duplicate = (sorted_flat[1:] == sorted_flat[:-1]) & (
                sorted_tiles[1:] == sorted_tiles[:-1]
            )
            if np.any(duplicate):
                raise FormatError("bit-vector indices must be unique")

        # One flat packed build covering every tile: bit position = tile row
        # times the padded tile width, plus the in-tile pointer.
        words_per_tile64 = packed.word_count(length)
        flat_bits = sorted_tiles * (words_per_tile64 * packed.WORD_BITS) + sorted_flat
        all_words = packed.pack_indices(
            flat_bits, n_tiles * words_per_tile64 * packed.WORD_BITS
        ).reshape(n_tiles, words_per_tile64)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        vectors = [
            BitVector._from_trusted(
                length,
                sorted_flat[offsets[i] : offsets[i + 1]],
                None,
                all_words[i],
            )
            for i in range(n_tiles)
        ]

        stats = ConversionStats(
            pointers=int(sizes.sum()),
            cycles=int(((sizes + self._lanes - 1) // self._lanes).sum()),
            words_written=n_tiles * self._words_per_tile(length),
            spmu_word_conflicts=self._count_conflicts_batch(flat, tile_ids, sizes),
        )
        return vectors, stats

    def convert_many_reference(
        self, length: int, pointer_tiles: Sequence[np.ndarray]
    ) -> Tuple[List[BitVector], ConversionStats]:
        """The retained tile-at-a-time conversion loop (equivalence reference)."""
        vectors: List[BitVector] = []
        pointers = 0
        cycles = 0
        words = 0
        conflicts = 0
        for tile in pointer_tiles:
            pointer_array = np.asarray(tile, dtype=np.int64)
            if pointer_array.size and (
                pointer_array.min() < 0 or pointer_array.max() >= length
            ):
                raise SimulationError("pointer outside bit-vector length")
            vectors.append(BitVector(length, pointer_array))
            pointers += int(pointer_array.size)
            cycles += (
                int(np.ceil(pointer_array.size / self._lanes))
                if pointer_array.size
                else 0
            )
            words += self._words_per_tile(length)
            conflicts += self._count_spmu_conflicts_reference(pointer_array)
        return vectors, ConversionStats(
            pointers=pointers,
            cycles=cycles,
            words_written=words,
            spmu_word_conflicts=conflicts,
        )

    def _count_spmu_conflicts(self, pointers: np.ndarray) -> int:
        """Same-word collisions a vectorized SpMU conversion would incur.

        Processing ``lanes`` pointers per cycle, any two pointers in the same
        cycle that touch the same 32-bit word would serialize in the SpMU.
        Conflicts are total pointers minus distinct ``(cycle, word)`` keys,
        counted in one vectorized unique pass.
        """
        if pointers.size == 0:
            return 0
        chunk_ids = np.arange(pointers.size, dtype=np.int64) // self._lanes
        words = pointers // self._word_bits
        keys = chunk_ids * self._words_per_tile(int(pointers.max()) + 1) + words
        return int(pointers.size - np.unique(keys).size)

    def _count_conflicts_batch(
        self, flat: np.ndarray, tile_ids: np.ndarray, sizes: np.ndarray
    ) -> int:
        """Aggregate SpMU conflicts across all tiles in one unique pass.

        Lane chunking restarts at every tile boundary, exactly as the
        per-tile conversion loop would chunk each tile independently.
        """
        if flat.size == 0:
            return 0
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        within_tile = np.arange(flat.size, dtype=np.int64) - offsets[tile_ids]
        chunk_ids = within_tile // self._lanes
        words = flat // self._word_bits
        words_bound = self._words_per_tile(int(flat.max()) + 1)
        chunks_bound = int(chunk_ids.max()) + 1
        keys = (tile_ids * chunks_bound + chunk_ids) * words_bound + words
        return int(flat.size - np.unique(keys).size)

    def _count_spmu_conflicts_reference(self, pointers: np.ndarray) -> int:
        """The retained per-chunk conflict loop (equivalence reference)."""
        conflicts = 0
        for start in range(0, pointers.size, self._lanes):
            chunk_words = pointers[start : start + self._lanes] // self._word_bits
            unique = np.unique(chunk_words)
            conflicts += int(chunk_words.size - unique.size)
        return conflicts
