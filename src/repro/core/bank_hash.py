"""Address-to-bank mapping schemes for the SpMU (Section 3.1).

Sparse applications with strided access patterns (e.g. convolution) are
pathological for a naive linear bank mapping: any stride of ``2**n`` with
``n >= log2(banks)`` maps every access to the same bank. Capstan therefore
hashes the address by XOR-folding 4-bit nibbles (``a[0:4] ^ a[4:8] ^ a[8:12]
^ a[12:16]``), which guarantees that any stride maps to sequential banks.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def linear_bank(address: int, banks: int) -> int:
    """Naive mapping: low ``log2(banks)`` address bits select the bank."""
    return int(address) % banks


def hashed_bank(address: int, banks: int) -> int:
    """XOR-folded nibble hash used by Capstan.

    The 16 low address bits are split into four 4-bit nibbles and XORed
    together; the result is reduced modulo the bank count. For the paper's
    16-bank configuration each nibble is exactly ``log2(banks)`` bits, so
    this is the hash described in Section 3.1.
    """
    addr = int(address) & 0xFFFF
    folded = (addr & 0xF) ^ ((addr >> 4) & 0xF) ^ ((addr >> 8) & 0xF) ^ ((addr >> 12) & 0xF)
    # Fold in higher address bits so capacities beyond 64K words still spread.
    folded ^= (int(address) >> 16) & 0xF
    return folded % banks


def hashed_banks_array(addresses: np.ndarray, banks: int) -> np.ndarray:
    """Vectorized :func:`hashed_bank` over an integer address array."""
    addr = np.asarray(addresses, dtype=np.int64)
    folded = (
        (addr & 0xF)
        ^ ((addr >> 4) & 0xF)
        ^ ((addr >> 8) & 0xF)
        ^ ((addr >> 12) & 0xF)
        ^ ((addr >> 16) & 0xF)
    )
    return (folded % banks).astype(np.int64)


def linear_banks_array(addresses: np.ndarray, banks: int) -> np.ndarray:
    """Vectorized :func:`linear_bank` over an integer address array."""
    return (np.asarray(addresses, dtype=np.int64) % banks).astype(np.int64)


BankMapper = Callable[[int, int], int]

ArrayBankMapper = Callable[[np.ndarray, int], np.ndarray]


def get_bank_mapper_array(name: str) -> ArrayBankMapper:
    """Look up the vectorized bank mapper by name: ``"hash"`` or ``"linear"``."""
    if name == "hash":
        return hashed_banks_array
    if name == "linear":
        return linear_banks_array
    raise ValueError(f"unknown bank mapping scheme {name!r}")


def get_bank_mapper(name: str) -> BankMapper:
    """Look up a bank mapper by name: ``"hash"`` or ``"linear"``."""
    if name == "hash":
        return hashed_bank
    if name == "linear":
        return linear_bank
    raise ValueError(f"unknown bank mapping scheme {name!r}")


def conflict_count(addresses: Sequence[int], banks: int, scheme: str = "hash") -> int:
    """Number of serialization cycles a single vector of addresses needs.

    This is the maximum number of requests mapped to any one bank, i.e. the
    cycles an arbitrated memory spends executing the vector.
    """
    mapper = get_bank_mapper(scheme)
    counts = np.zeros(banks, dtype=np.int64)
    for address in addresses:
        counts[mapper(int(address), banks)] += 1
    return int(counts.max()) if counts.size else 0
