"""Analytic energy model derived from the area model's component breakdown.

The paper reports chip power (174 W, Table 8) but no per-workload energy;
this module extends the calibrated area model in :mod:`repro.core.area`
into a first-order energy model so the design-space search can trade
energy against cycles and area. The model follows the usual
event-energy + static-power decomposition:

* every dynamic event (compute iteration, random SRAM access, scanner
  cycle, cross-tile shuffle request, DRAM byte/burst) carries a per-event
  energy calibrated at the paper's design point and scaled with the same
  structural parameters the area model scales with (SRAM access energy
  ~ sqrt(capacity), scheduler energy ~ Table 4 area, scanner energy
  ~ Table 5 area, shuffle energy ~ butterfly stage count);
* static energy is a fixed fraction of the area model's chip power
  integrated over the run's cycle count.

Per-pair estimates go through :func:`estimate_energy`;
:func:`estimate_energy_batch` costs a (profile x platform) grid in
vectorized passes that mirror the scalar operation order step for step,
so batch and per-call results are bit-identical (the same discipline as
:func:`~repro.apps.timing.estimate_cycles_batch`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..config import MemoryTechnology, SpMUConfig
from ..sim.dram import BURST_BYTES
from .area import CAPSTAN_CU_MM2, capstan_area, scanner_area_um2, scheduler_area_um2

# --------------------------------------------------------------------------- #
# Calibration constants (per-event energies at the paper's design point)
# --------------------------------------------------------------------------- #

#: Energy per useful innermost lane iteration (FMA plus operand movement),
#: in picojoules, at the default compute-unit design point.
COMPUTE_PJ = 2.4

#: Energy per random on-chip access of the default 256 KiB / 16-bank SpMU
#: SRAM array (bitlines + wordline + sense), in picojoules.
SRAM_ACCESS_PJ = 6.1

#: Energy per access through the SpMU scheduler (reorder queue, crossbar,
#: allocator) at the Table 4 16/16 design point, in picojoules.
SCHEDULER_PJ = 1.2

#: Energy per scanner-busy cycle of the default 256/16 scanner, in
#: picojoules.
SCAN_PJ = 8.5

#: Energy per cross-tile request through the 16-lane butterfly shuffle
#: network, in picojoules.
SHUFFLE_PJ = 3.0

#: Streaming DRAM energy per byte, by technology, in picojoules. DDR4's
#: long off-package traces dominate; HBM's TSV stacks are an order of
#: magnitude cheaper per bit. The ideal technology is free by definition.
DRAM_STREAM_PJ_PER_BYTE: Dict[MemoryTechnology, float] = {
    MemoryTechnology.DDR4: 150.0,
    MemoryTechnology.HBM2: 56.0,
    MemoryTechnology.HBM2E: 50.0,
    MemoryTechnology.IDEAL: 0.0,
}

#: Random (closed-page) burst energy overhead relative to streaming the
#: same bytes: activate/precharge on every burst roughly doubles the cost.
DRAM_RANDOM_OVERHEAD = 2.0

#: Fraction of the area model's chip power attributed to leakage plus
#: always-on clocking, integrated over the run as static energy.
STATIC_POWER_FRACTION = 0.30

#: Picojoules to millijoules.
_PJ_TO_MJ = 1e-9

#: Energy category names, in summation order (mirrored by the batch path).
ENERGY_CATEGORIES = ("compute", "sram", "scanner", "network", "dram", "static")

#: Default SpMU SRAM capacity the per-access energy is calibrated at.
_DEFAULT_SPMU_CAPACITY_BYTES = SpMUConfig().capacity_bytes


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-category energy of one (profile, platform) pair in millijoules."""

    compute: float = 0.0
    sram: float = 0.0
    scanner: float = 0.0
    network: float = 0.0
    dram: float = 0.0
    static: float = 0.0

    @property
    def total_mj(self) -> float:
        """Total energy, summed in :data:`ENERGY_CATEGORIES` order."""
        total = 0.0
        for name in ENERGY_CATEGORIES:
            total = total + getattr(self, name)
        return total

    def as_dict(self) -> Dict[str, float]:
        """Flatten the breakdown to a plain dictionary for reporting."""
        out = {name: getattr(self, name) for name in ENERGY_CATEGORIES}
        out["total_mj"] = self.total_mj
        return out


@dataclass(frozen=True)
class EnergyParams:
    """Per-platform event energies in millijoules (derived from the area
    model), plus the static energy per cycle.

    Both the scalar and the batch estimators resolve platforms through
    :func:`platform_energy_params`, so the two paths consume identical
    floats by construction.
    """

    compute_mj: float
    sram_mj: float
    scan_mj: float
    shuffle_mj: float
    dram_stream_mj_per_byte: float
    dram_random_mj: float
    static_mj_per_cycle: float


_PARAMS_CACHE: Dict[object, EnergyParams] = {}


def platform_energy_params(platform) -> EnergyParams:
    """Event energies for one :class:`~repro.apps.timing.CapstanPlatform`.

    Every per-event energy is the calibration constant scaled by the same
    structural ratio the area model uses for the corresponding component,
    so a design point that pays more area for a unit also pays more energy
    per event through it.
    """
    cached = _PARAMS_CACHE.get(platform)
    if cached is not None:
        return cached
    config = platform.config
    area = capstan_area(config)

    # Compute: scale with the modelled per-CU area (scanner-heavy CUs pay
    # slightly more per iteration through clock and operand distribution).
    compute_scale = area.compute_unit_each / CAPSTAN_CU_MM2
    compute_mj = COMPUTE_PJ * compute_scale * _PJ_TO_MJ

    # SRAM: array energy grows ~ sqrt(capacity) (bitline/wordline length),
    # scheduler energy tracks the Table 4 area fit.
    capacity_scale = math.sqrt(
        config.spmu.capacity_bytes / _DEFAULT_SPMU_CAPACITY_BYTES
    )
    scheduler_scale = scheduler_area_um2(
        config.spmu.queue_depth, config.spmu.crossbar_inputs, config.spmu.banks
    ) / scheduler_area_um2(16, 16)
    sram_mj = (
        SRAM_ACCESS_PJ * capacity_scale + SCHEDULER_PJ * scheduler_scale
    ) * _PJ_TO_MJ

    # Scanner: per-busy-cycle energy tracks the Table 5 area.
    scan_scale = scanner_area_um2(
        config.scanner.bit_width, config.scanner.output_vectorization
    ) / scanner_area_um2(256, 16)
    scan_mj = SCAN_PJ * scan_scale * _PJ_TO_MJ

    # Shuffle: a request traverses log2(lanes) butterfly stages (4 at the
    # 16-lane design point).
    shuffle_mj = SHUFFLE_PJ * (math.log2(config.lanes) / 4.0) * _PJ_TO_MJ

    # DRAM: per-byte streaming energy by technology; random bursts move a
    # full burst and pay the closed-page activate overhead.
    stream_pj = DRAM_STREAM_PJ_PER_BYTE[config.memory]
    dram_stream_mj = stream_pj * _PJ_TO_MJ
    dram_random_mj = BURST_BYTES * stream_pj * DRAM_RANDOM_OVERHEAD * _PJ_TO_MJ

    # Static: a fixed fraction of the area model's chip power, integrated
    # per cycle (W * s = J; x1000 to mJ).
    static_w = STATIC_POWER_FRACTION * area.power_w
    static_mj_per_cycle = static_w * (config.cycle_time_ns * 1e-9) * 1000.0

    params = EnergyParams(
        compute_mj=compute_mj,
        sram_mj=sram_mj,
        scan_mj=scan_mj,
        shuffle_mj=shuffle_mj,
        dram_stream_mj_per_byte=dram_stream_mj,
        dram_random_mj=dram_random_mj,
        static_mj_per_cycle=static_mj_per_cycle,
    )
    _PARAMS_CACHE[platform] = params
    return params


def estimate_energy(
    profile, platform=None, cycles: Optional[float] = None
) -> Tuple[float, EnergyBreakdown]:
    """Estimate end-to-end energy for one (profile, platform) pair.

    Args:
        profile: The application's platform-independent execution profile.
        platform: The Capstan configuration (defaults to the paper's HBM2E
            design point).
        cycles: End-to-end cycles of the run (for the static term); when
            ``None``, computed through
            :func:`~repro.apps.timing.estimate_cycles`.

    Returns:
        ``(total_mj, breakdown)`` with ``breakdown.total_mj == total_mj``.
    """
    from ..apps.timing import default_platform, estimate_cycles

    platform = platform or default_platform()
    if cycles is None:
        cycles, _ = estimate_cycles(profile, platform)
    params = platform_energy_params(platform)

    compute = profile.compute_iterations * params.compute_mj
    sram = profile.sram_random_accesses * params.sram_mj
    scanner = (profile.scan_cycles + profile.scan_empty_cycles) * params.scan_mj
    network = (
        profile.cross_tile_request_fraction * profile.sram_random_accesses
    ) * params.shuffle_mj

    stream_read = profile.dram_stream_read_bytes
    if platform.config.compression_enabled and profile.pointer_stream_bytes > 0:
        saved = profile.pointer_stream_bytes * (
            1.0 - 1.0 / max(profile.pointer_compression_ratio, 1.0)
        )
        stream_read = max(0.0, stream_read - saved)
    dram = (stream_read + profile.dram_stream_write_bytes) * params.dram_stream_mj_per_byte + (
        profile.dram_random_reads + 2 * profile.dram_random_updates
    ) * params.dram_random_mj

    static = cycles * params.static_mj_per_cycle

    breakdown = EnergyBreakdown(
        compute=compute,
        sram=sram,
        scanner=scanner,
        network=network,
        dram=dram,
        static=static,
    )
    return breakdown.total_mj, breakdown


@dataclass
class EnergyBatchResult:
    """Vectorized energy of a (profile x platform) grid in millijoules.

    ``total[i, j]`` equals ``estimate_energy(profiles[i], platforms[j],
    cycles=cycles[i, j])[0]`` exactly.
    """

    total: np.ndarray
    categories: Dict[str, np.ndarray]

    def breakdown(self, profile_index: int, platform_index: int) -> EnergyBreakdown:
        """The :class:`EnergyBreakdown` of one grid cell."""
        return EnergyBreakdown(
            **{
                name: float(self.categories[name][profile_index, platform_index])
                for name in ENERGY_CATEGORIES
            }
        )


def estimate_energy_batch(
    profiles: Sequence, platforms: Sequence, cycles: np.ndarray
) -> EnergyBatchResult:
    """Energy of every (profile, platform) pair of a grid.

    Per-platform event energies are resolved through the same
    :func:`platform_energy_params` cache as the scalar path and every
    arithmetic step mirrors :func:`estimate_energy`'s operation order, so
    each cell is bit-identical to the per-call estimate. Like the costing
    batch, every term is a per-profile column against a per-platform row
    -- no cross-platform reductions -- so platform-axis chunks concatenate
    bit-identically (streaming-safe under a memory budget).

    Args:
        profiles: Grid rows.
        platforms: Grid columns.
        cycles: End-to-end cycles per cell, shape
            ``(len(profiles), len(platforms))`` (the static-energy input;
            normally a :class:`~repro.apps.timing.BatchCostResult.cycles`).
    """
    n_profiles, n_platforms = len(profiles), len(platforms)
    cycles = np.asarray(cycles, dtype=np.float64)
    if cycles.shape != (n_profiles, n_platforms):
        raise ValueError(
            f"cycles shape {cycles.shape} does not match the "
            f"({n_profiles}, {n_platforms}) grid"
        )
    if n_profiles == 0 or n_platforms == 0:
        empty = {name: np.zeros((n_profiles, n_platforms)) for name in ENERGY_CATEGORIES}
        return EnergyBatchResult(total=np.zeros((n_profiles, n_platforms)), categories=empty)

    def fcol(values) -> np.ndarray:
        return np.array(values, dtype=np.float64).reshape(n_profiles, 1)

    def icol(values) -> np.ndarray:
        return np.array(values, dtype=np.int64).reshape(n_profiles, 1)

    def frow(values) -> np.ndarray:
        return np.array(values, dtype=np.float64).reshape(1, n_platforms)

    compute_iterations = icol([p.compute_iterations for p in profiles])
    sram_accesses = icol([p.sram_random_accesses for p in profiles])
    scan_total_cycles = icol([p.scan_cycles + p.scan_empty_cycles for p in profiles])
    cross_requests = fcol(
        [p.cross_tile_request_fraction * p.sram_random_accesses for p in profiles]
    )
    stream_read_bytes = fcol([p.dram_stream_read_bytes for p in profiles])
    stream_write_bytes = fcol([p.dram_stream_write_bytes for p in profiles])
    dram_accesses = icol(
        [p.dram_random_reads + 2 * p.dram_random_updates for p in profiles]
    )

    def _compressed_stream_read(p) -> float:
        stream_read = p.dram_stream_read_bytes
        if p.pointer_stream_bytes > 0:
            saved = p.pointer_stream_bytes * (
                1.0 - 1.0 / max(p.pointer_compression_ratio, 1.0)
            )
            stream_read = max(0.0, stream_read - saved)
        return stream_read

    compressed_read_bytes = fcol([_compressed_stream_read(p) for p in profiles])

    params = [platform_energy_params(p) for p in platforms]
    compute_mj = frow([q.compute_mj for q in params])
    sram_mj = frow([q.sram_mj for q in params])
    scan_mj = frow([q.scan_mj for q in params])
    shuffle_mj = frow([q.shuffle_mj for q in params])
    stream_mj = frow([q.dram_stream_mj_per_byte for q in params])
    random_mj = frow([q.dram_random_mj for q in params])
    static_mj = frow([q.static_mj_per_cycle for q in params])
    compression = np.array(
        [p.config.compression_enabled for p in platforms], dtype=bool
    ).reshape(1, n_platforms)

    compute = compute_iterations * compute_mj
    sram = sram_accesses * sram_mj
    scanner = scan_total_cycles * scan_mj
    network = cross_requests * shuffle_mj
    stream_read = np.where(compression, compressed_read_bytes, stream_read_bytes)
    dram = (stream_read + stream_write_bytes) * stream_mj + dram_accesses * random_mj
    static = cycles * static_mj

    categories = {
        "compute": compute,
        "sram": sram,
        "scanner": scanner,
        "network": network,
        "dram": dram,
        "static": static,
    }
    # Total in ENERGY_CATEGORIES order, matching EnergyBreakdown.total_mj.
    total = np.zeros((n_profiles, n_platforms))
    for name in ENERGY_CATEGORIES:
        total = total + categories[name]
    return EnergyBatchResult(total=total, categories=categories)
