"""Compute unit (CU) model (Section 4.1, "Flexible Parallelism").

Each CU has 16 vector lanes and 6 pipeline stages; each stage performs a map
or reduce operation on 32-bit fixed- or floating-point data. Loops can be
parallelized within a vector (inner-par), across multiple vectorized CUs
(outer-par), and through streaming inter-CU pipelines. Loops execute at
most once per cycle, so an iteration count that is not a multiple of the
lane count leaves lanes inactive -- the "Vector Length" stall source in
Figure 7.

The CU model is deliberately lightweight: applications report how many
map/reduce iterations they execute and with what vector occupancy, and the
CU converts those into cycles and lane-activity statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..errors import SimulationError


@dataclass
class LaneActivity:
    """Lane-activity accounting for one compute unit or pipeline stage.

    Attributes:
        cycles: Vector issue slots consumed.
        active_lane_cycles: Lane-cycles doing useful work.
        lanes: Vector width.
    """

    lanes: int = 16
    cycles: int = 0
    active_lane_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of lane-cycles that were active."""
        total = self.cycles * self.lanes
        return self.active_lane_cycles / total if total else 0.0

    def merge(self, other: "LaneActivity") -> "LaneActivity":
        """Combine two activity records (same lane width required)."""
        if self.lanes != other.lanes:
            raise SimulationError("cannot merge activity with different lane counts")
        return LaneActivity(
            lanes=self.lanes,
            cycles=self.cycles + other.cycles,
            active_lane_cycles=self.active_lane_cycles + other.active_lane_cycles,
        )


class ComputeUnit:
    """One vectorized compute unit executing map/reduce loop bodies."""

    def __init__(self, lanes: int = 16, stages: int = 6):
        if lanes <= 0 or stages <= 0:
            raise SimulationError("lanes and stages must be positive")
        self._lanes = lanes
        self._stages = stages
        self._activity = LaneActivity(lanes=lanes)

    @property
    def lanes(self) -> int:
        """Vector width of the unit."""
        return self._lanes

    @property
    def stages(self) -> int:
        """Pipeline depth of the unit."""
        return self._stages

    @property
    def activity(self) -> LaneActivity:
        """Accumulated lane activity for this unit."""
        return self._activity

    def reset(self) -> None:
        """Clear accumulated activity."""
        self._activity = LaneActivity(lanes=self._lanes)

    def map_cycles(self, iterations: int) -> int:
        """Cycles to execute ``iterations`` independent loop-body iterations.

        Iterations are packed ``lanes`` per cycle; a remainder leaves lanes
        idle in the final cycle (vector-length underutilization).
        """
        if iterations < 0:
            raise SimulationError("iterations must be non-negative")
        if iterations == 0:
            return 0
        cycles = (iterations + self._lanes - 1) // self._lanes
        self._activity.cycles += cycles
        self._activity.active_lane_cycles += iterations
        return cycles

    def map_cycles_ragged(self, iteration_counts: Iterable[int]) -> int:
        """Cycles for a nested loop whose inner trip count varies per outer
        iteration (e.g. per-row non-zero counts).

        Each outer iteration occupies ``ceil(count / lanes)`` cycles, or one
        cycle if the count is zero (the loop header still issues).
        """
        total = 0
        for count in iteration_counts:
            if count < 0:
                raise SimulationError("iteration counts must be non-negative")
            cycles = max(1, (count + self._lanes - 1) // self._lanes)
            total += cycles
            self._activity.cycles += cycles
            self._activity.active_lane_cycles += count
        return total

    def reduce_cycles(self, elements: int) -> int:
        """Cycles for a vectorized tree reduction over ``elements`` values.

        The vector reduce network folds ``lanes`` elements per cycle plus a
        ``log2(lanes)`` tail for the final tree.
        """
        if elements < 0:
            raise SimulationError("elements must be non-negative")
        if elements == 0:
            return 0
        vector_cycles = (elements + self._lanes - 1) // self._lanes
        tail = max(1, self._lanes.bit_length() - 1)
        cycles = vector_cycles + tail
        self._activity.cycles += cycles
        self._activity.active_lane_cycles += elements
        return cycles

    def pipeline_fill_cycles(self) -> int:
        """Cycles to fill the CU pipeline (paid once per streaming region)."""
        return self._stages


@dataclass
class OuterParallelism:
    """Work distribution across outer-parallel CU instances.

    Capstan applications parallelize outer loops across multiple CU/SpMU
    pairs; uneven tile sizes cause the "Imbalance" stall source of Figure 7.

    Attributes:
        per_unit_cycles: Cycles each parallel unit needs for its share.
    """

    per_unit_cycles: List[int] = field(default_factory=list)

    @property
    def units(self) -> int:
        """Number of parallel units."""
        return len(self.per_unit_cycles)

    @property
    def critical_path_cycles(self) -> int:
        """Cycles until the slowest unit finishes (the makespan)."""
        return max(self.per_unit_cycles) if self.per_unit_cycles else 0

    @property
    def total_work_cycles(self) -> int:
        """Sum of all units' busy cycles."""
        return sum(self.per_unit_cycles)

    @property
    def imbalance_cycles(self) -> int:
        """Cycles lost to load imbalance relative to a perfect partition."""
        if not self.per_unit_cycles:
            return 0
        ideal = (self.total_work_cycles + self.units - 1) // self.units
        return max(0, self.critical_path_cycles - ideal)

    @property
    def imbalance_fraction(self) -> float:
        """Imbalance cycles as a fraction of the critical path."""
        critical = self.critical_path_cycles
        return self.imbalance_cycles / critical if critical else 0.0


def distribute_work(work_items: Iterable[int], units: int) -> OuterParallelism:
    """Round-robin work items across ``units`` and report the distribution.

    Args:
        work_items: Cycle cost of each indivisible work item (e.g. one
            matrix row or graph tile).
        units: Number of outer-parallel units available.
    """
    if units <= 0:
        raise SimulationError("units must be positive")
    buckets = [0] * units
    for index, cost in enumerate(work_items):
        if cost < 0:
            raise SimulationError("work item cost must be non-negative")
        buckets[index % units] += cost
    return OuterParallelism(per_unit_cycles=buckets)
