"""DRAM address generators (AGs) with atomic off-chip access support
(Section 3.4).

Capstan's AGs issue burst-level (64 B) requests to the memory controller.
For atomic DRAM updates each AG tracks the bursts it currently has in
flight: an arriving request vector is checked against pending bursts, new
bursts are fetched if needed, the relevant read-modify-write operations
execute against the buffered burst, and the burst is written back --
guaranteeing that reads never race writes. The shuffle network assigns each
AG a mutually exclusive address region, so no cross-AG coherence is needed.

The model here is functional-plus-counting: it performs the RMW updates on a
backing array (standing in for DRAM contents) while counting bursts fetched,
bursts written back, row-buffer-friendly (sequential) bursts, and coalesced
requests. The DRAM timing model (:mod:`repro.sim.dram`) converts those
counts into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .spmu import MemoryRequest, RMWOp


@dataclass
class AGStats:
    """Traffic statistics for one address generator.

    Attributes:
        requests: Individual element requests processed.
        bursts_read: 64 B bursts fetched from DRAM.
        bursts_written: 64 B bursts written back to DRAM.
        coalesced_requests: Requests that hit a burst already in flight.
        read_after_write_stalls: Requests that had to wait for a pending
            write-back of the same burst before re-reading it.
        sequential_bursts: Bursts whose address immediately follows the
            previously fetched burst (row-buffer friendly traffic).
    """

    requests: int = 0
    bursts_read: int = 0
    bursts_written: int = 0
    coalesced_requests: int = 0
    read_after_write_stalls: int = 0
    sequential_bursts: int = 0

    @property
    def bytes_read(self) -> int:
        """Total bytes fetched from DRAM."""
        return self.bursts_read * DRAMAddressGenerator.BURST_BYTES

    @property
    def bytes_written(self) -> int:
        """Total bytes written back to DRAM."""
        return self.bursts_written * DRAMAddressGenerator.BURST_BYTES

    @property
    def total_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "AGStats") -> "AGStats":
        """Element-wise sum of two stats records."""
        return AGStats(
            requests=self.requests + other.requests,
            bursts_read=self.bursts_read + other.bursts_read,
            bursts_written=self.bursts_written + other.bursts_written,
            coalesced_requests=self.coalesced_requests + other.coalesced_requests,
            read_after_write_stalls=self.read_after_write_stalls + other.read_after_write_stalls,
            sequential_bursts=self.sequential_bursts + other.sequential_bursts,
        )


class DRAMAddressGenerator:
    """One DRAM AG: burst tracking, atomic RMW, and traffic accounting.

    Args:
        region_words: Number of 32-bit words in this AG's exclusive region.
        burst_tracking_entries: Maximum bursts held in the pending-burst
            buffer before the oldest is written back.
        backing: Optional pre-initialised backing array for the region.
    """

    BURST_BYTES = 64
    WORDS_PER_BURST = BURST_BYTES // 4

    def __init__(
        self,
        region_words: int,
        burst_tracking_entries: int = 16,
        backing: Optional[np.ndarray] = None,
    ):
        if region_words <= 0:
            raise SimulationError("region_words must be positive")
        if burst_tracking_entries <= 0:
            raise SimulationError("burst_tracking_entries must be positive")
        self._region_words = region_words
        self._max_pending = burst_tracking_entries
        if backing is None:
            self._data = np.zeros(region_words, dtype=np.float64)
        else:
            backing = np.asarray(backing, dtype=np.float64)
            if backing.size != region_words:
                raise SimulationError("backing array size must equal region_words")
            self._data = backing.copy()
        self._pending: Dict[int, bool] = {}  # burst id -> dirty flag
        self._last_burst: Optional[int] = None
        self._stats = AGStats()

    @property
    def stats(self) -> AGStats:
        """Traffic statistics accumulated so far."""
        return self._stats

    @property
    def region_words(self) -> int:
        """Words covered by this AG's exclusive region."""
        return self._region_words

    def data(self) -> np.ndarray:
        """A copy of the region contents (after draining pending bursts)."""
        return self._data.copy()

    def load(self, base: int, values: np.ndarray) -> None:
        """Initialise region contents without generating traffic."""
        values = np.asarray(values, dtype=np.float64)
        if base < 0 or base + values.size > self._region_words:
            raise SimulationError("load outside AG region")
        self._data[base : base + values.size] = values

    def process_vector(self, requests: Iterable[MemoryRequest]) -> List[float]:
        """Execute a vector of element requests atomically against DRAM.

        Returns the per-request returned values (old value, new value, or
        changed flag depending on the RMW op -- the same semantics as the
        SpMU FPU).
        """
        returned: List[float] = []
        for request in requests:
            returned.append(self._process_request(request))
        return returned

    def read_sequential(self, base_word: int, count_words: int) -> np.ndarray:
        """Stream ``count_words`` sequential words, counting burst traffic."""
        if base_word < 0 or base_word + count_words > self._region_words:
            raise SimulationError("sequential read outside AG region")
        first_burst = base_word // self.WORDS_PER_BURST
        last_burst = (base_word + max(count_words, 1) - 1) // self.WORDS_PER_BURST
        for burst in range(first_burst, last_burst + 1):
            self._count_burst_read(burst)
        self._stats.requests += count_words
        return self._data[base_word : base_word + count_words].copy()

    def write_sequential(self, base_word: int, values: np.ndarray) -> None:
        """Stream ``values`` to sequential words, counting burst traffic."""
        values = np.asarray(values, dtype=np.float64)
        if base_word < 0 or base_word + values.size > self._region_words:
            raise SimulationError("sequential write outside AG region")
        self._data[base_word : base_word + values.size] = values
        first_burst = base_word // self.WORDS_PER_BURST
        last_burst = (base_word + max(values.size, 1) - 1) // self.WORDS_PER_BURST
        self._stats.bursts_written += last_burst - first_burst + 1
        self._stats.requests += values.size

    def drain(self) -> None:
        """Write back every pending dirty burst."""
        for burst, dirty in list(self._pending.items()):
            if dirty:
                self._stats.bursts_written += 1
        self._pending.clear()

    # ------------------------------------------------------------------ #

    def _process_request(self, request: MemoryRequest) -> float:
        address = request.address
        if address < 0 or address >= self._region_words:
            raise SimulationError(f"address {address} outside AG region")
        burst = address // self.WORDS_PER_BURST
        self._stats.requests += 1
        if burst in self._pending:
            self._stats.coalesced_requests += 1
        else:
            if len(self._pending) >= self._max_pending:
                self._evict_oldest()
            self._count_burst_read(burst)
            self._pending[burst] = False

        old = float(self._data[address])
        op = request.op
        value = request.value
        new = old
        result = old
        if op is RMWOp.READ:
            pass
        elif op is RMWOp.WRITE:
            new = value
        elif op is RMWOp.ADD:
            new = old + value
            result = new
        elif op is RMWOp.SUB:
            new = old - value
            result = new
        elif op is RMWOp.MIN_REPORT_CHANGED:
            new = min(old, value)
            result = 1.0 if new != old else 0.0
        elif op is RMWOp.MAX:
            new = max(old, value)
            result = new
        elif op is RMWOp.SWAP:
            new = value
            result = old
        elif op is RMWOp.TEST_AND_SET:
            new = 1.0
            result = old
        elif op is RMWOp.WRITE_IF_ZERO:
            if old == 0.0:
                new = value
            result = old
        elif op is RMWOp.BIT_OR:
            new = float(int(old) | int(value))
            result = new
        elif op is RMWOp.BIT_AND:
            new = float(int(old) & int(value))
            result = new
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unsupported RMW op {op}")
        if op.modifies_memory and new != old:
            self._data[address] = new
            self._pending[burst] = True
        return result

    def _count_burst_read(self, burst: int) -> None:
        self._stats.bursts_read += 1
        if self._last_burst is not None and burst == self._last_burst + 1:
            self._stats.sequential_bursts += 1
        self._last_burst = burst

    def _evict_oldest(self) -> None:
        burst, dirty = next(iter(self._pending.items()))
        if dirty:
            self._stats.bursts_written += 1
            self._stats.read_after_write_stalls += 1
        del self._pending[burst]


@dataclass
class PartitionedDRAM:
    """A set of AGs, each owning a mutually exclusive address region.

    The shuffle network guarantees each AG sees only its own region;
    here partitioning is by contiguous word ranges of equal size.
    """

    total_words: int
    generators: int = 80
    burst_tracking_entries: int = 16
    _ags: List[DRAMAddressGenerator] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.total_words <= 0 or self.generators <= 0:
            raise SimulationError("total_words and generators must be positive")
        self._region = (self.total_words + self.generators - 1) // self.generators
        self._ags = [
            DRAMAddressGenerator(self._region, self.burst_tracking_entries)
            for _ in range(self.generators)
        ]

    def ag_for(self, address: int) -> Tuple[int, int]:
        """Return ``(ag_index, local_address)`` for a global word address."""
        if address < 0 or address >= self.total_words:
            raise SimulationError(f"address {address} outside DRAM")
        return address // self._region, address % self._region

    def process(self, requests: Iterable[MemoryRequest]) -> List[float]:
        """Route element requests to their owning AGs and execute them."""
        results: List[float] = []
        for request in requests:
            ag_index, local = self.ag_for(request.address)
            local_request = MemoryRequest(
                address=local, op=request.op, value=request.value, lane=request.lane
            )
            results.extend(self._ags[ag_index].process_vector([local_request]))
        return results

    def combined_stats(self) -> AGStats:
        """Aggregate traffic statistics across all AGs."""
        combined = AGStats()
        for ag in self._ags:
            combined = combined.merge(ag.stats)
        return combined

    def generator(self, index: int) -> DRAMAddressGenerator:
        """Access one AG by index."""
        return self._ags[index]
