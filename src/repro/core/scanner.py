"""Sparse loop headers: the bit-vector and data scanners (Section 3.3).

The scanner implements Capstan's vectorized sparse iteration. Each cycle the
bit-vector scanner:

1. computes the intersection or union of two input bit-vector tiles,
2. selects the first ``output_vectorization`` (16) set bits of the result,
3. encodes them into dense indices ``j``,
4. looks up prefix sums over each input to produce compressed indices
   ``jA`` / ``jB`` (or ``-1`` for a side that is absent, union mode only),
   and the running dense counter ``j'``.

The data scanner is the scalar fallback that finds one non-zero 32-bit
element in a 16-element vector per cycle; it is used in outer loops only.

This module provides both a *functional* scan (produce all iteration tuples
for correctness) and a *timing* scan (how many cycles the hardware needs to
stream a pair of bit-vectors through a scanner of a given configuration),
which together drive the applications and the Figure 6 sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from ..config import ScannerConfig
from ..errors import SimulationError
from ..formats.bitvector import BitVector


class ScanMode(Enum):
    """Set operation applied to the two scanned bit-vectors."""

    INTERSECT = "intersect"
    UNION = "union"
    SINGLE = "single"


@dataclass(frozen=True)
class ScanElement:
    """One sparse loop iteration produced by the scanner.

    Attributes:
        dense_index: The dense position ``j`` in the original index space.
        ordinal: The running counter ``j'`` over scan outputs (0, 1, 2, ...).
        index_a: Compressed index ``jA`` into the first operand's value
            array, or ``-1`` if the bit is absent from that operand.
        index_b: Compressed index ``jB`` into the second operand's value
            array, or ``-1`` if absent (or the scan is single-operand).
    """

    dense_index: int
    ordinal: int
    index_a: int
    index_b: int


@dataclass(frozen=True)
class ScanTiming:
    """Cycle cost of streaming a scan through the scanner hardware.

    Attributes:
        cycles: Total scanner-occupied cycles.
        elements: Number of iteration tuples produced.
        bit_chunks: Number of ``bit_width`` input chunks consumed.
        output_limited_cycles: Cycles where the output vectorization (not
            the input width) was the bottleneck.
        empty_chunks: Input chunks that contained no set bits (pure
            scanning overhead; these are the "Scan" stalls of Figure 7).
    """

    cycles: int
    elements: int
    bit_chunks: int
    output_limited_cycles: int
    empty_chunks: int

    @property
    def elements_per_cycle(self) -> float:
        """Average iteration throughput of the scan."""
        return self.elements / self.cycles if self.cycles else 0.0


class BitVectorScanner:
    """Vectorized sparse loop header operating on bit-vector operands."""

    def __init__(self, config: Optional[ScannerConfig] = None):
        self._config = config or ScannerConfig()
        self._config.validate()

    @property
    def config(self) -> ScannerConfig:
        """The scanner's width/vectorization configuration."""
        return self._config

    def scan(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> List[ScanElement]:
        """Produce the full list of iteration tuples for a sparse loop.

        Args:
            vector_a: First operand.
            vector_b: Second operand; required unless ``mode`` is ``SINGLE``.
            mode: Intersection, union, or single-operand scan.

        Returns:
            Iteration tuples ordered by dense index, exactly the values a
            nested ``Foreach(Scan(...))`` loop body would observe.
        """
        mask, a_positions, b_positions = self._combine(vector_a, vector_b, mode)
        elements: List[ScanElement] = []
        set_bits = np.nonzero(mask)[0]
        for ordinal, dense_index in enumerate(set_bits.tolist()):
            elements.append(
                ScanElement(
                    dense_index=int(dense_index),
                    ordinal=ordinal,
                    index_a=int(a_positions[dense_index]),
                    index_b=int(b_positions[dense_index]),
                )
            )
        return elements

    def count(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> int:
        """Number of iterations the scan would produce.

        The hardware writes this count into the counter chain in the first
        cycle so one scanner can feed multiple counter levels.
        """
        mask, _, _ = self._combine(vector_a, vector_b, mode)
        return int(np.count_nonzero(mask))

    def timing(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> ScanTiming:
        """Cycle cost of streaming this scan through the configured scanner.

        The scanner consumes ``bit_width`` bits of the (combined) mask per
        cycle and emits at most ``output_vectorization`` set bits per cycle;
        a chunk with more set bits than the output width occupies multiple
        cycles, and an all-zero chunk still costs one cycle.
        """
        mask, _, _ = self._combine(vector_a, vector_b, mode)
        return scan_timing_from_mask(mask, self._config)

    def _combine(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector],
        mode: ScanMode,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the combined mask and per-position compressed indices."""
        if mode is ScanMode.SINGLE or vector_b is None:
            if mode is not ScanMode.SINGLE and vector_b is None:
                raise SimulationError("two-operand scan requires vector_b")
            mask = vector_a.mask
            a_positions = _prefix_positions(mask, mask)
            b_positions = np.full(mask.size, -1, dtype=np.int64)
            return mask, a_positions, b_positions
        if vector_a.length != vector_b.length:
            raise SimulationError(
                f"scan operands must have equal length: "
                f"{vector_a.length} vs {vector_b.length}"
            )
        mask_a = vector_a.mask
        mask_b = vector_b.mask
        if mode is ScanMode.INTERSECT:
            mask = mask_a & mask_b
        elif mode is ScanMode.UNION:
            mask = mask_a | mask_b
        else:
            raise SimulationError(f"unsupported scan mode {mode}")
        a_positions = _prefix_positions(mask_a, mask)
        b_positions = _prefix_positions(mask_b, mask)
        return mask, a_positions, b_positions


class DataScanner:
    """Scalar data scanner: finds non-zero elements, one per cycle.

    The data scanner examines ``data_width`` (16) 32-bit elements per cycle
    and emits one non-zero element per cycle, so its throughput can never
    exceed one iteration per cycle; it is only used for outer loops.
    """

    def __init__(self, config: Optional[ScannerConfig] = None):
        self._config = config or ScannerConfig()
        self._config.validate()

    @property
    def config(self) -> ScannerConfig:
        """The scanner's width configuration."""
        return self._config

    def scan(self, values: np.ndarray) -> List[Tuple[int, float]]:
        """Return ``(index, value)`` pairs of non-zero elements in order."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise SimulationError("data scanner operates on 1-D vectors")
        indices = np.nonzero(array)[0]
        return [(int(i), float(array[i])) for i in indices.tolist()]

    def timing_cycles(self, values: np.ndarray) -> int:
        """Cycles to scan ``values``: one per emitted non-zero, plus one per
        all-zero ``data_width`` chunk traversed."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise SimulationError("data scanner operates on 1-D vectors")
        width = self._config.data_width
        cycles = 0
        for start in range(0, array.size, width):
            chunk = array[start : start + width]
            nonzeros = int(np.count_nonzero(chunk))
            cycles += max(1, nonzeros)
        return cycles


def scan_timing_from_mask(mask: np.ndarray, config: ScannerConfig) -> ScanTiming:
    """Compute scanner cycle cost for a combined occupancy mask.

    This is shared by the bit-vector scanner and by application timing
    models that already have the combined mask in hand.
    """
    mask = np.asarray(mask, dtype=bool)
    width = config.bit_width
    out_width = config.output_vectorization
    cycles = 0
    elements = 0
    bit_chunks = 0
    output_limited = 0
    empty_chunks = 0
    for start in range(0, max(mask.size, 1), width):
        chunk = mask[start : start + width]
        bit_chunks += 1
        set_bits = int(np.count_nonzero(chunk))
        if set_bits == 0:
            cycles += 1
            empty_chunks += 1
            continue
        chunk_cycles = (set_bits + out_width - 1) // out_width
        if chunk_cycles > 1:
            output_limited += chunk_cycles - 1
        cycles += chunk_cycles
        elements += set_bits
    return ScanTiming(
        cycles=cycles,
        elements=elements,
        bit_chunks=bit_chunks,
        output_limited_cycles=output_limited,
        empty_chunks=empty_chunks,
    )


def _prefix_positions(operand_mask: np.ndarray, output_mask: np.ndarray) -> np.ndarray:
    """Map each output position to its compressed index in the operand.

    Positions where the operand bit is clear map to ``-1`` (union mode).
    The hardware implements this with a prefix sum over the operand mask.
    """
    prefix = np.cumsum(operand_mask.astype(np.int64)) - 1
    positions = np.where(operand_mask, prefix, -1)
    # Positions outside the output mask are irrelevant; leave them as
    # computed so callers can index by dense position directly.
    return positions.astype(np.int64)
