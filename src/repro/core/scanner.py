"""Sparse loop headers: the bit-vector and data scanners (Section 3.3).

The scanner implements Capstan's vectorized sparse iteration. Each cycle the
bit-vector scanner:

1. computes the intersection or union of two input bit-vector tiles,
2. selects the first ``output_vectorization`` (16) set bits of the result,
3. encodes them into dense indices ``j``,
4. looks up prefix sums over each input to produce compressed indices
   ``jA`` / ``jB`` (or ``-1`` for a side that is absent, union mode only),
   and the running dense counter ``j'``.

The data scanner is the scalar fallback that finds one non-zero 32-bit
element in a 16-element vector per cycle; it is used in outer loops only.

This module provides both a *functional* scan (produce all iteration tuples
for correctness) and a *timing* scan (how many cycles the hardware needs to
stream a pair of bit-vectors through a scanner of a given configuration),
which together drive the applications and the Figure 6 sensitivity study.

Both are array-native: :meth:`BitVectorScanner.scan_batch` combines the
operands' packed occupancy words and returns a columnar :class:`ScanBatch`
(dense index / ordinal / compressed index arrays), and all cycle accounting
is a bincount over set-bit positions. The element-at-a-time paths are
retained (:meth:`BitVectorScanner.scan_reference`,
:func:`scan_timing_from_mask_reference`) so property tests can pin the two
representations tuple for tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from .._budget import plan_chunks, resolve_memory_budget
from ..config import ScannerConfig
from ..errors import SimulationError
from ..formats import packed
from ..formats.bitvector import BitVector

#: Working-set bytes one dense position contributes to a chunked scan
#: (candidate slices, membership masks, and compressed-index temporaries).
SCAN_BYTES_PER_POSITION = 64


class ScanMode(Enum):
    """Set operation applied to the two scanned bit-vectors."""

    INTERSECT = "intersect"
    UNION = "union"
    SINGLE = "single"


@dataclass(frozen=True)
class ScanElement:
    """One sparse loop iteration produced by the scanner.

    Attributes:
        dense_index: The dense position ``j`` in the original index space.
        ordinal: The running counter ``j'`` over scan outputs (0, 1, 2, ...).
        index_a: Compressed index ``jA`` into the first operand's value
            array, or ``-1`` if the bit is absent from that operand.
        index_b: Compressed index ``jB`` into the second operand's value
            array, or ``-1`` if absent (or the scan is single-operand).
    """

    dense_index: int
    ordinal: int
    index_a: int
    index_b: int


@dataclass(frozen=True)
class ScanBatch:
    """All iteration tuples of one scan, in columnar array form.

    The hardware emits scan outputs as vectors, not scalars; this is the
    software mirror: four aligned arrays instead of a list of per-element
    objects. :meth:`elements` converts to the legacy representation.

    Attributes:
        dense_index: Dense positions ``j`` in ascending order.
        ordinal: Running counters ``j'`` (``0..n-1``).
        index_a: Compressed indices into operand A (``-1`` where absent).
        index_b: Compressed indices into operand B (``-1`` where absent).
    """

    dense_index: np.ndarray
    ordinal: np.ndarray
    index_a: np.ndarray
    index_b: np.ndarray

    def __len__(self) -> int:
        return int(self.dense_index.size)

    def elements(self) -> List[ScanElement]:
        """The batch as the legacy list of :class:`ScanElement` tuples."""
        return [
            ScanElement(
                dense_index=dense, ordinal=ordinal, index_a=a, index_b=b
            )
            for dense, ordinal, a, b in zip(
                self.dense_index.tolist(),
                self.ordinal.tolist(),
                self.index_a.tolist(),
                self.index_b.tolist(),
            )
        ]


@dataclass(frozen=True)
class ScanTiming:
    """Cycle cost of streaming a scan through the scanner hardware.

    Attributes:
        cycles: Total scanner-occupied cycles.
        elements: Number of iteration tuples produced.
        bit_chunks: Number of ``bit_width`` input chunks consumed.
        output_limited_cycles: Cycles where the output vectorization (not
            the input width) was the bottleneck.
        empty_chunks: Input chunks that contained no set bits (pure
            scanning overhead; these are the "Scan" stalls of Figure 7).
    """

    cycles: int
    elements: int
    bit_chunks: int
    output_limited_cycles: int
    empty_chunks: int

    @property
    def elements_per_cycle(self) -> float:
        """Average iteration throughput of the scan."""
        return self.elements / self.cycles if self.cycles else 0.0


class BitVectorScanner:
    """Vectorized sparse loop header operating on bit-vector operands."""

    def __init__(self, config: Optional[ScannerConfig] = None):
        self._config = config or ScannerConfig()
        self._config.validate()

    @property
    def config(self) -> ScannerConfig:
        """The scanner's width/vectorization configuration."""
        return self._config

    def scan_batch(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
        *,
        memory_budget: Optional[int] = None,
        chunk_positions: Optional[int] = None,
    ) -> ScanBatch:
        """Produce all iteration tuples of a sparse loop as a columnar batch.

        Args:
            vector_a: First operand.
            vector_b: Second operand; required unless ``mode`` is ``SINGLE``.
            mode: Intersection, union, or single-operand scan.
            memory_budget: Byte budget for the combine's working set; the
                dense position space is streamed in ranges under it. Range
                outputs are position-disjoint and ordered, so concatenation
                reproduces the unchunked batch exactly. ``None`` defers to
                ``REPRO_MEMORY_BUDGET``.
            chunk_positions: Explicit range width in dense positions
                (overrides the cost model; mainly for equivalence tests).

        Returns:
            A :class:`ScanBatch` ordered by dense index, exactly the values
            a nested ``Foreach(Scan(...))`` loop body would observe.
        """
        budget = resolve_memory_budget(memory_budget)
        if chunk_positions is None and budget is not None:
            chunk_positions = plan_chunks(
                vector_a.length, SCAN_BYTES_PER_POSITION, budget
            ).chunk_items
        if chunk_positions is not None and (
            mode is not ScanMode.SINGLE and vector_b is not None
        ):
            combined, index_a, index_b = self._combine_arrays_chunked(
                vector_a, vector_b, mode, chunk_positions
            )
        else:
            # SINGLE mode copies one operand's indices -- there is no
            # combine working set to bound, so it always runs unchunked.
            combined, index_a, index_b = self._combine_arrays(
                vector_a, vector_b, mode
            )
        return ScanBatch(
            dense_index=combined,
            ordinal=np.arange(combined.size, dtype=np.int64),
            index_a=index_a,
            index_b=index_b,
        )

    def scan(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> List[ScanElement]:
        """Produce the full list of iteration tuples for a sparse loop.

        A compatibility view over :meth:`scan_batch`: the same tuples, as a
        list of per-element objects.
        """
        return self.scan_batch(vector_a, vector_b, mode).elements()

    def scan_reference(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> List[ScanElement]:
        """The retained element-at-a-time scan loop (equivalence reference)."""
        mask, a_positions, b_positions = self._combine_reference(
            vector_a, vector_b, mode
        )
        elements: List[ScanElement] = []
        set_bits = np.nonzero(mask)[0]
        for ordinal, dense_index in enumerate(set_bits.tolist()):
            elements.append(
                ScanElement(
                    dense_index=int(dense_index),
                    ordinal=ordinal,
                    index_a=int(a_positions[dense_index]),
                    index_b=int(b_positions[dense_index]),
                )
            )
        return elements

    def count(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> int:
        """Number of iterations the scan would produce.

        The hardware writes this count into the counter chain in the first
        cycle so one scanner can feed multiple counter levels.
        """
        self._check_operands(vector_a, vector_b, mode)
        if mode is ScanMode.SINGLE or vector_b is None:
            return vector_a.nnz
        if mode is ScanMode.INTERSECT:
            return int(
                packed.popcount(vector_a._packed() & vector_b._packed()).sum()
            )
        return int(packed.popcount(vector_a._packed() | vector_b._packed()).sum())

    def timing(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
    ) -> ScanTiming:
        """Cycle cost of streaming this scan through the configured scanner.

        The scanner consumes ``bit_width`` bits of the (combined) mask per
        cycle and emits at most ``output_vectorization`` set bits per cycle;
        a chunk with more set bits than the output width occupies multiple
        cycles, and an all-zero chunk still costs one cycle.
        """
        combined = self._combined_indices(vector_a, vector_b, mode)
        return timing_from_indices(combined, vector_a.length, self._config)

    def _check_operands(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector],
        mode: ScanMode,
    ) -> None:
        if mode is ScanMode.SINGLE or vector_b is None:
            if mode is not ScanMode.SINGLE and vector_b is None:
                raise SimulationError("two-operand scan requires vector_b")
            return
        if vector_a.length != vector_b.length:
            raise SimulationError(
                f"scan operands must have equal length: "
                f"{vector_a.length} vs {vector_b.length}"
            )
        if mode not in (ScanMode.INTERSECT, ScanMode.UNION):
            raise SimulationError(f"unsupported scan mode {mode}")

    def _combined_indices(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector],
        mode: ScanMode,
    ) -> np.ndarray:
        """Combined set-bit positions only (the timing/count fast path)."""
        self._check_operands(vector_a, vector_b, mode)
        a_indices = vector_a._sorted_indices()
        if mode is ScanMode.SINGLE or vector_b is None:
            return a_indices
        if mode is ScanMode.INTERSECT:
            if a_indices.size == 0:
                return a_indices
            return a_indices[packed.test_bits(vector_b._packed(), a_indices)]
        return np.union1d(a_indices, vector_b._sorted_indices())

    def _combine_arrays(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector],
        mode: ScanMode,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Combined set-bit positions and per-element compressed indices."""
        self._check_operands(vector_a, vector_b, mode)
        a_indices = vector_a._sorted_indices()
        if mode is ScanMode.SINGLE or vector_b is None:
            return (
                a_indices.copy(),
                np.arange(a_indices.size, dtype=np.int64),
                np.full(a_indices.size, -1, dtype=np.int64),
            )
        b_indices = vector_b._sorted_indices()
        if mode is ScanMode.INTERSECT:
            # Membership via the packed substrate: test A's set bits
            # against B's occupancy words.
            if vector_a.length:
                in_b = packed.test_bits(vector_b._packed(), a_indices)
            else:
                in_b = np.zeros(0, dtype=bool)
            combined = a_indices[in_b]
            index_a = np.flatnonzero(in_b).astype(np.int64)
            index_b = np.searchsorted(b_indices, combined).astype(np.int64)
            return combined, index_a, index_b
        combined = np.union1d(a_indices, b_indices)
        if vector_a.length:
            in_a = packed.test_bits(vector_a._packed(), combined)
            in_b = packed.test_bits(vector_b._packed(), combined)
        else:
            in_a = in_b = np.zeros(0, dtype=bool)
        index_a = np.where(
            in_a, np.searchsorted(a_indices, combined), -1
        ).astype(np.int64)
        index_b = np.where(
            in_b, np.searchsorted(b_indices, combined), -1
        ).astype(np.int64)
        return combined, index_a, index_b

    def _combine_arrays_chunked(
        self,
        vector_a: BitVector,
        vector_b: BitVector,
        mode: ScanMode,
        chunk_positions: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stream :meth:`_combine_arrays` over dense position ranges.

        Each range combines only the candidate set bits it covers; ranges
        are disjoint and ascending and compressed indices are computed
        against the full operands, so concatenating the per-range outputs
        is bit-identical to the one-shot combine.
        """
        if chunk_positions < 1:
            raise SimulationError("chunk_positions must be positive")
        self._check_operands(vector_a, vector_b, mode)
        a_indices = vector_a._sorted_indices()
        b_indices = vector_b._sorted_indices()
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for start in range(0, vector_a.length, chunk_positions):
            stop = min(start + chunk_positions, vector_a.length)
            a_lo, a_hi = np.searchsorted(a_indices, [start, stop])
            a_slice = a_indices[a_lo:a_hi]
            if mode is ScanMode.INTERSECT:
                if a_slice.size == 0:
                    continue
                in_b = packed.test_bits(vector_b._packed(), a_slice)
                combined = a_slice[in_b]
                parts.append(
                    (
                        combined,
                        (a_lo + np.flatnonzero(in_b)).astype(np.int64),
                        np.searchsorted(b_indices, combined).astype(np.int64),
                    )
                )
                continue
            b_lo, b_hi = np.searchsorted(b_indices, [start, stop])
            combined = np.union1d(a_slice, b_indices[b_lo:b_hi])
            if combined.size == 0:
                continue
            in_a = packed.test_bits(vector_a._packed(), combined)
            in_b = packed.test_bits(vector_b._packed(), combined)
            parts.append(
                (
                    combined,
                    np.where(
                        in_a, np.searchsorted(a_indices, combined), -1
                    ).astype(np.int64),
                    np.where(
                        in_b, np.searchsorted(b_indices, combined), -1
                    ).astype(np.int64),
                )
            )
        if not parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )

    def _combine_reference(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector],
        mode: ScanMode,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The retained mask/prefix-sum combination (equivalence reference)."""
        if mode is ScanMode.SINGLE or vector_b is None:
            if mode is not ScanMode.SINGLE and vector_b is None:
                raise SimulationError("two-operand scan requires vector_b")
            mask = vector_a.mask
            a_positions = _prefix_positions(mask, mask)
            b_positions = np.full(mask.size, -1, dtype=np.int64)
            return mask, a_positions, b_positions
        if vector_a.length != vector_b.length:
            raise SimulationError(
                f"scan operands must have equal length: "
                f"{vector_a.length} vs {vector_b.length}"
            )
        mask_a = vector_a.mask
        mask_b = vector_b.mask
        if mode is ScanMode.INTERSECT:
            mask = mask_a & mask_b
        elif mode is ScanMode.UNION:
            mask = mask_a | mask_b
        else:
            raise SimulationError(f"unsupported scan mode {mode}")
        a_positions = _prefix_positions(mask_a, mask)
        b_positions = _prefix_positions(mask_b, mask)
        return mask, a_positions, b_positions


class DataScanner:
    """Scalar data scanner: finds non-zero elements, one per cycle.

    The data scanner examines ``data_width`` (16) 32-bit elements per cycle
    and emits one non-zero element per cycle, so its throughput can never
    exceed one iteration per cycle; it is only used for outer loops.
    """

    def __init__(self, config: Optional[ScannerConfig] = None):
        self._config = config or ScannerConfig()
        self._config.validate()

    @property
    def config(self) -> ScannerConfig:
        """The scanner's width configuration."""
        return self._config

    def scan(self, values: np.ndarray) -> List[Tuple[int, float]]:
        """Return ``(index, value)`` pairs of non-zero elements in order."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise SimulationError("data scanner operates on 1-D vectors")
        indices = np.nonzero(array)[0]
        return list(zip(indices.tolist(), array[indices].tolist()))

    def timing_cycles(self, values: np.ndarray) -> int:
        """Cycles to scan ``values``: one per emitted non-zero, plus one per
        all-zero ``data_width`` chunk traversed."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise SimulationError("data scanner operates on 1-D vectors")
        width = self._config.data_width
        if array.size == 0:
            return 0
        chunks = (array.size + width - 1) // width
        counts = np.bincount(
            np.nonzero(array)[0] // width, minlength=chunks
        )
        return int(np.maximum(counts, 1).sum())

    def timing_cycles_reference(self, values: np.ndarray) -> int:
        """The retained per-chunk loop (equivalence reference)."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise SimulationError("data scanner operates on 1-D vectors")
        width = self._config.data_width
        cycles = 0
        for start in range(0, array.size, width):
            chunk = array[start : start + width]
            nonzeros = int(np.count_nonzero(chunk))
            cycles += max(1, nonzeros)
        return cycles


def timing_from_indices(
    set_indices: np.ndarray, space_length: int, config: ScannerConfig
) -> ScanTiming:
    """Scanner cycle accounting from combined set-bit positions.

    The shared vectorized core behind :func:`scan_timing_from_mask`,
    :meth:`BitVectorScanner.timing`, and the application scan model: one
    bincount over ``set_indices // bit_width`` yields every chunk's
    occupancy, from which cycles, output-limited cycles, and empty chunks
    all follow. A zero-length space still streams one (empty) chunk,
    matching the hardware's minimum one-cycle scan.
    """
    width = config.bit_width
    out_width = config.output_vectorization
    chunks = (max(space_length, 1) + width - 1) // width
    positions = np.asarray(set_indices, dtype=np.int64)
    if positions.size == 0:
        return ScanTiming(
            cycles=chunks,
            elements=0,
            bit_chunks=chunks,
            output_limited_cycles=0,
            empty_chunks=chunks,
        )
    counts = np.bincount(positions // width, minlength=chunks)
    occupied = counts > 0
    chunk_cycles = np.where(occupied, (counts + out_width - 1) // out_width, 1)
    output_limited = int((chunk_cycles[occupied] - 1).sum())
    return ScanTiming(
        cycles=int(chunk_cycles.sum()),
        elements=int(positions.size),
        bit_chunks=int(chunks),
        output_limited_cycles=output_limited,
        empty_chunks=int(np.count_nonzero(~occupied)),
    )


def scan_timing_from_mask(mask: np.ndarray, config: ScannerConfig) -> ScanTiming:
    """Compute scanner cycle cost for a combined occupancy mask.

    This is shared by the bit-vector scanner and by application timing
    models that already have the combined mask in hand.
    """
    mask = np.asarray(mask, dtype=bool)
    return timing_from_indices(np.flatnonzero(mask), mask.size, config)


def scan_timing_from_mask_reference(
    mask: np.ndarray, config: ScannerConfig
) -> ScanTiming:
    """The retained per-chunk timing loop (equivalence reference)."""
    mask = np.asarray(mask, dtype=bool)
    width = config.bit_width
    out_width = config.output_vectorization
    cycles = 0
    elements = 0
    bit_chunks = 0
    output_limited = 0
    empty_chunks = 0
    for start in range(0, max(mask.size, 1), width):
        chunk = mask[start : start + width]
        bit_chunks += 1
        set_bits = int(np.count_nonzero(chunk))
        if set_bits == 0:
            cycles += 1
            empty_chunks += 1
            continue
        chunk_cycles = (set_bits + out_width - 1) // out_width
        if chunk_cycles > 1:
            output_limited += chunk_cycles - 1
        cycles += chunk_cycles
        elements += set_bits
    return ScanTiming(
        cycles=cycles,
        elements=elements,
        bit_chunks=bit_chunks,
        output_limited_cycles=output_limited,
        empty_chunks=empty_chunks,
    )


def _prefix_positions(operand_mask: np.ndarray, output_mask: np.ndarray) -> np.ndarray:
    """Map each output position to its compressed index in the operand.

    Positions where the operand bit is clear map to ``-1`` (union mode).
    The hardware implements this with a prefix sum over the operand mask.
    """
    prefix = np.cumsum(operand_mask.astype(np.int64)) - 1
    positions = np.where(operand_mask, prefix, -1)
    # Positions outside the output mask are irrelevant; leave them as
    # computed so callers can index by dense position directly.
    return positions.astype(np.int64)
