"""Analytic area and power model (Tables 4, 5, and 8).

The paper synthesizes Plasticine plus Capstan's added units with Synopsys
Design Compiler on the FreePDK15 predictive library at 1.6 GHz, scaling
SRAM from a 28 nm memory compiler. Without a synthesis flow, this module
reproduces the published numbers as a calibrated analytic model:

* per-unit areas match Table 8 exactly at the paper's design point and
  scale with the structural parameters (lane count, bank count, queue
  depth, scanner width) using standard first-order scaling rules
  (crossbars ~ inputs x outputs, encoders ~ n log n, SRAM ~ capacity);
* scanner areas reproduce Table 5's grid (and interpolate between points);
* scheduler (issue queue + allocator) areas reproduce Table 4's column.

This keeps the area sensitivity studies (Table 5, Table 8, Figure 5b)
meaningful without a synthesis tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..config import CapstanConfig, PlasticineConfig

# --------------------------------------------------------------------------- #
# Calibration constants (paper's published numbers at the default design point)
# --------------------------------------------------------------------------- #

#: Plasticine per-unit areas in mm^2 (Table 8, "Each" column).
PLASTICINE_CU_MM2 = 0.401
PLASTICINE_MU_MM2 = 0.199
PLASTICINE_AG_MM2 = 0.030
PLASTICINE_NET_MM2_TOTAL = 36.3
PLASTICINE_TOTAL_MM2 = 158.6
PLASTICINE_POWER_W = 155.0

#: Capstan per-unit areas in mm^2 (Table 8).
CAPSTAN_CU_MM2 = 0.423
CAPSTAN_MU_MM2 = 0.251
CAPSTAN_AG_MM2 = 0.087
CAPSTAN_SHUFFLE_MM2_TOTAL = 6.4
CAPSTAN_TOTAL_MM2 = 184.5
CAPSTAN_POWER_W = 174.0

#: Capstan additions as fractions of their host unit (Table 8 percentages).
CU_SCANNER_FRACTION = 0.047
CU_FORMAT_CONV_FRACTION = 0.005
MU_FUNC_UNITS_FRACTION = 0.045
MU_ALLOCATOR_FRACTION = 0.008
AG_FUNC_UNITS_FRACTION = 0.138
AG_DECOMPRESSOR_FRACTION = 0.060

#: Scanner area grid in um^2: {input_bits: {output_vectorization: area}} (Table 5).
SCANNER_AREA_UM2: Dict[int, Dict[int, float]] = {
    128: {1: 2157, 2: 2765, 4: 3645, 8: 5591, 16: 9456},
    256: {1: 3985, 2: 5231, 4: 6927, 8: 10674, 16: 19898},
    512: {1: 7777, 2: 10447, 4: 14377, 8: 22562, 16: 42997},
}

#: Scheduler (queue + crossbar + allocator) area in um^2 keyed by
#: (queue_depth, crossbar_inputs) for a 16-bank SpMU (Table 4).
SCHEDULER_AREA_UM2: Dict[tuple, float] = {
    (8, 16): 38052,
    (8, 32): 48938,
    (16, 16): 51359,
    (16, 32): 62918,
    (32, 16): 79301,
    (32, 32): 90433,
}


@dataclass(frozen=True)
class AreaBreakdown:
    """Chip-level area/power breakdown in mm^2 / W (one Table 8 column)."""

    compute_unit_each: float
    compute_units_total: float
    memory_unit_each: float
    memory_units_total: float
    address_generator_each: float
    address_generators_total: float
    shuffle_networks_total: float
    on_chip_network_total: float
    total_mm2: float
    power_w: float

    def as_dict(self) -> Dict[str, float]:
        """Flatten the breakdown to a plain dictionary for reporting."""
        return {
            "compute_unit_each": self.compute_unit_each,
            "compute_units_total": self.compute_units_total,
            "memory_unit_each": self.memory_unit_each,
            "memory_units_total": self.memory_units_total,
            "address_generator_each": self.address_generator_each,
            "address_generators_total": self.address_generators_total,
            "shuffle_networks_total": self.shuffle_networks_total,
            "on_chip_network_total": self.on_chip_network_total,
            "total_mm2": self.total_mm2,
            "power_w": self.power_w,
        }


def scanner_area_um2(bit_width: int, output_vectorization: int) -> float:
    """Scanner area for a given input width and output vectorization.

    Exact Table 5 points are returned verbatim; other points are obtained by
    log-linear interpolation/extrapolation in both dimensions, reflecting
    the roughly n*log(n) growth of the select-and-encode logic.
    """
    if bit_width <= 0 or output_vectorization <= 0:
        raise ValueError("scanner dimensions must be positive")
    widths = sorted(SCANNER_AREA_UM2)
    outputs = sorted(next(iter(SCANNER_AREA_UM2.values())))
    if bit_width in SCANNER_AREA_UM2 and output_vectorization in SCANNER_AREA_UM2[bit_width]:
        return float(SCANNER_AREA_UM2[bit_width][output_vectorization])

    def interp(axis_values, target, lookup):
        """Log-linear interpolation helper along one axis."""
        below = max((v for v in axis_values if v <= target), default=axis_values[0])
        above = min((v for v in axis_values if v >= target), default=axis_values[-1])
        if below == above:
            return lookup(below)
        t = (math.log2(target) - math.log2(below)) / (math.log2(above) - math.log2(below))
        return lookup(below) * (1 - t) + lookup(above) * t

    def area_at_width(width):
        table = SCANNER_AREA_UM2[width]
        return interp(outputs, output_vectorization, lambda o: float(table[o]))

    return interp(widths, bit_width, area_at_width)


def scheduler_area_um2(queue_depth: int, crossbar_inputs: int, banks: int = 16) -> float:
    """SpMU scheduler area (Table 4), scaled for non-tabulated points.

    Area grows linearly with queue depth (storage) plus a crossbar term
    proportional to ``crossbar_inputs * banks``.
    """
    key = (queue_depth, crossbar_inputs)
    if key in SCHEDULER_AREA_UM2 and banks == 16:
        return float(SCHEDULER_AREA_UM2[key])
    # Fit: area = alpha * depth + beta * inputs * banks, from the 16/16 and
    # 32/16 and 16/32 table entries.
    alpha = (SCHEDULER_AREA_UM2[(32, 16)] - SCHEDULER_AREA_UM2[(16, 16)]) / 16.0
    beta = (SCHEDULER_AREA_UM2[(16, 32)] - SCHEDULER_AREA_UM2[(16, 16)]) / (16 * 16)
    base = SCHEDULER_AREA_UM2[(16, 16)] - alpha * 16 - beta * 16 * 16
    return float(base + alpha * queue_depth + beta * crossbar_inputs * banks)


def plasticine_area(config: PlasticineConfig | None = None) -> AreaBreakdown:
    """Area/power of the Plasticine baseline (Table 8, left column)."""
    config = config or PlasticineConfig()
    cu_total = PLASTICINE_CU_MM2 * config.compute_units
    mu_total = PLASTICINE_MU_MM2 * config.memory_units
    ag_total = PLASTICINE_AG_MM2 * config.address_generators
    total = cu_total + mu_total + ag_total + PLASTICINE_NET_MM2_TOTAL
    scale = total / (
        PLASTICINE_CU_MM2 * 200 + PLASTICINE_MU_MM2 * 200 + PLASTICINE_AG_MM2 * 80
        + PLASTICINE_NET_MM2_TOTAL
    )
    return AreaBreakdown(
        compute_unit_each=PLASTICINE_CU_MM2,
        compute_units_total=cu_total,
        memory_unit_each=PLASTICINE_MU_MM2,
        memory_units_total=mu_total,
        address_generator_each=PLASTICINE_AG_MM2,
        address_generators_total=ag_total,
        shuffle_networks_total=0.0,
        on_chip_network_total=PLASTICINE_NET_MM2_TOTAL,
        total_mm2=total,
        power_w=PLASTICINE_POWER_W * scale,
    )


def capstan_area(config: CapstanConfig | None = None) -> AreaBreakdown:
    """Area/power of Capstan (Table 8, right column), scaled to ``config``.

    The ``sparse_fraction`` knob models the heterogeneous-provisioning
    option discussed in Section 4.2: provisioning only a fraction of units
    with sparse logic linearly reduces the sparse area/power overhead.
    """
    config = config or CapstanConfig()
    sparse = config.sparse_fraction

    # Per-unit areas: Plasticine base plus Capstan additions scaled by the
    # structural parameters relative to the paper's design point.
    scanner_scale = scanner_area_um2(
        config.scanner.bit_width, config.scanner.output_vectorization
    ) / scanner_area_um2(256, 16)
    cu_each = PLASTICINE_CU_MM2 + sparse * (
        CAPSTAN_CU_MM2 - PLASTICINE_CU_MM2
    ) * (CU_SCANNER_FRACTION * scanner_scale + CU_FORMAT_CONV_FRACTION) / (
        CU_SCANNER_FRACTION + CU_FORMAT_CONV_FRACTION
    )

    scheduler_scale = scheduler_area_um2(
        config.spmu.queue_depth, config.spmu.crossbar_inputs, config.spmu.banks
    ) / scheduler_area_um2(16, 16)
    mu_added = (CAPSTAN_MU_MM2 - PLASTICINE_MU_MM2) * (
        MU_FUNC_UNITS_FRACTION + MU_ALLOCATOR_FRACTION * scheduler_scale
    ) / (MU_FUNC_UNITS_FRACTION + MU_ALLOCATOR_FRACTION)
    mu_each = PLASTICINE_MU_MM2 + sparse * mu_added

    ag_each = PLASTICINE_AG_MM2 + sparse * (CAPSTAN_AG_MM2 - PLASTICINE_AG_MM2) * (
        (AG_FUNC_UNITS_FRACTION + (AG_DECOMPRESSOR_FRACTION if config.compression_enabled else 0.0))
        / (AG_FUNC_UNITS_FRACTION + AG_DECOMPRESSOR_FRACTION)
    )

    cu_total = cu_each * config.compute_units
    mu_total = mu_each * config.memory_units
    ag_total = ag_each * config.address_generators
    shuffle_total = CAPSTAN_SHUFFLE_MM2_TOTAL * sparse * (
        (config.compute_units + config.memory_units) / 400.0
    )
    net_total = PLASTICINE_NET_MM2_TOTAL * ((config.compute_units + config.memory_units) / 400.0)
    total = cu_total + mu_total + ag_total + shuffle_total + net_total

    power_scale = total / CAPSTAN_TOTAL_MM2
    power = CAPSTAN_POWER_W * power_scale
    return AreaBreakdown(
        compute_unit_each=cu_each,
        compute_units_total=cu_total,
        memory_unit_each=mu_each,
        memory_units_total=mu_total,
        address_generator_each=ag_each,
        address_generators_total=ag_total,
        shuffle_networks_total=shuffle_total,
        on_chip_network_total=net_total,
        total_mm2=total,
        power_w=power,
    )


def area_overhead_vs_plasticine(config: CapstanConfig | None = None) -> float:
    """Fractional area overhead of Capstan over Plasticine (paper: 0.16)."""
    capstan = capstan_area(config)
    baseline = plasticine_area()
    return capstan.total_mm2 / baseline.total_mm2 - 1.0


def power_overhead_vs_plasticine(config: CapstanConfig | None = None) -> float:
    """Fractional power overhead of Capstan over Plasticine (paper: 0.12)."""
    capstan = capstan_area(config)
    baseline = plasticine_area()
    return capstan.power_w / baseline.power_w - 1.0
