"""Memory ordering modes for the sparse memory unit (Table 3).

Capstan offers three ordering strictness levels for the SpMU's reordering
pipeline, plus the arbitrated baseline that Plasticine-style memories use:

* ``UNORDERED`` — accesses complete once, in arbitrary order. This is the
  default and the fastest mode.
* ``ADDRESS_ORDERED`` — accesses to the *same address* complete in program
  order; accesses to different addresses may still be reordered. Required
  for SSSP distance updates and deterministic floating-point accumulation.
* ``FULLY_ORDERED`` — accesses complete strictly in program order.
* ``ARBITRATED`` — the baseline: one vector's accesses are executed to
  completion (serialised on bank conflicts) before the next vector starts;
  there is no cross-vector reordering.
"""

from __future__ import annotations

from enum import Enum


class OrderingMode(Enum):
    """SpMU access-ordering strictness (Table 3 plus the arbitrated baseline)."""

    UNORDERED = "unordered"
    ADDRESS_ORDERED = "address-ordered"
    FULLY_ORDERED = "fully-ordered"
    ARBITRATED = "arbitrated"

    @property
    def allows_cross_vector_reordering(self) -> bool:
        """Whether requests from different vectors may interleave."""
        return self in (OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED)

    @property
    def allows_same_address_reordering(self) -> bool:
        """Whether two requests to the same address may be reordered."""
        return self is OrderingMode.UNORDERED

    @property
    def requires_program_order(self) -> bool:
        """Whether every access must complete in program order."""
        return self is OrderingMode.FULLY_ORDERED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
