"""Read-only compressed dense DRAM loads (Section 3.4, Figure 5c).

Applications that stream tiles of pointers (COO row/column ids, CSC row
ids) see closely spaced values, which compress well. Capstan uses a
packet-based base/offset format: each 64 B burst is encoded as a one-byte
header (base size, offset size), a base value, and fixed-width offsets.
Compression is read-only, pre-computed, and restricted to tile boundaries,
which keeps the hardware a simple decompressor in the DRAM AG.

The model here implements the encoder/decoder bit-exactly (for integer
pointer data) and reports compression ratios that feed the DRAM traffic
model for the Figure 5c sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import SimulationError

#: Words of 32-bit data covered by one compression packet (one 64 B burst).
WORDS_PER_PACKET = 16


@dataclass(frozen=True)
class CompressedPacket:
    """One encoded burst.

    Attributes:
        base: The packet's base value.
        offset_bits: Bits used for each offset (0 means all values equal base).
        offsets: Offsets of each word from the base value.
    """

    base: int
    offset_bits: int
    offsets: Tuple[int, ...]

    @property
    def encoded_bits(self) -> int:
        """Size of the encoded packet: 8-bit header + 32-bit base + offsets."""
        return 8 + 32 + self.offset_bits * len(self.offsets)

    @property
    def encoded_bytes(self) -> int:
        """Encoded size rounded up to whole bytes."""
        return (self.encoded_bits + 7) // 8


@dataclass(frozen=True)
class CompressionReport:
    """Summary of compressing one array.

    Attributes:
        original_bytes: Uncompressed size (4 bytes per word).
        compressed_bytes: Total encoded size across packets.
        packets: Number of packets produced.
    """

    original_bytes: int
    compressed_bytes: int
    packets: int

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed); >= 1 is a win."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.original_bytes / self.compressed_bytes

    @property
    def savings_fraction(self) -> float:
        """Fraction of DRAM traffic eliminated by compression."""
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - min(1.0, self.compressed_bytes / self.original_bytes)


def _required_offset_bits(values: np.ndarray, base: int) -> int:
    """Smallest supported offset width that covers ``values - base``."""
    if values.size == 0:
        return 0
    spread = int(values.max()) - base
    if spread < 0:
        raise SimulationError("base must be the packet minimum")
    if spread == 0:
        return 0
    bits = int(spread).bit_length()
    # Hardware supports a small menu of offset widths; round up to the next.
    for width in (4, 8, 12, 16, 20, 24, 32):
        if bits <= width:
            return width
    return 32


def compress_pointer_array(values: np.ndarray) -> Tuple[List[CompressedPacket], CompressionReport]:
    """Encode a 32-bit pointer array into base/offset packets.

    Args:
        values: Non-negative integer pointer values (e.g. COO row ids).

    Returns:
        The packet list and a :class:`CompressionReport`.
    """
    array = np.asarray(values)
    if array.size and array.min() < 0:
        raise SimulationError("pointer values must be non-negative")
    array = array.astype(np.int64, copy=False)
    packets: List[CompressedPacket] = []
    compressed_bytes = 0
    for start in range(0, array.size, WORDS_PER_PACKET):
        chunk = array[start : start + WORDS_PER_PACKET]
        base = int(chunk.min()) if chunk.size else 0
        offset_bits = _required_offset_bits(chunk, base)
        offsets = tuple(int(v) - base for v in chunk.tolist())
        packet = CompressedPacket(base=base, offset_bits=offset_bits, offsets=offsets)
        packets.append(packet)
        compressed_bytes += packet.encoded_bytes
    report = CompressionReport(
        original_bytes=4 * int(array.size),
        compressed_bytes=compressed_bytes,
        packets=len(packets),
    )
    return packets, report


#: The hardware's menu of supported offset widths, and the exclusive upper
#: bound of the spread each width covers.
_OFFSET_WIDTHS = np.array([0, 4, 8, 12, 16, 20, 24, 32], dtype=np.int64)
_SPREAD_BOUNDS = np.array(
    [1] + [1 << width for width in (4, 8, 12, 16, 20, 24)], dtype=np.int64
)


def compression_report(values: np.ndarray) -> CompressionReport:
    """Report-only fast path of :func:`compress_pointer_array`.

    Computes the identical :class:`CompressionReport` without materializing
    any packets, by reducing every 16-word burst in one vectorized pass
    (the profiling kernels only need the ratio, not the encoding).
    """
    array = np.asarray(values)
    if array.size and array.min() < 0:
        raise SimulationError("pointer values must be non-negative")
    array = array.astype(np.int64, copy=False)
    if array.size == 0:
        return CompressionReport(original_bytes=0, compressed_bytes=0, packets=0)
    full = (array.size // WORDS_PER_PACKET) * WORDS_PER_PACKET
    chunked = array[:full].reshape(-1, WORDS_PER_PACKET)
    spreads = chunked.max(axis=1) - chunked.min(axis=1)
    sizes = np.full(chunked.shape[0], WORDS_PER_PACKET, dtype=np.int64)
    if full < array.size:
        tail = array[full:]
        spreads = np.concatenate((spreads, [int(tail.max()) - int(tail.min())]))
        sizes = np.concatenate((sizes, [tail.size]))
    offset_bits = _OFFSET_WIDTHS[np.searchsorted(_SPREAD_BOUNDS, spreads, side="right")]
    encoded_bits = 8 + 32 + offset_bits * sizes
    compressed = int(((encoded_bits + 7) // 8).sum())
    return CompressionReport(
        original_bytes=4 * int(array.size),
        compressed_bytes=compressed,
        packets=int(sizes.size),
    )


def decompress_packets(packets: List[CompressedPacket]) -> np.ndarray:
    """Decode packets back to the original pointer array."""
    values: List[int] = []
    for packet in packets:
        for offset in packet.offsets:
            if offset < 0:
                raise SimulationError("negative offset in compressed packet")
            if packet.offset_bits and offset >= (1 << packet.offset_bits):
                raise SimulationError("offset exceeds packet offset width")
            if packet.offset_bits == 0 and offset != 0:
                raise SimulationError("non-zero offset in zero-width packet")
            values.append(packet.base + offset)
    return np.asarray(values, dtype=np.int64)


def compression_ratio(values: np.ndarray) -> float:
    """Convenience wrapper returning only the compression ratio."""
    _, report = compress_pointer_array(values)
    return report.ratio


def estimate_app_compression(pointer_arrays: List[np.ndarray]) -> CompressionReport:
    """Aggregate compression across all of an application's pointer streams.

    Uses the report-only vectorized path per stream -- no packets are
    materialized, only the sizes the DRAM traffic model needs.
    """
    reports = [compression_report(array) for array in pointer_arrays]
    return CompressionReport(
        original_bytes=sum(r.original_bytes for r in reports),
        compressed_bytes=sum(r.compressed_bytes for r in reports),
        packets=sum(r.packets for r in reports),
    )
