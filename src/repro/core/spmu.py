"""The Sparse Memory Unit (SpMU) with its reordering pipeline (Section 3.1).

Dense RDA memories use a fixed, conflict-free lane-to-bank mapping. Sparse
programs generate random mappings where several lanes may target the same
bank in one cycle; an arbitrated memory must then serialize the vector over
multiple cycles. Capstan's SpMU instead buffers ``d`` request vectors in an
issue queue and *schedules* accesses over multiple cycles: every pending
request bids for its bank, a separable allocator picks a conflict-free set
(at most one per lane and per bank), and an inverse-permutation crossbar
restores positional order when the whole vector has completed.

This module is a cycle-level simulation of that pipeline. It is used three
ways:

* directly on random access traces for the Table 4 / Figure 4 / Table 9
  microbenchmarks (bank utilization under different queue depths, crossbar
  sizes, priority counts, and ordering modes);
* as a functional scratchpad (the RMW FPU semantics of step 3 in Figure 3b)
  by the applications; and
* through :func:`~repro.core.spmu.effective_bank_throughput` as the
  calibrated throughput number consumed by the application timing model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SpMUConfig
from ..errors import SimulationError
from .allocator import GreedyAllocator, SeparableAllocator
from .bank_hash import get_bank_mapper
from .bloom import BloomFilter
from .ordering import OrderingMode
from .spmu_array import (
    OP_ADD,
    OP_OTHER_BASE,
    OP_READ,
    OP_SUB,
    SimResult,
    SpMUVariant,
    simulate_variants,
)


class RMWOp(Enum):
    """Read-modify-write operations supported by the per-bank FPU.

    The execution unit has separately configurable result muxes for the
    returned value and the updated memory value, which is what enables
    operations like ``min-report-changed`` (SSSP) and ``write-if-zero``
    (BFS back-pointers).
    """

    READ = "read"
    WRITE = "write"
    ADD = "add"
    SUB = "sub"
    MIN_REPORT_CHANGED = "min-report-changed"
    MAX = "max"
    SWAP = "swap"
    TEST_AND_SET = "test-and-set"
    WRITE_IF_ZERO = "write-if-zero"
    BIT_OR = "bit-or"
    BIT_AND = "bit-and"

    @property
    def is_read_only(self) -> bool:
        """Whether the operation never modifies memory."""
        return self is RMWOp.READ

    @property
    def modifies_memory(self) -> bool:
        """Whether the operation may write to the target word."""
        return self is not RMWOp.READ


@dataclass
class MemoryRequest:
    """One lane's access within a request vector.

    Attributes:
        address: Word address within the SpMU's local address space.
        op: The read-modify-write operation to perform.
        value: Operand for the FPU (ignored for plain reads).
        lane: Originating SIMD lane (0..lanes-1).
    """

    address: int
    op: RMWOp = RMWOp.READ
    value: float = 0.0
    lane: int = 0


@dataclass
class RequestResult:
    """Functional result of one executed request."""

    address: int
    returned: float
    changed: bool


#: RMWOp <-> integer code tables for array request traces. READ/ADD/SUB get
#: the engine's reserved fast-path codes; the remaining ops are assigned
#: stable codes in declaration order.
_OP_TO_CODE: Dict[RMWOp, int] = {RMWOp.READ: OP_READ, RMWOp.ADD: OP_ADD, RMWOp.SUB: OP_SUB}
for _op in RMWOp:
    if _op not in _OP_TO_CODE:
        _OP_TO_CODE[_op] = OP_OTHER_BASE + len(_OP_TO_CODE) - 3
_CODE_TO_OP: Dict[int, RMWOp] = {code: op for op, code in _OP_TO_CODE.items()}


@dataclass
class RequestTrace:
    """A request-vector stream as flat numpy arrays (one row per request).

    This is the array backend's native trace representation: instead of a
    ``List[List[MemoryRequest]]`` it stores one entry per lane request,
    sorted by ``(vector, lane)``. ``lanes`` holds each request's position
    within its vector (the lane the reference pipeline would assign), and
    ``n_vectors`` counts all vectors including empty ones.

    Attributes:
        addresses: Word addresses, shape ``(n,)``.
        ops: Integer RMW op codes (see ``RMWOp`` <-> code tables).
        values: FPU operands.
        lanes: Lane index of each request within its vector.
        vector_ids: Owning vector of each request (non-decreasing).
        n_vectors: Total number of vectors in the stream.
    """

    addresses: np.ndarray
    ops: np.ndarray
    values: np.ndarray
    lanes: np.ndarray
    vector_ids: np.ndarray
    n_vectors: int

    @classmethod
    def from_vectors(cls, vectors: Sequence[Sequence[MemoryRequest]]) -> "RequestTrace":
        """Flatten an object-based request stream into trace arrays."""
        addresses: List[int] = []
        ops: List[int] = []
        values: List[float] = []
        lanes: List[int] = []
        vector_ids: List[int] = []
        for vector_id, vector in enumerate(vectors):
            for lane, request in enumerate(vector):
                addresses.append(request.address)
                ops.append(_OP_TO_CODE[request.op])
                values.append(request.value)
                lanes.append(lane)
                vector_ids.append(vector_id)
        return cls(
            addresses=np.array(addresses, dtype=np.int64),
            ops=np.array(ops, dtype=np.int16),
            values=np.array(values, dtype=np.float64),
            lanes=np.array(lanes, dtype=np.int64),
            vector_ids=np.array(vector_ids, dtype=np.int64),
            n_vectors=len(vectors),
        )

    def to_vectors(self) -> List[List[MemoryRequest]]:
        """Rebuild the object-based stream (for the reference backend)."""
        vectors: List[List[MemoryRequest]] = [[] for _ in range(self.n_vectors)]
        for address, op, value, lane, vector_id in zip(
            self.addresses, self.ops, self.values, self.lanes, self.vector_ids
        ):
            vectors[int(vector_id)].append(
                MemoryRequest(
                    address=int(address),
                    op=_CODE_TO_OP[int(op)],
                    value=float(value),
                    lane=int(lane),
                )
            )
        return vectors

    def __len__(self) -> int:
        return int(self.addresses.size)


@dataclass
class SpMUStats:
    """Timing statistics for one SpMU simulation run.

    Attributes:
        cycles: Total cycles from the first issue opportunity until the
            last request completed.
        requests: Requests executed (after repeated-read elision).
        elided_reads: Duplicate read requests squashed at enqueue.
        bank_busy_cycles: Sum over cycles of banks performing an access.
        vectors: Request vectors processed.
        stall_cycles_ordering: Cycles the enqueue stage stalled for ordering
            (Bloom-filter conflicts or in-order constraints).
        per_cycle_active_banks: Active-bank count for every simulated cycle
            as an int64 array, or ``None`` unless the unit was built with
            ``record_trace=True`` -- long traces would otherwise pay
            unbounded per-cycle append memory just to compute aggregate
            utilization, which ``bank_busy_cycles`` already determines
            exactly.
    """

    cycles: int = 0
    requests: int = 0
    elided_reads: int = 0
    bank_busy_cycles: int = 0
    vectors: int = 0
    stall_cycles_ordering: int = 0
    per_cycle_active_banks: Optional[np.ndarray] = None

    @property
    def bank_utilization(self) -> float:
        """Fraction of bank-cycles doing useful work (Table 4's metric)."""
        if self.cycles == 0:
            return 0.0
        return self.bank_busy_cycles / (self.cycles * _BANKS_FOR_UTILIZATION(self))

    @property
    def requests_per_cycle(self) -> float:
        """Average accepted request throughput."""
        return self.requests / self.cycles if self.cycles else 0.0


def _BANKS_FOR_UTILIZATION(stats: "SpMUStats") -> int:
    """Bank count recorded at simulation time (stashed on the stats object)."""
    return getattr(stats, "_banks", 16)


@dataclass
class _QueueEntry:
    """One vector resident in the issue queue."""

    vector_id: int
    # Per-lane list of pending (request, request_index) pairs; a lane may hold
    # requests from this vector only (one vector occupies one queue slot).
    pending: Dict[int, List[Tuple[MemoryRequest, int]]]
    outstanding: int
    enqueue_cycle: int


class SparseMemoryUnit:
    """Cycle-level model of one SpMU: issue queue, allocator, banks, FPUs.

    Args:
        config: Structural parameters (banks, queue depth, crossbar inputs,
            allocator iterations/priorities, Bloom filter size).
        lanes: SIMD lanes feeding the unit.
        ordering: Memory ordering mode (Table 3) or the arbitrated baseline.
        bank_mapping: ``"hash"`` (XOR-folded, Capstan) or ``"linear"``.
        allocator_kind: ``"separable"`` (Capstan) or ``"greedy"`` (weak).
        pipeline_latency: Cycles between issue and completion (crossbar,
            SRAM read, FPU, write-back, output crossbar).
        backend: ``"array"`` (default) simulates through the vectorized
            engine in :mod:`repro.core.spmu_array`; ``"reference"`` keeps
            the original per-cycle object loop. Both produce identical
            statistics and SRAM contents.
        record_trace: Collect :attr:`SpMUStats.per_cycle_active_banks`
            (off by default -- the trace grows one entry per simulated
            cycle).
    """

    def __init__(
        self,
        config: Optional[SpMUConfig] = None,
        lanes: int = 16,
        ordering: OrderingMode = OrderingMode.UNORDERED,
        bank_mapping: str = "hash",
        allocator_kind: str = "separable",
        pipeline_latency: int = 3,
        seed: int = 0,
        backend: str = "array",
        record_trace: bool = False,
    ):
        if backend not in ("array", "numba", "reference"):
            raise SimulationError(f"unknown SpMU backend {backend!r}")
        self._config = config or SpMUConfig()
        self._config.validate()
        self._lanes = lanes
        self._ordering = ordering
        self._bank_mapper = get_bank_mapper(bank_mapping)
        self._bank_mapping_name = bank_mapping
        self._allocator_kind = "separable" if allocator_kind == "separable" else "greedy"
        self._backend = backend
        self._record_trace = record_trace
        self._pipeline_latency = max(1, pipeline_latency)
        self._issues_per_lane = max(1, self._config.crossbar_inputs // lanes)
        if allocator_kind == "separable":
            self._allocator = SeparableAllocator(
                lanes=lanes,
                banks=self._config.banks,
                iterations=self._config.allocator_iterations,
                priorities=self._config.allocator_priorities,
                queue_depth=self._config.queue_depth,
            )
        else:
            self._allocator = GreedyAllocator(lanes=lanes, banks=self._config.banks)
        self._bloom = BloomFilter(self._config.bloom_filter_entries)
        self._words = self._config.banks * self._config.words_per_bank
        self._data = np.zeros(self._words, dtype=np.float64)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # Functional interface
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SpMUConfig:
        """The unit's structural configuration."""
        return self._config

    @property
    def ordering(self) -> OrderingMode:
        """The configured memory ordering mode."""
        return self._ordering

    @property
    def capacity_words(self) -> int:
        """Number of addressable 32-bit words."""
        return self._words

    def load_data(self, base: int, values: np.ndarray) -> None:
        """Initialise ``len(values)`` words starting at ``base``."""
        values = np.asarray(values, dtype=np.float64)
        if base < 0 or base + values.size > self._words:
            raise SimulationError("load_data outside SpMU capacity")
        self._data[base : base + values.size] = values

    def read_data(self, base: int, count: int) -> np.ndarray:
        """Read ``count`` words starting at ``base`` (debug/verification)."""
        if base < 0 or base + count > self._words:
            raise SimulationError("read_data outside SpMU capacity")
        return self._data[base : base + count].copy()

    def execute_request(self, request: MemoryRequest) -> RequestResult:
        """Functionally execute one request against the local SRAM."""
        address = request.address
        if address < 0 or address >= self._words:
            raise SimulationError(f"address {address} outside SpMU capacity")
        old = float(self._data[address])
        op = request.op
        value = request.value
        returned = old
        new = old
        changed = False
        if op is RMWOp.READ:
            pass
        elif op is RMWOp.WRITE:
            new = value
            changed = new != old
        elif op is RMWOp.ADD:
            new = old + value
            returned = new
            changed = value != 0.0
        elif op is RMWOp.SUB:
            new = old - value
            returned = new
            changed = value != 0.0
        elif op is RMWOp.MIN_REPORT_CHANGED:
            new = min(old, value)
            changed = new != old
            returned = 1.0 if changed else 0.0
        elif op is RMWOp.MAX:
            new = max(old, value)
            changed = new != old
            returned = new
        elif op is RMWOp.SWAP:
            new = value
            returned = old
            changed = new != old
        elif op is RMWOp.TEST_AND_SET:
            new = 1.0
            returned = old
            changed = old == 0.0
        elif op is RMWOp.WRITE_IF_ZERO:
            if old == 0.0:
                new = value
                changed = True
            returned = old
        elif op is RMWOp.BIT_OR:
            new = float(int(old) | int(value))
            returned = new
            changed = new != old
        elif op is RMWOp.BIT_AND:
            new = float(int(old) & int(value))
            returned = new
            changed = new != old
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unsupported RMW op {op}")
        self._data[address] = new
        return RequestResult(address=address, returned=returned, changed=changed)

    # ------------------------------------------------------------------ #
    # Timing simulation
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> str:
        """The configured backend (``"array"``, ``"numba"``, or ``"reference"``).

        ``"numba"`` routes stats-only batch simulation through the compiled
        per-cycle kernel; paths that need issue collection or trace
        recording (including :meth:`simulate`'s functional execution) run
        on the array engine either way, so the two backends are
        interchangeable here.
        """
        return self._backend

    def simulate(self, vectors) -> SpMUStats:
        """Simulate the pipeline over a stream of request vectors.

        Requests are also executed functionally, so after ``simulate``
        returns the SRAM contents reflect every access.

        Args:
            vectors: Either a :class:`RequestTrace` or a sequence whose
                elements are vectorized requests (up to ``lanes`` lane
                requests each). Lane fields are assigned from position.

        Returns:
            Aggregate :class:`SpMUStats` for the run.
        """
        if self._backend != "reference":
            if isinstance(vectors, RequestTrace):
                trace = vectors
            else:
                trace = RequestTrace.from_vectors(vectors)
            stats = self._simulate_array(trace)
        else:
            if isinstance(vectors, RequestTrace):
                vectors = vectors.to_vectors()
            prepared = [self._prepare_vector(i, vector) for i, vector in enumerate(vectors)]
            if self._ordering is OrderingMode.ARBITRATED:
                stats = self._simulate_arbitrated(prepared)
            else:
                stats = self._simulate_scheduled(prepared)
            stats.vectors = len(prepared)
        stats._banks = self._config.banks  # type: ignore[attr-defined]
        return stats

    def _simulate_array(self, trace: RequestTrace) -> SpMUStats:
        """Run one trace through the vectorized engine, then apply the
        functional updates to the local SRAM in issue order."""
        variant = SpMUVariant(
            ordering=self._ordering,
            bank_mapping=self._bank_mapping_name,
            allocator_kind=self._allocator_kind,
            config=self._config,
            lanes=self._lanes,
            pipeline_latency=self._pipeline_latency,
        )
        [result] = simulate_variants(
            [variant], [trace], record_trace=self._record_trace, collect_issues=True
        )
        self._apply_functional(trace, result)
        return SpMUStats(
            cycles=result.cycles,
            requests=result.requests,
            elided_reads=result.elided_reads,
            bank_busy_cycles=result.bank_busy_cycles,
            vectors=result.vectors,
            stall_cycles_ordering=result.stall_cycles_ordering,
            per_cycle_active_banks=result.per_cycle_active_banks,
        )

    def _apply_functional(self, trace: RequestTrace, result: SimResult) -> None:
        """Apply a simulated run's RMW side effects to the local SRAM.

        Requests issued in the same cycle always target distinct banks (so
        distinct addresses); only the cross-cycle per-address order matters
        for the final memory image, and the engine's issue order preserves
        it exactly. READ/ADD/SUB streams apply as one in-order
        ``np.add.at`` pass; any other op falls back to scalar execution.
        """
        if len(trace) == 0 or result.issue_vectors is None:
            return
        position = np.full((trace.n_vectors, int(trace.lanes.max()) + 1), -1, dtype=np.int64)
        position[trace.vector_ids, trace.lanes] = np.arange(len(trace))
        flat = position[result.issue_vectors, result.issue_lanes]
        ops = trace.ops[flat]
        if not ops.size or int(ops.max()) <= OP_READ:
            return
        if int(ops.max()) <= OP_SUB:
            writes = ops != OP_READ
            addresses = trace.addresses[flat][writes]
            deltas = np.where(ops[writes] == OP_ADD, 1.0, -1.0) * trace.values[flat][writes]
            np.add.at(self._data, addresses, deltas)
            return
        for index in flat:
            self.execute_request(
                MemoryRequest(
                    address=int(trace.addresses[index]),
                    op=_CODE_TO_OP[int(trace.ops[index])],
                    value=float(trace.values[index]),
                    lane=int(trace.lanes[index]),
                )
            )

    def _prepare_vector(
        self, vector_id: int, vector: Sequence[MemoryRequest]
    ) -> Tuple[int, List[MemoryRequest], int]:
        """Assign lanes, apply repeated-read elision, and count elisions."""
        if len(vector) > self._lanes:
            raise SimulationError(
                f"vector {vector_id} has {len(vector)} requests for {self._lanes} lanes"
            )
        seen_reads: Dict[int, int] = {}
        kept: List[MemoryRequest] = []
        elided = 0
        for lane, request in enumerate(vector):
            request = MemoryRequest(
                address=request.address, op=request.op, value=request.value, lane=lane
            )
            if request.op.is_read_only:
                if request.address in seen_reads:
                    # Duplicate read-only access: squashed, filled from the
                    # initial access when the vector dequeues.
                    elided += 1
                    self.execute_request(request)  # functional no-op read
                    continue
                seen_reads[request.address] = lane
            kept.append(request)
        return vector_id, kept, elided

    def _simulate_scheduled(
        self, prepared: List[Tuple[int, List[MemoryRequest], int]]
    ) -> SpMUStats:
        """Simulate the reordering pipeline (unordered / addr / fully ordered)."""
        stats = SpMUStats()
        queue: List[_QueueEntry] = []
        waiting = list(prepared)
        waiting_index = 0
        completions: List[Tuple[int, _QueueEntry, int]] = []  # (cycle, entry, count)
        cycle = 0
        total_requests = sum(len(kept) for _, kept, _ in prepared)
        stats.elided_reads = sum(elided for _, _, elided in prepared)
        executed = 0
        max_cycles = 64 * (total_requests + len(prepared) + 8)
        trace: Optional[List[int]] = [] if self._record_trace else None

        while executed < total_requests or queue or waiting_index < len(waiting):
            if cycle > max_cycles:
                raise SimulationError("SpMU simulation did not converge")
            # 1. Refill the issue queue, subject to ordering constraints.
            stalled = self._refill_queue(queue, waiting, waiting_index, cycle)
            waiting_index += stalled[0]
            stats.stall_cycles_ordering += stalled[1]

            # 2. Allocation: build per-lane candidate lists and run the
            #    allocator up to ``issues_per_lane`` times (input speedup).
            issued: List[Tuple[_QueueEntry, MemoryRequest]] = []
            banks_taken: set = set()
            for _speedup_pass in range(self._issues_per_lane):
                requests_by_lane = self._collect_candidates(queue, banks_taken)
                if not any(requests_by_lane):
                    break
                result = self._allocator.allocate(requests_by_lane)
                if not result.grants:
                    break
                for lane, bank in result.grants.items():
                    entry, request = self._oldest_request_for(queue, lane, bank)
                    if entry is None or request is None:
                        continue
                    banks_taken.add(bank)
                    issued.append((entry, request))
                    self._mark_issued(entry, lane, request)

            # 3. Execute issued requests; they complete after the pipeline
            #    latency, at which point their vector may dequeue.
            for entry, request in issued:
                self.execute_request(request)
                executed += 1
                completions.append((cycle + self._pipeline_latency, entry, 1))

            if trace is not None:
                trace.append(len({self._bank_of(req.address) for _, req in issued}))
            stats.bank_busy_cycles += len(issued)
            stats.requests += len(issued)

            # 4. Retire completions and free queue slots / Bloom entries.
            still_pending: List[Tuple[int, _QueueEntry, int]] = []
            for complete_cycle, entry, count in completions:
                if complete_cycle <= cycle:
                    entry.outstanding -= count
                else:
                    still_pending.append((complete_cycle, entry, count))
            completions = still_pending
            for entry in list(queue):
                if entry.outstanding == 0 and not any(entry.pending.values()):
                    queue.remove(entry)

            cycle += 1

        # Drain remaining pipeline latency.
        if completions:
            cycle = max(cycle, max(c for c, _, _ in completions) + 1)
        stats.cycles = cycle
        if trace is not None:
            stats.per_cycle_active_banks = np.asarray(trace, dtype=np.int64)
        return stats

    def _simulate_arbitrated(
        self, prepared: List[Tuple[int, List[MemoryRequest], int]]
    ) -> SpMUStats:
        """Simulate the arbitrated baseline: one vector at a time.

        Accesses within the current vector may complete in any order, but
        the vector must finish before the next begins; a vector with ``k``
        requests to its most-contended bank takes ``k`` cycles.
        """
        stats = SpMUStats()
        stats.elided_reads = sum(elided for _, _, elided in prepared)
        cycle = 0
        trace: Optional[List[int]] = [] if self._record_trace else None
        for _vector_id, kept, _ in prepared:
            remaining = list(kept)
            while remaining:
                banks_taken: set = set()
                issued: List[MemoryRequest] = []
                leftover: List[MemoryRequest] = []
                for request in remaining:
                    bank = self._bank_of(request.address)
                    if bank in banks_taken:
                        leftover.append(request)
                    else:
                        banks_taken.add(bank)
                        issued.append(request)
                for request in issued:
                    self.execute_request(request)
                if trace is not None:
                    trace.append(len(banks_taken))
                stats.bank_busy_cycles += len(issued)
                stats.requests += len(issued)
                remaining = leftover
                cycle += 1
        stats.cycles = cycle
        if trace is not None:
            stats.per_cycle_active_banks = np.asarray(trace, dtype=np.int64)
        return stats

    # ------------------------------------------------------------------ #
    # Scheduling helpers
    # ------------------------------------------------------------------ #

    def _bank_of(self, address: int) -> int:
        """Map a word address to its SRAM bank."""
        return self._bank_mapper(address, self._config.banks)

    def _refill_queue(
        self,
        queue: List[_QueueEntry],
        waiting: List[Tuple[int, List[MemoryRequest], int]],
        waiting_index: int,
        cycle: int,
    ) -> Tuple[int, int]:
        """Move vectors from the input stream into the issue queue.

        Returns ``(vectors_accepted, stall_cycles)``.
        """
        accepted = 0
        stalls = 0
        while waiting_index + accepted < len(waiting) and len(queue) < self._config.queue_depth:
            vector_id, kept, _ = waiting[waiting_index + accepted]
            if self._ordering is OrderingMode.FULLY_ORDERED and queue:
                # Program order: only one vector may be in flight.
                stalls += 1
                break
            if self._ordering is OrderingMode.ADDRESS_ORDERED:
                addresses = [req.address for req in kept]
                if len(set(addresses)) != len(addresses):
                    # Intra-vector same-address conflict: the vector must be
                    # split; model the split as a one-cycle stall before the
                    # vector enters (Figure 4's split at bank 2).
                    stalls += 1
                if any(self._bloom.may_contain(addr) for addr in addresses):
                    stalls += 1
                    break
                for addr in addresses:
                    self._bloom.insert(addr)
            pending: Dict[int, List[Tuple[MemoryRequest, int]]] = {}
            for request in kept:
                pending.setdefault(request.lane, []).append((request, len(queue)))
            queue.append(
                _QueueEntry(
                    vector_id=vector_id,
                    pending=pending,
                    outstanding=len(kept),
                    enqueue_cycle=cycle,
                )
            )
            accepted += 1
        return accepted, stalls

    def _collect_candidates(
        self, queue: List[_QueueEntry], banks_taken: set
    ) -> List[List[Tuple[int, int]]]:
        """Build per-lane (bank, age) candidate lists for the allocator."""
        candidates: List[List[Tuple[int, int]]] = [[] for _ in range(self._lanes)]
        if self._ordering is OrderingMode.FULLY_ORDERED:
            return self._collect_in_order_candidates(queue, banks_taken)
        for age, entry in enumerate(queue):
            slot_age = age * 1  # queue position doubles as the age class
            for lane, pending in entry.pending.items():
                for request, _slot in pending:
                    bank = self._bank_of(request.address)
                    if bank in banks_taken:
                        continue
                    candidates[lane].append((bank, min(slot_age, self._config.queue_depth - 1)))
        return candidates

    def _collect_in_order_candidates(
        self, queue: List[_QueueEntry], banks_taken: set
    ) -> List[List[Tuple[int, int]]]:
        """Fully-ordered mode: only a conflict-free program-order prefix bids."""
        candidates: List[List[Tuple[int, int]]] = [[] for _ in range(self._lanes)]
        if not queue:
            return candidates
        entry = queue[0]
        remaining = []
        for lane in sorted(entry.pending):
            for request, _slot in entry.pending[lane]:
                remaining.append((lane, request))
        used_banks = set(banks_taken)
        for lane, request in sorted(remaining, key=lambda pair: pair[1].lane):
            bank = self._bank_of(request.address)
            if bank in used_banks:
                break  # program order: cannot issue past a conflict
            used_banks.add(bank)
            candidates[lane].append((bank, 0))
        return candidates

    def _oldest_request_for(
        self, queue: List[_QueueEntry], lane: int, bank: int
    ) -> Tuple[Optional[_QueueEntry], Optional[MemoryRequest]]:
        """Per-lane priority encoder: the oldest pending request to ``bank``."""
        for entry in queue:
            for request, _slot in entry.pending.get(lane, []):
                if self._bank_of(request.address) == bank:
                    return entry, request
        return None, None

    def _mark_issued(self, entry: _QueueEntry, lane: int, request: MemoryRequest) -> None:
        """Remove ``request`` from the pending metadata once granted."""
        pending = entry.pending.get(lane, [])
        for i, (candidate, _slot) in enumerate(pending):
            if candidate is request:
                pending.pop(i)
                break
        if self._ordering is OrderingMode.ADDRESS_ORDERED:
            try:
                self._bloom.remove(request.address)
            except ValueError:
                pass


def random_request_vectors(
    count: int,
    lanes: int = 16,
    address_space: int = 4096,
    seed: int = 0,
    write_fraction: float = 0.0,
) -> List[List[MemoryRequest]]:
    """Generate uniformly random request vectors for microbenchmarks.

    This is the "random access trace" workload used for the Table 4 and
    Figure 4 sensitivity studies.
    """
    rng = np.random.default_rng(seed)
    vectors: List[List[MemoryRequest]] = []
    for _ in range(count):
        addresses = rng.integers(0, address_space, size=lanes)
        ops = rng.random(lanes) < write_fraction
        vectors.append(
            [
                MemoryRequest(
                    address=int(addr),
                    op=RMWOp.ADD if is_write else RMWOp.READ,
                    value=1.0,
                    lane=lane,
                )
                for lane, (addr, is_write) in enumerate(zip(addresses, ops))
            ]
        )
    return vectors


def random_request_trace(
    count: int,
    lanes: int = 16,
    address_space: int = 4096,
    seed: int = 0,
    write_fraction: float = 0.0,
) -> RequestTrace:
    """Array-native :func:`random_request_vectors` (identical draws).

    The random stream is drawn vector by vector with the same generator
    calls as the object-based factory, so
    ``RequestTrace.from_vectors(random_request_vectors(...))`` and
    ``random_request_trace(...)`` describe the same workload bit for bit.
    """
    rng = np.random.default_rng(seed)
    address_rows = []
    write_rows = []
    for _ in range(count):
        address_rows.append(rng.integers(0, address_space, size=lanes))
        write_rows.append(rng.random(lanes) < write_fraction)
    if count:
        addresses = np.concatenate(address_rows).astype(np.int64)
        writes = np.concatenate(write_rows)
    else:
        addresses = np.zeros(0, dtype=np.int64)
        writes = np.zeros(0, dtype=bool)
    return RequestTrace(
        addresses=addresses,
        ops=np.where(writes, OP_ADD, OP_READ).astype(np.int16),
        values=np.ones(count * lanes, dtype=np.float64),
        lanes=np.tile(np.arange(lanes, dtype=np.int64), count),
        vector_ids=np.repeat(np.arange(count, dtype=np.int64), lanes),
        n_vectors=count,
    )


def measure_bank_utilization(
    config: SpMUConfig,
    ordering: OrderingMode = OrderingMode.UNORDERED,
    vectors: int = 200,
    lanes: int = 16,
    bank_mapping: str = "hash",
    allocator_kind: str = "separable",
    seed: int = 7,
    backend: str = "array",
) -> float:
    """Run a random trace through an SpMU and return its bank utilization.

    Convenience wrapper used by the Table 4 / Table 9 / Figure 4 harnesses.
    """
    unit = SparseMemoryUnit(
        config=config,
        lanes=lanes,
        ordering=ordering,
        bank_mapping=bank_mapping,
        allocator_kind=allocator_kind,
        backend=backend,
    )
    if backend != "reference":
        trace = random_request_trace(vectors, lanes=lanes, seed=seed)
    else:
        trace = random_request_vectors(vectors, lanes=lanes, seed=seed)
    stats = unit.simulate(trace)
    return stats.bank_utilization


def _persistent_throughput_store():
    """The on-disk throughput store, or ``None`` when disabled/unavailable.

    Imported lazily (and at call time) so this low-level module never pulls
    in the runtime package during import -- :mod:`repro.runtime` sits above
    :mod:`repro.core` and importing it eagerly here would be circular.
    """
    global _STORE_UNAVAILABLE
    if _STORE_UNAVAILABLE:
        return None
    try:
        from ..runtime.cache import ThroughputStore, throughput_store_enabled
    except ImportError:
        _STORE_UNAVAILABLE = True
        return None
    if not throughput_store_enabled():
        return None
    return ThroughputStore()


_STORE_UNAVAILABLE = False


def effective_bank_throughput(
    ordering: OrderingMode = OrderingMode.UNORDERED,
    bank_mapping: str = "hash",
    allocator_kind: str = "separable",
    config: Optional[SpMUConfig] = None,
    lanes: int = 16,
) -> float:
    """Random-access requests per cycle an SpMU sustains (out of ``banks``).

    The application-level timing model multiplies this by the number of
    SpMUs involved to convert random on-chip access counts into cycles.
    Results are memoized in process and persisted to the content-addressed
    :class:`~repro.runtime.cache.ThroughputStore` because the underlying
    microbenchmark is stochastic but deterministic for a given
    configuration -- design-space sweeps re-cost hundreds of SpMU variants,
    and each fresh process would otherwise re-simulate all of them.
    """
    config = config or SpMUConfig()
    key = (ordering, bank_mapping, allocator_kind, config, lanes)
    cached = _THROUGHPUT_CACHE.get(key)
    if cached is not None:
        return cached
    store = _persistent_throughput_store()
    store_key = None
    if store is not None:
        store_key = store.key(
            ordering=ordering,
            bank_mapping=bank_mapping,
            allocator_kind=allocator_kind,
            config=config,
            lanes=lanes,
        )
        persisted = store.load(store_key)
        if persisted is not None:
            _THROUGHPUT_CACHE[key] = persisted
            return persisted
    utilization = measure_bank_utilization(
        config,
        ordering=ordering,
        vectors=120,
        lanes=lanes,
        bank_mapping=bank_mapping,
        allocator_kind=allocator_kind,
    )
    throughput = utilization * config.banks
    _THROUGHPUT_CACHE[key] = throughput
    if store is not None and store_key is not None:
        try:
            store.store(store_key, throughput)
        except OSError:
            pass  # a read-only or full filesystem must never fail costing
    return throughput


_THROUGHPUT_CACHE: Dict[Tuple, float] = {}

#: Microbenchmark workload behind every effective-throughput measurement:
#: 120 uniformly random 16-bit-address vectors, seed 7 (matching the scalar
#: path's :func:`measure_bank_utilization` defaults).
_THROUGHPUT_VECTORS = 120
_THROUGHPUT_SEED = 7


def _variant_cache_key(variant: SpMUVariant) -> Tuple:
    return (
        variant.ordering,
        variant.bank_mapping,
        variant.allocator_kind,
        variant.config,
        variant.lanes,
    )


def effective_bank_throughput_batch(
    variants: Sequence[SpMUVariant],
    backend: Optional[str] = None,
    memory_budget=None,
) -> np.ndarray:
    """Batched :func:`effective_bank_throughput` over a variant grid.

    Resolves every variant through the same in-process memo and persistent
    :class:`~repro.runtime.cache.ThroughputStore` as the scalar path, but
    in one pass: cached values are loaded with a single ``load_many``
    transaction, the cold remainder is simulated in one lock-step
    :func:`~repro.core.spmu_array.simulate_variants` call (variants with
    equal lane counts share one trace), and the fresh measurements are
    persisted with a single ``store_many`` transaction. Values are
    identical to calling the scalar function variant by variant.

    Args:
        variants: The SpMU configuration points to measure.
        backend: ``None`` (process default), ``"array"``/``"numpy"``
            (lock-step engine), ``"numba"`` (compiled per-cycle kernel,
            numpy fallback when absent), or ``"reference"`` (scalar loop
            per variant, for benchmarking and verification).
        memory_budget: Byte budget bounding the cold-variant lock-step
            state (see :func:`~repro.core.spmu_array.simulate_variants`);
            ``None`` defers to ``REPRO_MEMORY_BUDGET``.

    Returns:
        Sustained random-access requests per cycle, aligned with
        ``variants``.
    """
    variants = list(variants)
    results = np.empty(len(variants), dtype=np.float64)
    if backend == "reference":
        for i, variant in enumerate(variants):
            utilization = measure_bank_utilization(
                variant.config,
                ordering=variant.ordering,
                vectors=_THROUGHPUT_VECTORS,
                lanes=variant.lanes,
                bank_mapping=variant.bank_mapping,
                allocator_kind=variant.allocator_kind,
                backend="reference",
            )
            results[i] = utilization * variant.config.banks
        return results

    missing: Dict[Tuple, List[int]] = {}
    for i, variant in enumerate(variants):
        cached = _THROUGHPUT_CACHE.get(_variant_cache_key(variant))
        if cached is not None:
            results[i] = cached
        else:
            missing.setdefault(_variant_cache_key(variant), []).append(i)
    if not missing:
        return results

    store = _persistent_throughput_store()
    store_keys: Dict[Tuple, str] = {}
    if store is not None:
        for key, indices in missing.items():
            variant = variants[indices[0]]
            store_keys[key] = store.key(
                ordering=variant.ordering,
                bank_mapping=variant.bank_mapping,
                allocator_kind=variant.allocator_kind,
                config=variant.config,
                lanes=variant.lanes,
            )
        persisted = store.load_many(list(store_keys.values()))
        for key, indices in list(missing.items()):
            value = persisted.get(store_keys[key])
            if value is not None:
                _THROUGHPUT_CACHE[key] = value
                results[indices] = value
                del missing[key]
    if not missing:
        return results

    cold_keys = list(missing)
    cold_variants = [variants[missing[key][0]] for key in cold_keys]
    traces: Dict[int, RequestTrace] = {}
    for variant in cold_variants:
        if variant.lanes not in traces:
            traces[variant.lanes] = random_request_trace(
                _THROUGHPUT_VECTORS, lanes=variant.lanes, seed=_THROUGHPUT_SEED
            )
    simulated = simulate_variants(
        cold_variants,
        [traces[v.lanes] for v in cold_variants],
        backend=backend,
        memory_budget=memory_budget,
    )
    fresh: Dict[str, float] = {}
    for key, variant, result in zip(cold_keys, cold_variants, simulated):
        banks = variant.config.banks
        utilization = (
            result.bank_busy_cycles / (result.cycles * banks) if result.cycles else 0.0
        )
        throughput = utilization * banks
        _THROUGHPUT_CACHE[key] = throughput
        results[missing[key]] = throughput
        if store is not None:
            fresh[store_keys[key]] = throughput
    if store is not None and fresh:
        try:
            store.store_many(fresh)
        except OSError:
            pass  # a read-only or full filesystem must never fail costing
    return results
