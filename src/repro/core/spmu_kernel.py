"""Scalar per-cycle SpMU scheduling kernel (the ``numba`` backend).

The lock-step engine in :mod:`repro.core.spmu_array` simulates many
variants at once with per-cycle tensor passes; that amortizes numpy's
per-operation overhead across the grid, but a *single* variant still pays
dozens of array operations per simulated cycle. This module re-expresses
one variant's cycle loop -- queue refill, separable / greedy allocation,
address-ordered Bloom-filter admission, completion and retirement -- as a
plain scalar loop that ``numba.njit`` compiles to machine code.

The kernel is written to be correct *without* numba: the
:func:`~repro._compiled.njit` decorator is an identity fallback, so the
function always runs (slowly) as pure Python, which is how the
equivalence tests pin it statistic-for-statistic against the lock-step
engine even on machines without numba installed.

Semantics are a line-for-line transcription of the lock-step loop for a
single variant:

* refill: unordered accepts unconditionally; address-ordered goes attempt
  by attempt, paying the intra-vector-duplicate split stall each attempt
  and stopping for the cycle on a Bloom hit.
* allocation: up to ``ipl`` input-speedup passes per cycle. Each pass
  derives the (lane, bank) -> oldest-queue-position table, then runs the
  separable iterations (per-iteration age cutoffs; stage 1 gives each lane
  its lowest eligible bank, stage 2 gives each bank its lowest bidding
  lane) or the greedy lane-ordered scan. Banks stay taken across passes of
  one cycle; lanes reset per pass.
* address-ordered issue decrements both Bloom slots of every grant in the
  pass, membership-checked against the counters as they stood at the end
  of the pass's allocation (all checks before all decrements, matching the
  batched engine's vectorized subtract).
* completions retire ``latency`` cycles after issue through a ring buffer;
  a queue slot frees when all of its kept requests have retired, and the
  simulation ends on a retiring cycle once everything issued and retired.

Returns ``(cycles, executed, stalls)``; ``cycles`` is ``-1`` when the
convergence bound is exceeded (the caller raises, matching the lock-step
engine's :class:`~repro.errors.SimulationError`).
"""

from __future__ import annotations

import numpy as np

from .._compiled import njit

#: Sentinel queue position meaning "no pending request"; larger than any
#: real queue position or age cutoff. Mirrors ``spmu_array._NO_POS``.
NO_POS = 1 << 20


@njit
def simulate_scheduled_single(
    pend,
    remaining,
    slots0,
    slots1,
    has_dup,
    counters,
    cutoffs,
    is_separable,
    is_ao,
    total,
    depth,
    banks,
    ipl,
    latency,
    max_cycles,
):
    """Simulate one unordered / address-ordered variant's cycle loop.

    Args:
        pend: ``int64[n_vectors, width]`` bank of each kept request, ``-1``
            where a lane has none; mutated in place as requests issue.
        remaining: ``int64[n_vectors]`` kept requests not yet retired per
            vector; mutated in place.
        slots0 / slots1: ``int64[n_vectors, width]`` Bloom-filter slots per
            kept request (zeros when not address-ordered).
        has_dup: ``int64[n_vectors]`` 1 where a vector holds duplicate
            addresses (the address-ordered split-stall condition).
        counters: ``int64[entries]`` zeroed counting-Bloom scratch.
        cutoffs: ``int64[iterations]`` separable age cutoffs (empty for
            greedy; ``<= 0`` entries disable an iteration).
        is_separable / is_ao: Allocator and ordering selectors.
        total: Total kept requests in the trace.
        depth / banks / ipl / latency / max_cycles: Structural parameters
            (queue depth, bank count, input-speedup passes, pipeline
            latency, convergence bound).

    Returns:
        ``(cycles, executed, stalls)``; ``cycles`` is ``-1`` on
        non-convergence.
    """
    n_vectors, width = pend.shape
    executed = 0
    stalls = 0
    if n_vectors == 0:
        return 0, executed, stalls

    queue = np.full(depth, -1, dtype=np.int64)
    qn = 0
    waiting = 0

    min_pos = np.empty((width, banks), dtype=np.int64)
    taken = np.zeros(banks, dtype=np.bool_)
    lane_done = np.zeros(width, dtype=np.bool_)
    grant_vec = np.empty(max(width, 1), dtype=np.int64)
    grant_lane = np.empty(max(width, 1), dtype=np.int64)
    grant_ok = np.empty(max(width, 1), dtype=np.bool_)

    ring = latency + 1
    comp_cap = max(width * ipl, 1)
    comp_vec = np.empty((ring, comp_cap), dtype=np.int64)
    comp_n = np.zeros(ring, dtype=np.int64)

    cycle = 0
    while True:
        if cycle > max_cycles:
            return -1, executed, stalls

        # ---- queue refill -------------------------------------------------
        if is_ao:
            while waiting < n_vectors and qn < depth:
                stalls += has_dup[waiting]
                hit = False
                for lane in range(width):
                    if pend[waiting, lane] >= 0:
                        if (
                            counters[slots0[waiting, lane]] > 0
                            and counters[slots1[waiting, lane]] > 0
                        ):
                            hit = True
                            break
                if hit:
                    stalls += 1
                    break
                for lane in range(width):
                    if pend[waiting, lane] >= 0:
                        counters[slots0[waiting, lane]] += 1
                        counters[slots1[waiting, lane]] += 1
                queue[qn] = waiting
                qn += 1
                waiting += 1
        else:
            while waiting < n_vectors and qn < depth:
                queue[qn] = waiting
                qn += 1
                waiting += 1

        # ---- allocation passes -------------------------------------------
        for bank in range(banks):
            taken[bank] = False
        for p in range(ipl):
            # (lane, bank) -> oldest bidding queue position. Queue order is
            # age order, so the first writer per pair is the oldest.
            for lane in range(width):
                for bank in range(banks):
                    min_pos[lane, bank] = NO_POS
            for d in range(qn):
                vec = queue[d]
                for lane in range(width):
                    bank = pend[vec, lane]
                    if bank >= 0 and min_pos[lane, bank] == NO_POS:
                        min_pos[lane, bank] = d

            n_grants = 0
            if is_separable:
                for lane in range(width):
                    lane_done[lane] = False
                for it in range(cutoffs.shape[0]):
                    cut = cutoffs[it]
                    if cut <= 0:
                        continue
                    # Stage 1: each lane keeps its lowest eligible bank.
                    # Stage 2: each bank accepts its lowest bidding lane --
                    # lanes scan in ascending order, so the first lane to
                    # choose a bank wins it.
                    it_grants = n_grants
                    for lane in range(width):
                        if lane_done[lane]:
                            continue
                        for bank in range(banks):
                            if not taken[bank] and min_pos[lane, bank] < cut:
                                grant_vec[n_grants] = bank
                                grant_lane[n_grants] = lane
                                n_grants += 1
                                break
                    # Resolve stage 2 for this iteration's bids: the bids
                    # were recorded lane-ascending, so the first bid per
                    # bank wins; losers are dropped.
                    kept = it_grants
                    for g in range(it_grants, n_grants):
                        bank = grant_vec[g]
                        lane = grant_lane[g]
                        if not taken[bank]:
                            taken[bank] = True
                            lane_done[lane] = True
                            d = min_pos[lane, bank]
                            vec = queue[d]
                            pend[vec, lane] = -1
                            grant_vec[kept] = vec
                            grant_lane[kept] = lane
                            slot = (cycle + latency) % ring
                            comp_vec[slot, comp_n[slot]] = vec
                            comp_n[slot] += 1
                            kept += 1
                    n_grants = kept
            else:
                for lane in range(width):
                    best = NO_POS
                    best_bank = -1
                    for bank in range(banks):
                        if not taken[bank] and min_pos[lane, bank] < best:
                            best = min_pos[lane, bank]
                            best_bank = bank
                    if best_bank >= 0:
                        taken[best_bank] = True
                        vec = queue[best]
                        pend[vec, lane] = -1
                        grant_vec[n_grants] = vec
                        grant_lane[n_grants] = lane
                        n_grants += 1
                        slot = (cycle + latency) % ring
                        comp_vec[slot, comp_n[slot]] = vec
                        comp_n[slot] += 1

            if n_grants == 0:
                break
            executed += n_grants

            if is_ao:
                # All membership checks read the counters as they stand
                # after the pass's allocation, then all decrements apply --
                # matching the batched engine's vectorized subtract.
                for g in range(n_grants):
                    grant_ok[g] = (
                        counters[slots0[grant_vec[g], grant_lane[g]]] > 0
                        and counters[slots1[grant_vec[g], grant_lane[g]]] > 0
                    )
                for g in range(n_grants):
                    if grant_ok[g]:
                        counters[slots0[grant_vec[g], grant_lane[g]]] -= 1
                        counters[slots1[grant_vec[g], grant_lane[g]]] -= 1

        # ---- completion and retirement -----------------------------------
        slot = cycle % ring
        for i in range(comp_n[slot]):
            remaining[comp_vec[slot, i]] -= 1
        comp_n[slot] = 0

        removed = False
        new_qn = 0
        for d in range(qn):
            vec = queue[d]
            if remaining[vec] == 0:
                removed = True
            else:
                queue[new_qn] = vec
                new_qn += 1
        qn = new_qn
        cycle += 1
        if removed and executed >= total and qn == 0 and waiting >= n_vectors:
            return cycle, executed, stalls
