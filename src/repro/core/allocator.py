"""Separable input-first bank allocator (Section 3.1.1).

Every cycle, up to ``lanes * depth`` pending requests bid for access to
``banks`` SRAM banks; the allocator must pick a conflict-free matching (at
most one grant per lane *and* per bank). Capstan uses a multi-iteration
separable allocator [Becker & Dally 2009]:

* Requests are summarized into an ``lanes x banks`` request matrix.
* Each iteration runs two stages of fixed-priority arbiters: first each lane
  keeps at most one requested bank, then each bank accepts at most one lane.
* Later iterations consider only requests that do not conflict with grants
  already established, so they can add grants a greedy pass would miss.
* Age priorities: older queue slots participate in earlier iterations (the
  first 5 slots bid in round one, the first 10 in round two, all 16 in round
  three), which combats head-of-line blocking by stale requests.

The same module also provides the greedy "weak" allocator used in the
Table 9 sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation cycle.

    Attributes:
        grants: Mapping from lane index to granted bank index.
        iterations_used: Allocator iterations actually executed.
        requests_considered: Number of (lane, bank) request pairs examined.
    """

    grants: Dict[int, int]
    iterations_used: int
    requests_considered: int

    @property
    def granted_banks(self) -> int:
        """Number of banks that will be active this cycle."""
        return len(set(self.grants.values()))


class SeparableAllocator:
    """Multi-iteration, multi-priority separable allocator.

    Args:
        lanes: Number of requesting lanes (issue-queue columns).
        banks: Number of SRAM banks.
        iterations: Allocation iterations per cycle (3 in the paper).
        priorities: Number of age-priority classes (1-3 in Table 4). With
            ``p`` priorities, iteration ``i`` (0-based) considers requests
            whose age class is ``<= i`` for ``i < p``; the remaining
            iterations consider all requests.
        queue_depth: Issue-queue depth used to derive age-class boundaries.
    """

    def __init__(
        self,
        lanes: int = 16,
        banks: int = 16,
        iterations: int = 3,
        priorities: int = 3,
        queue_depth: int = 16,
    ):
        if lanes <= 0 or banks <= 0:
            raise ConfigurationError("lanes and banks must be positive")
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not 1 <= priorities <= iterations:
            raise ConfigurationError("priorities must be in [1, iterations]")
        if queue_depth <= 0:
            raise ConfigurationError("queue_depth must be positive")
        self._lanes = lanes
        self._banks = banks
        self._iterations = iterations
        self._priorities = priorities
        self._queue_depth = queue_depth
        self._age_cutoffs = self._compute_age_cutoffs()

    @property
    def lanes(self) -> int:
        """Number of requesting lanes."""
        return self._lanes

    @property
    def banks(self) -> int:
        """Number of SRAM banks."""
        return self._banks

    @property
    def age_cutoffs(self) -> List[int]:
        """Per-iteration queue-slot age cutoffs (oldest-first priorities)."""
        return list(self._age_cutoffs)

    def _compute_age_cutoffs(self) -> List[int]:
        """Queue-slot cutoffs for each allocation iteration.

        With 3 priorities and a 16-slot queue the paper uses cutoffs of 5,
        10, and 16 slots for the three iterations; we generalize that to
        evenly spaced fractions of the queue depth. Iterations beyond the
        priority count consider the whole queue.
        """
        cutoffs = []
        for iteration in range(self._iterations):
            if iteration < self._priorities - 1:
                fraction = (iteration + 1) / self._priorities
                cutoffs.append(max(1, int(round(self._queue_depth * fraction))))
            else:
                cutoffs.append(self._queue_depth)
        return cutoffs

    def allocate(
        self, requests: Sequence[Sequence[Tuple[int, int]]]
    ) -> AllocationResult:
        """Compute a conflict-free lane-to-bank matching for one cycle.

        Args:
            requests: ``requests[lane]`` is the list of pending requests for
                that lane as ``(bank, age)`` pairs, where ``age`` is the
                request's queue slot (0 = oldest). A lane with no pending
                requests passes an empty list.

        Returns:
            An :class:`AllocationResult` with at most one grant per lane and
            per bank. The per-lane priority encoder behaviour (granting the
            oldest request when a lane holds several requests to the granted
            bank) is the caller's responsibility, since only the caller knows
            which concrete request each (lane, bank) pair refers to.
        """
        if len(requests) != self._lanes:
            raise ConfigurationError(
                f"expected requests for {self._lanes} lanes, got {len(requests)}"
            )
        grants: Dict[int, int] = {}
        taken_banks: set = set()
        considered = 0
        iterations_used = 0
        for iteration in range(self._iterations):
            cutoff = self._age_cutoffs[iteration]
            matrix = np.zeros((self._lanes, self._banks), dtype=bool)
            for lane, lane_requests in enumerate(requests):
                if lane in grants:
                    continue
                for bank, age in lane_requests:
                    if age >= cutoff or bank in taken_banks:
                        continue
                    if not 0 <= bank < self._banks:
                        raise ConfigurationError(f"bank {bank} out of range")
                    matrix[lane, bank] = True
                    considered += 1
            if not matrix.any():
                # Early iterations may be empty purely because of their age
                # cutoff; later iterations consider the full queue.
                continue
            iterations_used = iteration + 1
            new_grants = self._separable_iteration(matrix)
            for lane, bank in new_grants.items():
                grants[lane] = bank
                taken_banks.add(bank)
        return AllocationResult(
            grants=grants,
            iterations_used=iterations_used,
            requests_considered=considered,
        )

    def _separable_iteration(self, matrix: np.ndarray) -> Dict[int, int]:
        """One separable-allocator iteration (two fixed-priority stages).

        Stage 1 prunes each lane (row) to its lowest-numbered requested
        bank; stage 2 prunes each bank (column) to its lowest-numbered
        requesting lane. The result has at most one grant per row and column.
        """
        grants: Dict[int, int] = {}
        # Stage 1: each lane selects one bank (fixed priority: lowest bank).
        lane_choice = np.full(self._lanes, -1, dtype=np.int64)
        for lane in range(self._lanes):
            banks = np.nonzero(matrix[lane])[0]
            if banks.size:
                lane_choice[lane] = banks[0]
        # Stage 2: each bank accepts one lane (fixed priority: lowest lane).
        for bank in range(self._banks):
            lanes = np.nonzero(lane_choice == bank)[0]
            if lanes.size:
                grants[int(lanes[0])] = bank
        return grants


class GreedyAllocator:
    """Single-pass greedy allocator ("Weak Alloc" in Table 9).

    Lane 0 gets its first choice of banks, then lane 1, and so on; no
    retry iterations and no age priorities. Used to quantify how much the
    separable multi-iteration allocator buys.
    """

    def __init__(self, lanes: int = 16, banks: int = 16):
        if lanes <= 0 or banks <= 0:
            raise ConfigurationError("lanes and banks must be positive")
        self._lanes = lanes
        self._banks = banks

    @property
    def lanes(self) -> int:
        """Number of requesting lanes."""
        return self._lanes

    @property
    def banks(self) -> int:
        """Number of SRAM banks."""
        return self._banks

    def allocate(
        self, requests: Sequence[Sequence[Tuple[int, int]]]
    ) -> AllocationResult:
        """Greedy lane-ordered matching over the oldest request per lane."""
        if len(requests) != self._lanes:
            raise ConfigurationError(
                f"expected requests for {self._lanes} lanes, got {len(requests)}"
            )
        grants: Dict[int, int] = {}
        taken: set = set()
        considered = 0
        for lane, lane_requests in enumerate(requests):
            # Consider requests oldest-first; grant the first free bank.
            for bank, _age in sorted(lane_requests, key=lambda pair: pair[1]):
                considered += 1
                if bank not in taken:
                    grants[lane] = bank
                    taken.add(bank)
                    break
        return AllocationResult(grants=grants, iterations_used=1, requests_considered=considered)


def make_allocator(
    kind: str,
    lanes: int = 16,
    banks: int = 16,
    iterations: int = 3,
    priorities: int = 3,
    queue_depth: int = 16,
):
    """Factory for the allocator variants used in the sensitivity studies.

    Args:
        kind: ``"separable"`` (Capstan), ``"greedy"`` (weak allocation), or
            ``"none"`` which also returns the greedy allocator -- the
            arbitrated baseline is modelled at the SpMU level, not here.
    """
    if kind == "separable":
        return SeparableAllocator(
            lanes=lanes,
            banks=banks,
            iterations=iterations,
            priorities=priorities,
            queue_depth=queue_depth,
        )
    if kind in ("greedy", "weak", "none"):
        return GreedyAllocator(lanes=lanes, banks=banks)
    raise ConfigurationError(f"unknown allocator kind {kind!r}")
