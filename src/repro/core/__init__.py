"""Capstan's hardware components (Section 3 of the paper).

This subpackage contains the paper's primary contribution: the sparse
memory unit (SpMU) with its separable bank allocator and reordering
pipeline, the bit-vector/data scanners that implement sparse loop headers,
the butterfly shuffle networks, atomic DRAM address generators, read-only
DRAM compression, pointer-to-bit-vector format conversion, the compute-unit
model, and the calibrated area/power model.
"""

from .allocator import AllocationResult, GreedyAllocator, SeparableAllocator, make_allocator
from .address_generator import AGStats, DRAMAddressGenerator, PartitionedDRAM
from .area import (
    AreaBreakdown,
    area_overhead_vs_plasticine,
    capstan_area,
    plasticine_area,
    power_overhead_vs_plasticine,
    scanner_area_um2,
    scheduler_area_um2,
)
from .bank_hash import (
    conflict_count,
    get_bank_mapper,
    hashed_bank,
    hashed_banks_array,
    linear_bank,
    linear_banks_array,
)
from .bloom import BloomFilter
from .compression import (
    CompressedPacket,
    CompressionReport,
    compress_pointer_array,
    compression_ratio,
    decompress_packets,
    estimate_app_compression,
)
from .compute_unit import ComputeUnit, LaneActivity, OuterParallelism, distribute_work
from .format_conversion import ConversionStats, FormatConverter
from .ordering import OrderingMode
from .scanner import (
    BitVectorScanner,
    DataScanner,
    ScanBatch,
    ScanElement,
    ScanMode,
    ScanTiming,
    scan_timing_from_mask,
    scan_timing_from_mask_reference,
    timing_from_indices,
)
from .shuffle import MergeUnit, ShuffleNetwork, ShuffleRequest, ShuffleStats, merge_efficiency
from .spmu import (
    MemoryRequest,
    RMWOp,
    RequestResult,
    RequestTrace,
    SparseMemoryUnit,
    SpMUStats,
    effective_bank_throughput,
    effective_bank_throughput_batch,
    measure_bank_utilization,
    random_request_trace,
    random_request_vectors,
)
from .spmu_array import SpMUVariant, simulate_variants

__all__ = [
    "AllocationResult",
    "SeparableAllocator",
    "GreedyAllocator",
    "make_allocator",
    "AGStats",
    "DRAMAddressGenerator",
    "PartitionedDRAM",
    "AreaBreakdown",
    "capstan_area",
    "plasticine_area",
    "area_overhead_vs_plasticine",
    "power_overhead_vs_plasticine",
    "scanner_area_um2",
    "scheduler_area_um2",
    "hashed_bank",
    "linear_bank",
    "hashed_banks_array",
    "linear_banks_array",
    "get_bank_mapper",
    "conflict_count",
    "BloomFilter",
    "CompressedPacket",
    "CompressionReport",
    "compress_pointer_array",
    "decompress_packets",
    "compression_ratio",
    "estimate_app_compression",
    "ComputeUnit",
    "LaneActivity",
    "OuterParallelism",
    "distribute_work",
    "ConversionStats",
    "FormatConverter",
    "OrderingMode",
    "BitVectorScanner",
    "DataScanner",
    "ScanMode",
    "ScanElement",
    "ScanTiming",
    "ScanBatch",
    "scan_timing_from_mask",
    "scan_timing_from_mask_reference",
    "timing_from_indices",
    "MergeUnit",
    "ShuffleNetwork",
    "ShuffleRequest",
    "ShuffleStats",
    "merge_efficiency",
    "MemoryRequest",
    "RMWOp",
    "RequestResult",
    "RequestTrace",
    "SparseMemoryUnit",
    "SpMUStats",
    "SpMUVariant",
    "simulate_variants",
    "random_request_vectors",
    "random_request_trace",
    "measure_bank_utilization",
    "effective_bank_throughput",
    "effective_bank_throughput_batch",
]
