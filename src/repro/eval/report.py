"""Report rendering: turn the table/figure harness outputs into text.

Used by the examples and by the EXPERIMENTS.md generator so that the rows
the paper prints and the rows this reproduction measures sit side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    widths = {col: max(len(col), 10) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col))))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def format_mapping(mapping: Dict, title: str = "", value_format: str = "{:.2f}") -> str:
    """Render a flat ``{name: number}`` mapping as aligned text lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(str(k)) for k in mapping), default=4)
    for key, value in mapping.items():
        lines.append(f"  {str(key).ljust(width)}  {_fmt(value, value_format)}")
    return "\n".join(lines)


def format_series(series: Dict[str, Iterable], x_key: str, title: str = "") -> str:
    """Render a figure's series ({app: [values], x_key: [xs]}) as a table."""
    xs = list(series[x_key])
    apps = [k for k in series if k != x_key]
    rows = []
    for i, x in enumerate(xs):
        row = {x_key: x}
        for app in apps:
            values = list(series[app])
            row[app] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_key] + apps, title=title)


def paper_vs_measured(
    measured: Dict[str, float], paper: Dict[str, float], title: str = ""
) -> str:
    """Two-column comparison of measured values against the paper's."""
    rows = []
    for key in paper:
        rows.append(
            {
                "point": key,
                "paper": paper.get(key),
                "measured": measured.get(key),
            }
        )
    for key in measured:
        if key not in paper:
            rows.append({"point": key, "paper": None, "measured": measured[key]})
    return format_table(rows, ["point", "paper", "measured"], title=title)


def format_run_report(report, title: str = "") -> str:
    """Render an :class:`~repro.runtime.runner.RunReport` as a task table.

    One row per (app, dataset) task with its status, wall time, and error
    (if any), followed by a summary line with the cache hit count and total
    wall time.
    """
    rows = [
        {
            "app": result.app,
            "dataset": result.dataset,
            "status": result.status,
            "seconds": result.duration_s,
            "error": result.error or "",
        }
        for result in report.results
    ]
    table = format_table(rows, ["app", "dataset", "status", "seconds", "error"], title=title)
    summary = (
        f"{len(report.results)} tasks: {report.executed_count()} executed, "
        f"{report.cached_count()} cached, {len(report.errors())} failed "
        f"({report.workers} worker{'s' if report.workers != 1 else ''}, "
        f"{report.wall_time_s:.2f}s wall)"
    )
    return f"{table}\n{summary}"


def _fmt(value, value_format: str = "{:.2f}") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return value_format.format(value)
    return str(value)
