"""Regression analytics over the experiment run store.

The CI gate used to be a flag zoo: one committed JSON snapshot compared
inline by ``bench_runner.py`` with a hand-tuned ``--max-*``/``--min-*``
flag per section. This module replaces that with three declarative
pieces layered on :class:`~repro.runtime.runstore.RunStore`:

* **expectations** -- a TOML file (or :data:`DEFAULT_EXPECTATIONS`)
  stating, per record section, which identity flags must hold
  (``identical = true``), which metrics have absolute bounds
  (``[sections.NAME.min]`` / ``[sections.NAME.max]``), and which metrics
  may regress at most some ratio against a baseline
  (``[sections.NAME.compare]``, metric -> max current/baseline ratio);
* **baseline comparison** -- :func:`snapshot_baseline` freezes a recorded
  run under a name, :func:`compare_to_baseline` evaluates a fresh record
  against a baseline and the expectations, producing categorized
  :class:`Check` rows (``regression`` / ``identity-broken`` /
  ``missing-section`` / ``scale-mismatch``) and a single pass/fail
  verdict;
* **trend detection** -- :func:`detect_trends` scans the store's metric
  history and flags monotonic drift that no single comparison would
  catch (each run within tolerance of the last, the sum well past it).

A scale mismatch between run and baseline is a categorized outcome, not
an error: the ratio checks are recorded as ``scale-mismatch`` and skipped
(different workloads are not comparable) while identity flags and
absolute bounds -- which are scale-independent contracts -- still apply,
so a deliberate scale bump cannot hard-fail CI with no artifact.

Expectations files parse with :mod:`tomllib` where available (3.11+) and
fall back to a minimal built-in parser (dotted table headers and scalar
assignments -- exactly the subset the format needs) on older pythons.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CapstanError
from ..runtime.runstore import BaselineRecord, RunStore, record_sections

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    tomllib = None

#: Check categories (`Check.category`).
PASS = "pass"
REGRESSION = "regression"
IDENTITY_BROKEN = "identity-broken"
MISSING_SECTION = "missing-section"
SCALE_MISMATCH = "scale-mismatch"
SKIPPED = "skipped"

#: The built-in gate, mirroring the flag defaults the bench runner shipped
#: with before the store existed: every batch path bit-identical to its
#: reference, the recorded acceptance speedups, and at most a 2x ratio
#: against the baseline for each section's headline time.
DEFAULT_EXPECTATIONS: Dict[str, Any] = {
    "sections": {
        "runner": {"compare": {"cold_serial_s": 2.0}},
        "costing": {
            "identical": True,
            "min": {"batch_speedup": 5.0},
            "compare": {"batch_s": 2.0},
        },
        "spmu": {
            "identical": True,
            "min": {"speedup": 6.0},
            "compare": {"array_s": 2.0},
        },
        "formats": {
            "identical": True,
            "min": {"speedup": 3.0},
            "compare": {"batch_s": 2.0},
        },
        "chunked": {
            "identical": True,
            "min": {"spmu_numba_speedup": 3.0},
            "max": {"peak_ratio": 1.5},
            "compare": {"chunked_s": 2.0},
        },
        "dse": {
            "identical": True,
            "min": {"hypervolume_ratio": 0.95},
            "max": {"eval_fraction": 0.25, "kilovariant_s": 300.0},
            "compare": {"search_s": 2.0},
        },
    },
    "trends": {"window": 5, "min_drift": 1.1},
}

_SECTION_KEYS = ("identical", "min", "max", "compare")
_MISSING = object()


@dataclasses.dataclass(frozen=True)
class Check:
    """One evaluated expectation."""

    section: str
    name: str
    category: str
    passed: bool
    value: Optional[float] = None
    threshold: Optional[float] = None
    baseline_value: Optional[float] = None
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Trend:
    """Monotonic drift of one metric across consecutive recorded runs."""

    section: str
    metric: str
    run_ids: Tuple[int, ...]
    values: Tuple[float, ...]
    drift: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ComparisonReport:
    """Categorized verdict of one record against expectations (+ baseline)."""

    checks: List[Check]
    run: Dict[str, Any]
    baseline: Optional[Dict[str, Any]] = None
    scale_mismatch: bool = False

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def categories(self) -> Dict[str, int]:
        """Counts of the non-pass categories present, for one-line verdicts."""
        counts: Dict[str, int] = {}
        for check in self.checks:
            if check.category in (PASS, SKIPPED):
                continue
            counts[check.category] = counts.get(check.category, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "scale_mismatch": self.scale_mismatch,
            "run": self.run,
            "baseline": self.baseline,
            "categories": self.categories(),
            "checks": [check.to_dict() for check in self.checks],
        }


# --------------------------------------------------------------- expectations


def _parse_toml_scalar(text: str) -> Any:
    if text.startswith('"'):
        closing = text.find('"', 1)
        if closing < 0:
            raise CapstanError(f"unterminated string in expectations: {text!r}")
        return text[1:closing]
    text = text.split("#", 1)[0].strip()
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise CapstanError(f"unsupported expectations value: {text!r}") from None


def parse_minimal_toml(text: str) -> Dict[str, Any]:
    """Parse the TOML subset expectations files use (3.9/3.10 fallback).

    Supports comments, dotted table headers (``[sections.costing.min]``)
    and ``key = scalar`` assignments with string/bool/int/float values --
    deliberately nothing more.
    """
    data: Dict[str, Any] = {}
    current = data
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise CapstanError(f"malformed table header (line {line_number}): {raw!r}")
            current = data
            for part in line[1:-1].strip().split("."):
                part = part.strip().strip('"')
                if not part:
                    raise CapstanError(f"empty table name (line {line_number}): {raw!r}")
                current = current.setdefault(part, {})
                if not isinstance(current, dict):
                    raise CapstanError(
                        f"table {part!r} collides with a value (line {line_number})"
                    )
            continue
        key, separator, value = line.partition("=")
        if not separator:
            raise CapstanError(f"expected KEY = VALUE (line {line_number}): {raw!r}")
        current[key.strip().strip('"')] = _parse_toml_scalar(value.strip())
    return data


def normalize_expectations(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a parsed expectations document into canonical shape.

    Raises :class:`~repro.errors.CapstanError` on unknown keys or
    mistyped bounds so a typo fails loudly instead of silently gating
    nothing.
    """
    known_top = {"version", "sections", "trends"}
    unknown = set(data) - known_top
    if unknown:
        raise CapstanError(f"unknown expectations keys: {', '.join(sorted(unknown))}")
    sections = data.get("sections", {})
    if not isinstance(sections, dict):
        raise CapstanError("expectations 'sections' must be a table")
    normalized: Dict[str, Any] = {"sections": {}}
    for name, spec in sections.items():
        if not isinstance(spec, dict):
            raise CapstanError(f"expectations section {name!r} must be a table")
        bad = set(spec) - set(_SECTION_KEYS)
        if bad:
            raise CapstanError(
                f"unknown keys in expectations section {name!r}: {', '.join(sorted(bad))}"
            )
        entry: Dict[str, Any] = {}
        if "identical" in spec:
            if not isinstance(spec["identical"], bool):
                raise CapstanError(f"section {name!r}: 'identical' must be a boolean")
            entry["identical"] = spec["identical"]
        for kind in ("min", "max", "compare"):
            bounds = spec.get(kind, {})
            if not isinstance(bounds, dict):
                raise CapstanError(f"section {name!r}: {kind!r} must be a table")
            for metric, bound in bounds.items():
                if isinstance(bound, bool) or not isinstance(bound, (int, float)):
                    raise CapstanError(
                        f"section {name!r}: {kind}.{metric} must be a number"
                    )
            if bounds:
                entry[kind] = {metric: float(bound) for metric, bound in bounds.items()}
        normalized["sections"][name] = entry
    trends = data.get("trends", {})
    if not isinstance(trends, dict):
        raise CapstanError("expectations 'trends' must be a table")
    bad = set(trends) - {"window", "min_drift"}
    if bad:
        raise CapstanError(f"unknown keys in expectations trends: {', '.join(sorted(bad))}")
    normalized["trends"] = {
        "window": int(trends.get("window", DEFAULT_EXPECTATIONS["trends"]["window"])),
        "min_drift": float(
            trends.get("min_drift", DEFAULT_EXPECTATIONS["trends"]["min_drift"])
        ),
    }
    return normalized


def load_expectations(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one ``expectations.toml``."""
    text = Path(path).read_text()
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CapstanError(f"malformed expectations file {path}: {exc}") from None
    else:  # pragma: no cover - exercised on 3.9/3.10 only
        data = parse_minimal_toml(text)
    return normalize_expectations(data)


def default_expectations() -> Dict[str, Any]:
    """A deep copy of :data:`DEFAULT_EXPECTATIONS` callers may mutate."""
    import copy

    return copy.deepcopy(DEFAULT_EXPECTATIONS)


def set_expectation(
    expectations: Dict[str, Any], section: str, kind: str, value: Any, metric: str = ""
) -> None:
    """Override one entry in place (the CLI flag -> expectations bridge)."""
    entry = expectations.setdefault("sections", {}).setdefault(section, {})
    if kind == "identical":
        entry["identical"] = bool(value)
    elif kind in ("min", "max", "compare"):
        entry.setdefault(kind, {})[metric] = float(value)
    else:
        raise CapstanError(f"unknown expectation kind {kind!r}")


# ---------------------------------------------------------------- evaluation


def _lookup(section: Dict[str, Any], dotted: str) -> Any:
    """Resolve a possibly-dotted metric name; `_MISSING` when absent."""
    value: Any = section
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return _MISSING
        value = value[part]
    return value


def _spec_is_empty(spec: Dict[str, Any]) -> bool:
    return not any(spec.get(kind) for kind in _SECTION_KEYS)


def _absolute_checks(name: str, section: Dict[str, Any], spec: Dict[str, Any]) -> List[Check]:
    checks: List[Check] = []
    if spec.get("identical"):
        value = section.get("identical")
        if value is None:
            checks.append(
                Check(
                    section=name,
                    name="identical",
                    category=MISSING_SECTION,
                    passed=False,
                    message="section records no 'identical' flag",
                )
            )
        else:
            ok = bool(value)
            checks.append(
                Check(
                    section=name,
                    name="identical",
                    category=PASS if ok else IDENTITY_BROKEN,
                    passed=ok,
                    message="" if ok else "batch path diverged from its reference",
                )
            )
    for kind, op in (("min", ">="), ("max", "<=")):
        for metric, bound in spec.get(kind, {}).items():
            value = _lookup(section, metric)
            if value is _MISSING:
                checks.append(
                    Check(
                        section=name,
                        name=f"{kind}:{metric}",
                        category=MISSING_SECTION,
                        passed=False,
                        threshold=bound,
                        message=f"metric {metric!r} not recorded",
                    )
                )
                continue
            if value is None:
                checks.append(
                    Check(
                        section=name,
                        name=f"{kind}:{metric}",
                        category=SKIPPED,
                        passed=True,
                        threshold=bound,
                        message=f"metric {metric!r} recorded as null (not measured)",
                    )
                )
                continue
            ok = float(value) >= bound if kind == "min" else float(value) <= bound
            checks.append(
                Check(
                    section=name,
                    name=f"{kind}:{metric}",
                    category=PASS if ok else REGRESSION,
                    passed=ok,
                    value=float(value),
                    threshold=bound,
                    message="" if ok else f"{metric} = {value:g}, required {op} {bound:g}",
                )
            )
    return checks


def evaluate_expectations(
    record: Dict[str, Any], expectations: Optional[Dict[str, Any]] = None
) -> List[Check]:
    """Evaluate the baseline-free expectations of one record.

    Identity flags and absolute ``min``/``max`` bounds only; ratio
    (``compare``) entries need a baseline and are evaluated by
    :func:`compare_to_baseline`.
    """
    if expectations is None:
        expectations = DEFAULT_EXPECTATIONS
    sections = record_sections(record)
    checks: List[Check] = []
    for name, spec in expectations.get("sections", {}).items():
        if _spec_is_empty(spec):
            continue
        section = sections.get(name)
        if section is None:
            checks.append(
                Check(
                    section=name,
                    name="section",
                    category=MISSING_SECTION,
                    passed=False,
                    message="expected section missing from the record",
                )
            )
            continue
        checks.extend(_absolute_checks(name, section, spec))
    return checks


def _ratio_checks(
    name: str,
    section: Dict[str, Any],
    baseline_section: Optional[Dict[str, Any]],
    spec: Dict[str, Any],
    scale_mismatch: bool,
    baseline_scale: Optional[float],
) -> List[Check]:
    checks: List[Check] = []
    for metric, max_ratio in spec.get("compare", {}).items():
        check_name = f"compare:{metric}"
        if scale_mismatch:
            checks.append(
                Check(
                    section=name,
                    name=check_name,
                    category=SCALE_MISMATCH,
                    passed=True,
                    threshold=max_ratio,
                    message=(
                        f"baseline recorded at scale {baseline_scale!r}; "
                        "ratio not comparable"
                    ),
                )
            )
            continue
        value = _lookup(section, metric)
        if value is _MISSING or value is None:
            checks.append(
                Check(
                    section=name,
                    name=check_name,
                    category=MISSING_SECTION if value is _MISSING else SKIPPED,
                    passed=value is None,
                    threshold=max_ratio,
                    message=f"metric {metric!r} not recorded in the run",
                )
            )
            continue
        base = _MISSING if baseline_section is None else _lookup(baseline_section, metric)
        if base is _MISSING or base is None or float(base) <= 0.0:
            checks.append(
                Check(
                    section=name,
                    name=check_name,
                    category=SKIPPED,
                    passed=True,
                    value=float(value),
                    threshold=max_ratio,
                    message=f"baseline records no usable {metric!r}; ratio skipped",
                )
            )
            continue
        ratio = float(value) / float(base)
        ok = ratio <= max_ratio
        checks.append(
            Check(
                section=name,
                name=check_name,
                category=PASS if ok else REGRESSION,
                passed=ok,
                value=float(value),
                threshold=max_ratio,
                baseline_value=float(base),
                message=(
                    ""
                    if ok
                    else (
                        f"{metric} = {float(value):g} is {ratio:.2f}x the baseline "
                        f"{float(base):g} (limit {max_ratio:g}x)"
                    )
                ),
            )
        )
    return checks


def _run_info(record: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "benchmark": record.get("benchmark"),
        "scale": record.get("scale"),
        "workers": record.get("workers"),
    }


def compare_to_baseline(
    record: Dict[str, Any],
    baseline: Union[BaselineRecord, Dict[str, Any], None],
    expectations: Optional[Dict[str, Any]] = None,
) -> ComparisonReport:
    """Full per-section comparison of one record against a baseline.

    Args:
        record: The fresh ``BENCH_runner.json``-shaped record.
        baseline: A :class:`~repro.runtime.runstore.BaselineRecord`, a raw
            record dict (e.g. a committed ``BENCH_runner.json``), or
            ``None`` for a baseline-free evaluation (ratio entries are
            then skipped).
        expectations: Normalized expectations;
            :data:`DEFAULT_EXPECTATIONS` when omitted.
    """
    if expectations is None:
        expectations = DEFAULT_EXPECTATIONS
    baseline_info: Optional[Dict[str, Any]] = None
    baseline_record: Optional[Dict[str, Any]] = None
    if isinstance(baseline, BaselineRecord):
        baseline_record = baseline.record
        baseline_info = {
            "name": baseline.name,
            "run_id": baseline.run_id,
            "scale": baseline.scale,
            "created_at": baseline.created_at,
        }
    elif baseline is not None:
        baseline_record = baseline
        baseline_info = {"name": None, "scale": baseline.get("scale")}

    scale = record.get("scale")
    baseline_scale = None if baseline_record is None else baseline_record.get("scale")
    scale_mismatch = (
        baseline_record is not None
        and scale is not None
        and baseline_scale is not None
        and scale != baseline_scale
    )

    checks = evaluate_expectations(record, expectations)
    if baseline_record is not None:
        sections = record_sections(record)
        baseline_sections = record_sections(baseline_record)
        for name, spec in expectations.get("sections", {}).items():
            section = sections.get(name)
            if section is None or not spec.get("compare"):
                continue  # the missing-section check is already filed
            checks.extend(
                _ratio_checks(
                    name,
                    section,
                    baseline_sections.get(name),
                    spec,
                    scale_mismatch,
                    baseline_scale,
                )
            )
    return ComparisonReport(
        checks=checks,
        run=_run_info(record),
        baseline=baseline_info,
        scale_mismatch=scale_mismatch,
    )


def snapshot_baseline(
    store: RunStore, name: str, run_id: Optional[int] = None
) -> BaselineRecord:
    """Freeze a recorded run as the named baseline (store passthrough)."""
    return store.snapshot_baseline(name, run_id=run_id)


# -------------------------------------------------------------------- trends


def detect_trends(
    store: RunStore,
    expectations: Optional[Dict[str, Any]] = None,
    window: Optional[int] = None,
    min_drift: Optional[float] = None,
) -> List[Trend]:
    """Flag metrics drifting monotonically worse across the last N runs.

    Every ``compare``/``max`` metric in the expectations (the
    higher-is-worse ones: section times, peak ratios) is scanned over its
    last ``window`` recorded values; a trend is flagged when each run was
    strictly worse than the one before and the total drift reached
    ``min_drift`` -- the slow-boil regression each individual 2x gate
    waves through.
    """
    if expectations is None:
        expectations = DEFAULT_EXPECTATIONS
    trend_config = expectations.get("trends", DEFAULT_EXPECTATIONS["trends"])
    if window is None:
        window = int(trend_config.get("window", 5))
    if min_drift is None:
        min_drift = float(trend_config.get("min_drift", 1.1))
    trends: List[Trend] = []
    for name, spec in expectations.get("sections", {}).items():
        metrics = set(spec.get("compare", {})) | set(spec.get("max", {}))
        for metric in sorted(metrics):
            history = store.metric_history(name, metric, limit=window)
            if len(history) < window:
                continue
            values = [value for _, value in history]
            if values[0] <= 0.0:
                continue
            rising = all(later > earlier for earlier, later in zip(values, values[1:]))
            drift = values[-1] / values[0]
            if rising and drift >= min_drift:
                trends.append(
                    Trend(
                        section=name,
                        metric=metric,
                        run_ids=tuple(run_id for run_id, _ in history),
                        values=tuple(values),
                        drift=round(drift, 3),
                    )
                )
    return trends


# ---------------------------------------------------------------- rendering


def _verdict_line(report: ComparisonReport) -> str:
    if report.passed:
        note = " (scale mismatch: ratios skipped)" if report.scale_mismatch else ""
        return f"verdict: PASS{note}"
    counts = report.categories()
    summary = ", ".join(f"{category}: {count}" for category, count in sorted(counts.items()))
    return f"verdict: FAIL ({summary})"


def format_comparison_report(report: ComparisonReport) -> str:
    """Human-readable multi-line comparison report."""
    lines: List[str] = []
    baseline = report.baseline
    if baseline is None:
        against = "no baseline (absolute expectations only)"
    elif baseline.get("name"):
        against = (
            f"baseline {baseline['name']!r} (run {baseline.get('run_id')}, "
            f"scale {baseline.get('scale')})"
        )
    else:
        against = f"baseline record (scale {baseline.get('scale')})"
    lines.append(f"Bench comparison: run at scale {report.run.get('scale')} vs {against}")
    for check in report.checks:
        status = "PASS" if check.passed else "FAIL"
        if check.category == SKIPPED:
            status = "SKIP"
        elif check.category == SCALE_MISMATCH:
            status = "SCALE"
        detail = check.message
        if not detail and check.value is not None:
            if check.baseline_value is not None:
                detail = (
                    f"{check.value:g} vs baseline {check.baseline_value:g} "
                    f"(limit {check.threshold:g}x)"
                )
            elif check.threshold is not None:
                detail = f"{check.value:g} (bound {check.threshold:g})"
        lines.append(f"  [{status}] {check.section} {check.name}: {detail}".rstrip(": "))
    lines.append(_verdict_line(report))
    return "\n".join(lines)


def format_comparison_markdown(report: ComparisonReport) -> str:
    """GitHub-flavoured markdown rendering (for ``$GITHUB_STEP_SUMMARY``)."""
    lines = ["## Bench comparison", ""]
    status = "✅ PASS" if report.passed else "❌ FAIL"
    if report.scale_mismatch:
        status += " (scale mismatch: ratio checks skipped)"
    baseline = report.baseline or {}
    lines.append(
        f"**{status}** — run at scale `{report.run.get('scale')}` vs baseline "
        f"`{baseline.get('name') or 'record'}` at scale `{baseline.get('scale')}`"
        if report.baseline is not None
        else f"**{status}** — absolute expectations only (no baseline)"
    )
    lines.append("")
    lines.append("| status | section | check | value | baseline | limit | category |")
    lines.append("|---|---|---|---|---|---|---|")

    def cell(value: Optional[float]) -> str:
        return "" if value is None else f"{value:g}"

    for check in report.checks:
        icon = "✅" if check.passed else "❌"
        if check.category in (SKIPPED, SCALE_MISMATCH):
            icon = "⏭️"
        lines.append(
            f"| {icon} | {check.section} | `{check.name}` | {cell(check.value)} "
            f"| {cell(check.baseline_value)} | {cell(check.threshold)} "
            f"| {check.category} |"
        )
    return "\n".join(lines)


#: (section, metric) columns of the history tables, in display order.
HISTORY_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("runner", "cold_serial_s"),
    ("costing", "batch_s"),
    ("spmu", "array_s"),
    ("formats", "batch_s"),
    ("chunked", "chunked_s"),
)


def history_rows(runs: Sequence[Any]) -> List[Dict[str, Any]]:
    """Flatten stored runs into the history table's row dicts (oldest last)."""
    rows = []
    for run in runs:
        sections = record_sections(run.record)
        row: Dict[str, Any] = {
            "id": run.id,
            "created_at": run.created_at,
            "scale": run.scale,
            "workers": run.workers,
            "label": run.label,
            "fingerprint": run.fingerprint[:12],
        }
        for section, metric in HISTORY_COLUMNS:
            value = _lookup(sections.get(section, {}), metric)
            row[f"{section}.{metric}"] = None if value is _MISSING else value
        rows.append(row)
    return rows


def format_history(runs: Sequence[Any], markdown: bool = False) -> str:
    """Render recent runs as a text or markdown table, newest first."""
    rows = history_rows(runs)
    headers = ["run", "created", "scale", "fingerprint"] + [
        f"{section}.{metric}" for section, metric in HISTORY_COLUMNS
    ]
    table: List[List[str]] = []
    for row in rows:
        cells = [str(row["id"]), str(row["created_at"]), f"{row['scale']}", row["fingerprint"]]
        for section, metric in HISTORY_COLUMNS:
            value = row[f"{section}.{metric}"]
            cells.append("-" if value is None else f"{value:g}")
        table.append(cells)
    if markdown:
        lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
        lines += ["| " + " | ".join(cells) + " |" for cells in table]
        return "\n".join(lines)
    widths = [
        max(len(headers[i]), *(len(cells[i]) for cells in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(header.ljust(width) for header, width in zip(headers, widths))]
    for cells in table:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def format_trends(trends: Sequence[Trend], markdown: bool = False) -> str:
    """Render detected trends (or an all-clear line)."""
    if not trends:
        return "no monotonic drift detected" if not markdown else "_No monotonic drift detected._"
    if markdown:
        lines = [
            "| section | metric | drift | runs | values |",
            "|---|---|---|---|---|",
        ]
        for trend in trends:
            values = ", ".join(f"{value:g}" for value in trend.values)
            runs = ", ".join(str(run_id) for run_id in trend.run_ids)
            lines.append(
                f"| {trend.section} | `{trend.metric}` | {trend.drift:g}x | {runs} | {values} |"
            )
        return "\n".join(lines)
    lines = []
    for trend in trends:
        values = " -> ".join(f"{value:g}" for value in trend.values)
        lines.append(
            f"DRIFT {trend.section}.{trend.metric}: {trend.drift:g}x over runs "
            f"{trend.run_ids[0]}..{trend.run_ids[-1]} ({values})"
        )
    return "\n".join(lines)
