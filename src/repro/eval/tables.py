"""Table harnesses: regenerate every table of the evaluation section.

Each function returns plain dictionaries/lists so callers (tests,
benchmarks, the EXPERIMENTS.md generator, and the examples) can render the
same rows the paper reports, alongside the paper's published numbers for
comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..apps.timing import (
    CapstanPlatform,
    default_platform,
    estimate_cycles,
    estimate_cycles_batch,
    ideal_platform,
)
from ..config import CapstanConfig, MemoryTechnology, ShuffleMode, SpMUConfig
from ..core.area import (
    capstan_area,
    plasticine_area,
    scanner_area_um2,
    scheduler_area_um2,
)
from ..core.ordering import OrderingMode
from ..core.spmu import measure_bank_utilization
from ..baselines import asic, cpu, gpu, plasticine
from ..runtime.sweep import sweep
from ..sim.stats import geometric_mean
from .experiments import ProfileSet, collect_profiles

# --------------------------------------------------------------------------- #
# Table 4: SpMU throughput vs queue depth, crossbar size, priorities
# --------------------------------------------------------------------------- #

#: The paper's Table 4 bank-use percentages keyed by (depth, crossbar, priorities).
TABLE4_PAPER = {
    (8, 16, 1): 51.5, (8, 16, 2): 66.4, (8, 16, 3): 67.9,
    (8, 32, 1): 55.3, (8, 32, 2): 68.5, (8, 32, 3): 72.5,
    (16, 16, 1): 63.9, (16, 16, 2): 79.9, (16, 16, 3): 79.9,
    (16, 32, 1): 67.8, (16, 32, 2): 85.1, (16, 32, 3): 85.4,
    (32, 16, 1): 72.7, (32, 16, 2): 84.7, (32, 16, 3): 84.7,
    (32, 32, 1): 77.0, (32, 32, 2): 92.4, (32, 32, 3): 92.5,
}


def table4_spmu_throughput(
    depths: tuple = (8, 16, 32),
    crossbars: tuple = (16, 32),
    priorities: tuple = (1, 2, 3),
    vectors: int = 160,
) -> List[Dict]:
    """Measure bank utilization across the Table 4 design space."""
    rows = []
    for depth in depths:
        for crossbar in crossbars:
            row = {
                "depth": depth,
                "crossbar": f"{crossbar}x16",
                "scheduler_area_um2": scheduler_area_um2(depth, crossbar),
            }
            for priority in priorities:
                config = SpMUConfig(
                    queue_depth=depth,
                    crossbar_inputs=crossbar,
                    allocator_priorities=priority,
                    allocator_iterations=3,
                )
                utilization = measure_bank_utilization(config, vectors=vectors)
                row[f"measured_{priority}pri_pct"] = 100.0 * utilization
                row[f"paper_{priority}pri_pct"] = TABLE4_PAPER.get((depth, crossbar, priority))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 5: scanner area
# --------------------------------------------------------------------------- #

def table5_scanner_area() -> List[Dict]:
    """Scanner area (um^2) across widths and output vectorizations."""
    rows = []
    for width in (128, 256, 512):
        row = {"width": width}
        for outputs in (1, 2, 4, 8, 16):
            row[f"out{outputs}_um2"] = scanner_area_um2(width, outputs)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 8: area and power vs Plasticine
# --------------------------------------------------------------------------- #

def table8_area() -> Dict:
    """Capstan vs Plasticine area/power breakdown (paper: +16% / +12%)."""
    capstan = capstan_area(CapstanConfig())
    baseline = plasticine_area()
    return {
        "plasticine": baseline.as_dict(),
        "capstan": capstan.as_dict(),
        "area_overhead": capstan.total_mm2 / baseline.total_mm2 - 1.0,
        "power_overhead": capstan.power_w / baseline.power_w - 1.0,
        "paper_area_overhead": 0.16,
        "paper_power_overhead": 0.12,
    }


# --------------------------------------------------------------------------- #
# Shared batched-costing helper for the sensitivity tables (9-12)
# --------------------------------------------------------------------------- #


def _batched_app_cycles(
    profiles: ProfileSet, apps: List[str], platforms: Dict[str, CapstanPlatform]
) -> Dict[str, np.ndarray]:
    """Cost every application profile under every platform in one batch.

    Returns one ``(n_datasets, n_platforms)`` cycle matrix per application,
    with columns in ``platforms`` order; each cell equals the corresponding
    per-call :func:`estimate_cycles` result exactly.
    """
    ordered = []
    spans: Dict[str, Tuple[int, int]] = {}
    for app in apps:
        app_profiles = profiles.for_app(app)
        spans[app] = (len(ordered), len(ordered) + len(app_profiles))
        ordered.extend(app_profiles)
    result = estimate_cycles_batch(ordered, list(platforms.values()))
    return {app: result.cycles[start:stop, :] for app, (start, stop) in spans.items()}


# --------------------------------------------------------------------------- #
# Table 9: SpMU architecture sensitivity
# --------------------------------------------------------------------------- #

#: Paper Table 9 gmean runtimes (normalized to Capstan hash = 1.0).
TABLE9_PAPER_GMEAN = {
    "ideal": 0.92,
    "capstan-hash": 1.00,
    "capstan-linear": 1.11,
    "weak-hash": 1.15,
    "weak-linear": 1.26,
    "arbitrated-hash": 1.27,
    "arbitrated-linear": 1.44,
}


#: Table 9 row labels per allocator variant.
_TABLE9_ALLOCATOR_LABELS = {"separable": "capstan", "greedy": "weak", "arbitrated": "arbitrated"}


def table9_spmu_sensitivity(profiles: Optional[ProfileSet] = None) -> Dict:
    """Per-app runtimes under SpMU variants, normalized to Capstan+hash."""
    profiles = profiles or collect_profiles()
    variants = {"ideal": CapstanPlatform(ideal_sram=True, name="ideal")}
    variants.update(
        sweep(
            allocator=("separable", "greedy", "arbitrated"),
            bank_mapping=("hash", "linear"),
            name=lambda combo: (
                f"{_TABLE9_ALLOCATOR_LABELS[combo['allocator']]}-{combo['bank_mapping']}"
            ),
        )
    )
    names = list(variants)
    cycles_by_app = _batched_app_cycles(profiles, profiles.apps(), variants)
    baseline_column = names.index("capstan-hash")
    results: Dict[str, Dict[str, float]] = {name: {} for name in variants}
    for app, cycles in cycles_by_app.items():
        baseline_cycles = cycles[:, baseline_column]
        for j, name in enumerate(names):
            ratios = [c / b for c, b in zip(cycles[:, j], baseline_cycles) if b > 0]
            results[name][app] = geometric_mean(ratios)
    gmeans = {
        name: geometric_mean(list(app_ratios.values())) for name, app_ratios in results.items()
    }
    return {"per_app": results, "gmean": gmeans, "paper_gmean": TABLE9_PAPER_GMEAN}


# --------------------------------------------------------------------------- #
# Table 10: ordering-mode sensitivity
# --------------------------------------------------------------------------- #

TABLE10_PAPER_GMEAN = {"unordered": 1.00, "address-ordered": 1.35, "fully-ordered": 1.85}

#: The paper evaluates ordering modes on the SpMV variants, Conv, and BiCGStab.
TABLE10_APPS = ("spmv-csr", "spmv-coo", "spmv-csc", "conv", "bicgstab")


def table10_ordering_modes(profiles: Optional[ProfileSet] = None) -> Dict:
    """Slowdown of stricter ordering modes, normalized to unordered."""
    profiles = profiles or collect_profiles(apps=list(TABLE10_APPS))
    variants = sweep(
        ordering=(
            OrderingMode.UNORDERED,
            OrderingMode.ADDRESS_ORDERED,
            OrderingMode.FULLY_ORDERED,
        )
    )
    names = list(variants)
    apps = [app for app in TABLE10_APPS if app in profiles.apps()]
    cycles_by_app = _batched_app_cycles(profiles, apps, variants)
    baseline_column = names.index("unordered")
    per_app: Dict[str, Dict[str, float]] = {name: {} for name in variants}
    for app, cycles in cycles_by_app.items():
        base = cycles[:, baseline_column]
        for j, name in enumerate(names):
            per_app[name][app] = geometric_mean(
                [c / b for c, b in zip(cycles[:, j], base) if b > 0]
            )
    gmeans = {name: geometric_mean(list(vals.values())) for name, vals in per_app.items()}
    return {"per_app": per_app, "gmean": gmeans, "paper_gmean": TABLE10_PAPER_GMEAN}


# --------------------------------------------------------------------------- #
# Table 11: merge (shuffle) network sensitivity
# --------------------------------------------------------------------------- #

TABLE11_PAPER = {
    ("pagerank-pull", "none"): 1.53,
    ("pagerank-pull", "mrg-0"): 1.00,
    ("pagerank-pull", "mrg-1"): 1.00,
    ("pagerank-pull", "mrg-16"): 0.99,
    ("pagerank-edge", "none"): 1.21,
    ("pagerank-edge", "mrg-0"): 1.00,
    ("pagerank-edge", "mrg-1"): 1.00,
    ("pagerank-edge", "mrg-16"): 1.00,
    ("conv", "none"): 1.07,
    ("conv", "mrg-1"): 1.00,
    ("conv", "mrg-16"): 0.99,
}

TABLE11_APPS = ("pagerank-pull", "pagerank-edge", "conv")

#: Table 11 column labels per shuffle mode.
_TABLE11_MODE_LABELS = {
    ShuffleMode.NONE: "none",
    ShuffleMode.MRG0: "mrg-0",
    ShuffleMode.MRG1: "mrg-1",
    ShuffleMode.MRG16: "mrg-16",
}


def table11_shuffle_sensitivity(profiles: Optional[ProfileSet] = None) -> Dict:
    """Runtime vs shuffle-network mode, normalized to Mrg-1."""
    profiles = profiles or collect_profiles(apps=list(TABLE11_APPS))
    variants = sweep(
        shuffle=(ShuffleMode.NONE, ShuffleMode.MRG0, ShuffleMode.MRG1, ShuffleMode.MRG16),
        name=lambda combo: _TABLE11_MODE_LABELS[combo["shuffle"]],
    )
    names = list(variants)
    apps = [app for app in TABLE11_APPS if app in profiles.apps()]
    cycles_by_app = _batched_app_cycles(profiles, apps, variants)
    baseline_column = names.index("mrg-1")
    results: Dict[str, Dict[str, float]] = {}
    for app, cycles in cycles_by_app.items():
        base = cycles[:, baseline_column]
        results[app] = {}
        for j, name in enumerate(names):
            results[app][name] = geometric_mean(
                [c / b for c, b in zip(cycles[:, j], base) if b > 0]
            )
    return {"per_app": results, "paper": TABLE11_PAPER}


# --------------------------------------------------------------------------- #
# Table 12: end-to-end performance vs CPU / GPU / Plasticine
# --------------------------------------------------------------------------- #

#: Paper Table 12 geomean runtimes normalized to Capstan-HBM2E.
TABLE12_PAPER_GMEAN = {
    "capstan-ideal": 0.82,
    "capstan-hbm2e": 1.00,
    "capstan-hbm2": 1.27,
    "capstan-ddr4": 6.45,
    "plasticine-hbm2e": 10.30,
    "gpu-v100": 20.50,
    "cpu-xeon": 117.50,
}


def table12_performance(profiles: Optional[ProfileSet] = None) -> Dict:
    """Runtimes of every platform, normalized to Capstan-HBM2E per app."""
    profiles = profiles or collect_profiles()
    platforms = {"capstan-ideal": ideal_platform()}
    platforms.update(
        sweep(
            memory=(MemoryTechnology.HBM2E, MemoryTechnology.HBM2, MemoryTechnology.DDR4),
            name=lambda combo: f"capstan-{combo['memory'].value}",
        )
    )
    names = list(platforms)
    cycles_by_app = _batched_app_cycles(profiles, profiles.apps(), platforms)
    baseline_column = names.index("capstan-hbm2e")
    per_app: Dict[str, Dict[str, float]] = {}
    for app in profiles.apps():
        app_profiles = profiles.for_app(app)
        cycles = cycles_by_app[app]
        per_app[app] = {}
        seconds_by_name = {
            name: [
                c / (platforms[name].config.clock_ghz * 1e9) for c in cycles[:, j]
            ]
            for j, name in enumerate(names)
        }
        base_seconds = seconds_by_name[names[baseline_column]]
        for name in names:
            per_app[app][name] = geometric_mean(
                [s / b for s, b in zip(seconds_by_name[name], base_seconds) if b > 0]
            )
        # Plasticine (only for mappable apps), GPU, and CPU.
        if app in plasticine.PLASTICINE_MAPPABLE_APPS:
            plasticine_platform = plasticine.PlasticinePlatform()
            seconds = [
                plasticine.run_metrics(p, plasticine_platform).runtime_seconds
                for p in app_profiles
            ]
            per_app[app]["plasticine-hbm2e"] = geometric_mean(
                [s / b for s, b in zip(seconds, base_seconds) if b > 0]
            )
        gpu_platform = gpu.GPUPlatform()
        seconds = [gpu.run_metrics(p, gpu_platform).runtime_seconds for p in app_profiles]
        per_app[app]["gpu-v100"] = geometric_mean(
            [s / b for s, b in zip(seconds, base_seconds) if b > 0]
        )
        cpu_platform = cpu.CPUPlatform()
        seconds = [cpu.run_metrics(p, cpu_platform).runtime_seconds for p in app_profiles]
        per_app[app]["cpu-xeon"] = geometric_mean(
            [s / b for s, b in zip(seconds, base_seconds) if b > 0]
        )
    gmeans: Dict[str, float] = {}
    for platform_name in (
        "capstan-ideal",
        "capstan-hbm2e",
        "capstan-hbm2",
        "capstan-ddr4",
        "plasticine-hbm2e",
        "gpu-v100",
        "cpu-xeon",
    ):
        values = [row[platform_name] for row in per_app.values() if platform_name in row]
        gmeans[platform_name] = geometric_mean(values)
    return {"per_app": per_app, "gmean": gmeans, "paper_gmean": TABLE12_PAPER_GMEAN}


def _capstan_seconds(profile, platform: CapstanPlatform) -> float:
    cycles, _ = estimate_cycles(profile, platform)
    return cycles / (platform.config.clock_ghz * 1e9)


# --------------------------------------------------------------------------- #
# Table 13: ASIC comparison
# --------------------------------------------------------------------------- #

TABLE13_PAPER = {
    "eie": 0.53,
    "scnn": 1.40,
    "graphicionado-pagerank": 1.08,
    "graphicionado-bfs": 2.10,
    "graphicionado-sssp": 1.13,
    "matraptor": 17.96,
}


def table13_asic_comparison(profiles: Optional[ProfileSet] = None) -> Dict:
    """Capstan speedup over each ASIC baseline (paper: Table 13, 1.6 GHz)."""
    profiles = profiles or collect_profiles(
        apps=["spmv-csc", "conv", "pagerank-edge", "bfs", "sssp", "spmspm"]
    )
    results: Dict[str, float] = {}

    def capstan_seconds(app: str, platform: CapstanPlatform) -> float:
        app_profiles = profiles.for_app(app)
        return geometric_mean([_capstan_seconds(p, platform) for p in app_profiles])

    # EIE and SCNN are compared against an ideal Capstan (no network/memory).
    ideal = ideal_platform()
    csc_profiles = profiles.for_app("spmv-csc")
    eie_seconds = geometric_mean([asic.eie_runtime_seconds(p) for p in csc_profiles])
    results["eie"] = eie_seconds / capstan_seconds("spmv-csc", ideal)

    conv_profiles = profiles.for_app("conv")
    scnn_seconds = geometric_mean([asic.scnn_runtime_seconds(p) for p in conv_profiles])
    results["scnn"] = scnn_seconds / capstan_seconds("conv", ideal)

    # Graphicionado and MatRaptor comparisons include load/store time and use
    # DDR4 Capstan for the DRAM-bound graph kernels.
    ddr4 = default_platform(MemoryTechnology.DDR4)
    for app, key in (
        ("pagerank-edge", "graphicionado-pagerank"),
        ("bfs", "graphicionado-bfs"),
        ("sssp", "graphicionado-sssp"),
    ):
        app_profiles = profiles.for_app(app)
        graphicionado_seconds = geometric_mean(
            [asic.graphicionado_runtime_seconds(p) for p in app_profiles]
        )
        results[key] = graphicionado_seconds / capstan_seconds(app, ddr4)

    spmspm_profiles = profiles.for_app("spmspm")
    matraptor_seconds = geometric_mean(
        [asic.matraptor_runtime_seconds(p) for p in spmspm_profiles]
    )
    results["matraptor"] = matraptor_seconds / capstan_seconds(
        "spmspm", default_platform(MemoryTechnology.HBM2E)
    )
    return {"speedup": results, "paper": TABLE13_PAPER}
