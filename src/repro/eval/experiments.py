"""Shared experiment infrastructure: run every application on its datasets.

The evaluation section costs eleven application variants (CSR/COO/CSC SpMV,
Conv, PR-Pull, PR-Edge, BFS, SSSP, M+M, SpMSpM, BiCGStab) on three datasets
each (Table 6). :func:`collect_profiles` runs them all functionally once --
through the registry-driven :class:`~repro.runtime.runner.ExperimentRunner`,
so runs are cached on disk and can fan out over a process pool -- and every
table/figure harness then re-costs those platform-independent profiles under
its own platform variants, which keeps the whole evaluation tractable.

The application dispatch itself lives in :mod:`repro.runtime.registry`;
each module in :mod:`repro.apps` registers its spec (name, Table 6
datasets, input preparation, run callable). ``APP_ORDER`` and
``APP_DATASETS`` below are derived views kept for compatibility with
existing harness callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..apps import best_source  # noqa: F401  (registers specs; legacy re-export)
from ..apps.profile import WorkloadProfile
from ..runtime.cache import ProfileCache
from ..runtime.registry import RunContext, app_datasets, app_order
from ..runtime.runner import ExperimentRunner

#: Default dataset scale for full-suite evaluation runs (see DESIGN.md).
EVAL_SCALE = 1.0 / 64.0

#: The application order used in Table 12 and Figure 7 (registry-derived).
APP_ORDER = app_order()

#: Datasets evaluated per application group (Table 6, registry-derived).
APP_DATASETS: Dict[str, List[str]] = app_datasets()


@dataclass
class ProfileSet:
    """All collected profiles keyed by ``(app, dataset)``."""

    profiles: Dict[tuple, WorkloadProfile]
    scale: float

    def get(self, app: str, dataset: str) -> WorkloadProfile:
        """Look up one profile (raises ``KeyError`` if absent)."""
        return self.profiles[(app, dataset)]

    def for_app(self, app: str) -> List[WorkloadProfile]:
        """All profiles of one application, in dataset order."""
        return [self.profiles[(app, ds)] for ds in APP_DATASETS[app] if (app, ds) in self.profiles]

    def apps(self) -> List[str]:
        """Applications present in the set, in Table 12 order."""
        present = {app for app, _ in self.profiles}
        return [app for app in APP_ORDER if app in present]


def collect_profiles(
    apps: Optional[List[str]] = None,
    scale: float = EVAL_SCALE,
    pagerank_iterations: int = 2,
    conv_scale: float = 0.125,
    workers: Optional[int] = None,
    cache: Union[ProfileCache, bool, None] = True,
    backend: str = "vectorized",
    executor: Optional[str] = None,
) -> ProfileSet:
    """Run the requested applications functionally and collect profiles.

    Args:
        apps: Application names (defaults to all eleven variants).
        scale: Dataset scale factor for the Table 6 stand-ins.
        pagerank_iterations: Power iterations per PageRank run.
        conv_scale: Channel scale for the ResNet layers.
        workers: Process-pool size for the functional runs; ``None`` reads
            ``REPRO_EVAL_WORKERS`` (default serial).
        cache: On-disk profile cache policy (``True`` uses the default
            cache, ``False`` disables it, or pass a
            :class:`~repro.runtime.cache.ProfileCache`).
        backend: Profiling-kernel backend (``"vectorized"`` or the
            per-element loop ``"reference"``); both produce identical
            profiles.
        executor: Executor name (``"local"``, ``"pool"``, ``"subprocess"``)
            forwarded to the runner; ``None`` picks automatically.
    """
    context = RunContext(
        scale=scale,
        pagerank_iterations=pagerank_iterations,
        conv_scale=conv_scale,
        backend=backend,
    )
    runner = ExperimentRunner(context=context, workers=workers, cache=cache, executor=executor)
    report = runner.run(apps=apps)
    return ProfileSet(profiles=dict(report.profiles()), scale=scale)
