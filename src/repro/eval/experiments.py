"""Shared experiment infrastructure: run every application on its datasets.

The evaluation section costs eleven application variants (CSR/COO/CSC SpMV,
Conv, PR-Pull, PR-Edge, BFS, SSSP, M+M, SpMSpM, BiCGStab) on three datasets
each (Table 6). :func:`collect_profiles` runs them all functionally once and
caches the platform-independent profiles; every table/figure harness then
re-costs those profiles under its own platform variants, which keeps the
whole evaluation tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..apps import (
    bfs,
    bicgstab,
    pagerank_edge,
    pagerank_pull,
    sparse_add,
    sparse_convolution,
    spmspm,
    spmv_coo,
    spmv_csc,
    spmv_csr,
    sssp,
)
from ..apps.profile import WorkloadProfile
from ..formats.convert import to_csc, to_csr
from ..workloads import (
    generate_conv_layer,
    load_dataset,
    make_diagonally_dominant,
    sparse_vector,
)

#: Default dataset scale for full-suite evaluation runs (see DESIGN.md).
EVAL_SCALE = 1.0 / 64.0

#: The application order used in Table 12 and Figure 7.
APP_ORDER = (
    "spmv-csr",
    "spmv-coo",
    "spmv-csc",
    "conv",
    "pagerank-pull",
    "pagerank-edge",
    "bfs",
    "sssp",
    "spadd",
    "spmspm",
    "bicgstab",
)

#: Datasets evaluated per application group (Table 6).
APP_DATASETS: Dict[str, List[str]] = {
    "spmv-csr": ["ckt11752_dc_1", "Trefethen_20000", "bcsstk30"],
    "spmv-coo": ["ckt11752_dc_1", "Trefethen_20000", "bcsstk30"],
    "spmv-csc": ["ckt11752_dc_1", "Trefethen_20000", "bcsstk30"],
    "spadd": ["ckt11752_dc_1", "Trefethen_20000", "bcsstk30"],
    "bicgstab": ["ckt11752_dc_1", "Trefethen_20000", "bcsstk30"],
    "pagerank-pull": ["usroads-48", "web-Stanford", "flickr"],
    "pagerank-edge": ["usroads-48", "web-Stanford", "flickr"],
    "bfs": ["usroads-48", "web-Stanford", "flickr"],
    "sssp": ["usroads-48", "web-Stanford", "flickr"],
    "spmspm": ["spaceStation_4", "qc324", "mbeacxc"],
    "conv": ["resnet50-1", "resnet50-2", "resnet50-29"],
}


@dataclass
class ProfileSet:
    """All collected profiles keyed by ``(app, dataset)``."""

    profiles: Dict[tuple, WorkloadProfile]
    scale: float

    def get(self, app: str, dataset: str) -> WorkloadProfile:
        """Look up one profile (raises ``KeyError`` if absent)."""
        return self.profiles[(app, dataset)]

    def for_app(self, app: str) -> List[WorkloadProfile]:
        """All profiles of one application, in dataset order."""
        return [self.profiles[(app, ds)] for ds in APP_DATASETS[app] if (app, ds) in self.profiles]

    def apps(self) -> List[str]:
        """Applications present in the set, in Table 12 order."""
        present = {app for app, _ in self.profiles}
        return [app for app in APP_ORDER if app in present]


def best_source(matrix) -> int:
    """Pick a high-out-degree source vertex for BFS/SSSP.

    The synthetic graph generators can leave low-degree or isolated
    vertices; starting from the highest-out-degree vertex keeps traversals
    covering a meaningful fraction of the graph, as the paper's real
    datasets do.
    """
    degrees = np.bincount(matrix.rows, minlength=matrix.shape[0])
    return int(np.argmax(degrees))


def _spmv_inputs(name: str, scale: float):
    dataset = load_dataset(name, scale=scale)
    csr = to_csr(dataset.matrix)
    rng = np.random.default_rng(17)
    dense_vector = rng.random(csr.shape[1]) + 0.1
    return dataset, csr, dense_vector


def collect_profiles(
    apps: Optional[List[str]] = None,
    scale: float = EVAL_SCALE,
    pagerank_iterations: int = 2,
    conv_scale: float = 0.125,
) -> ProfileSet:
    """Run the requested applications functionally and collect profiles.

    Args:
        apps: Application names (defaults to all eleven variants).
        scale: Dataset scale factor for the Table 6 stand-ins.
        pagerank_iterations: Power iterations per PageRank run.
        conv_scale: Channel scale for the ResNet layers.
    """
    selected = list(apps) if apps is not None else list(APP_ORDER)
    profiles: Dict[tuple, WorkloadProfile] = {}
    for app in selected:
        for dataset_name in APP_DATASETS[app]:
            profile = _run_app(app, dataset_name, scale, pagerank_iterations, conv_scale)
            profiles[(app, dataset_name)] = profile
    return ProfileSet(profiles=profiles, scale=scale)


def _run_app(
    app: str, dataset_name: str, scale: float, pagerank_iterations: int, conv_scale: float
) -> WorkloadProfile:
    """Run one application on one dataset and return its profile."""
    if app == "spmv-csr":
        dataset, csr, vector = _spmv_inputs(dataset_name, scale)
        return spmv_csr(csr, vector, dataset=dataset.name).profile
    if app == "spmv-coo":
        dataset = load_dataset(dataset_name, scale=scale)
        rng = np.random.default_rng(17)
        vector = rng.random(dataset.matrix.shape[1]) + 0.1
        return spmv_coo(dataset.matrix, vector, dataset=dataset.name).profile
    if app == "spmv-csc":
        dataset = load_dataset(dataset_name, scale=scale)
        csc = to_csc(dataset.matrix)
        vector = sparse_vector(csc.shape[1], density=0.30, seed=23)
        return spmv_csc(csc, vector, dataset=dataset.name).profile
    if app == "spadd":
        dataset = load_dataset(dataset_name, scale=scale)
        a = to_csr(dataset.matrix)
        b = to_csr(load_dataset(dataset_name, scale=scale, seed=29).matrix)
        return sparse_add(a, b, dataset=dataset.name).profile
    if app == "bicgstab":
        dataset = load_dataset(dataset_name, scale=scale)
        system = make_diagonally_dominant(dataset.matrix)
        rng = np.random.default_rng(31)
        rhs = rng.random(system.shape[0])
        return bicgstab(system, rhs, dataset=dataset.name, max_iterations=20).profile
    if app in ("pagerank-pull", "pagerank-edge"):
        dataset = load_dataset(dataset_name, scale=scale)
        if app == "pagerank-pull":
            return pagerank_pull(
                dataset.matrix, iterations=pagerank_iterations, dataset=dataset.name
            ).profile
        return pagerank_edge(
            dataset.matrix, iterations=pagerank_iterations, dataset=dataset.name
        ).profile
    if app in ("bfs", "sssp"):
        dataset = load_dataset(dataset_name, scale=scale)
        source = best_source(dataset.matrix)
        if app == "bfs":
            return bfs(dataset.matrix, source, dataset=dataset.name).profile
        return sssp(dataset.matrix, source, dataset=dataset.name).profile
    if app == "spmspm":
        dataset = load_dataset(dataset_name, scale=1.0)
        a = to_csr(dataset.matrix)
        return spmspm(a, a, dataset=dataset.name).profile
    if app == "conv":
        workload = generate_conv_layer(dataset_name, scale=conv_scale)
        return sparse_convolution(workload, dataset=dataset_name).profile
    raise ValueError(f"unknown application {app!r}")
