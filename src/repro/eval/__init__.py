"""Evaluation harness: one entry point per table and figure in the paper."""

from .experiments import APP_DATASETS, APP_ORDER, EVAL_SCALE, ProfileSet, best_source, collect_profiles
from .figures import (
    figure4_ordering_trace,
    figure5a_bandwidth_sensitivity,
    figure5b_area_sensitivity,
    figure5c_compression_sensitivity,
    figure6_scanner_sensitivity,
    figure7_stall_breakdown,
)
from .report import format_mapping, format_run_report, format_series, format_table, paper_vs_measured
from .tables import (
    table4_spmu_throughput,
    table5_scanner_area,
    table8_area,
    table9_spmu_sensitivity,
    table10_ordering_modes,
    table11_shuffle_sensitivity,
    table12_performance,
    table13_asic_comparison,
)

__all__ = [
    "APP_DATASETS",
    "APP_ORDER",
    "EVAL_SCALE",
    "ProfileSet",
    "collect_profiles",
    "best_source",
    "table4_spmu_throughput",
    "table5_scanner_area",
    "table8_area",
    "table9_spmu_sensitivity",
    "table10_ordering_modes",
    "table11_shuffle_sensitivity",
    "table12_performance",
    "table13_asic_comparison",
    "figure4_ordering_trace",
    "figure5a_bandwidth_sensitivity",
    "figure5b_area_sensitivity",
    "figure5c_compression_sensitivity",
    "figure6_scanner_sensitivity",
    "figure7_stall_breakdown",
    "format_table",
    "format_mapping",
    "format_run_report",
    "format_series",
    "paper_vs_measured",
]
