"""Figure harnesses: regenerate every figure of the evaluation section.

Each function returns the series a plot of the corresponding figure would
show (no plotting dependency is required offline; the benchmark harness and
EXPERIMENTS.md render them as tables).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..apps.timing import CapstanPlatform, default_platform, estimate_cycles
from ..config import CapstanConfig, MemoryTechnology, ScannerConfig, SpMUConfig
from ..core.ordering import OrderingMode
from ..core.spmu import SparseMemoryUnit, random_request_vectors
from ..sim.dram import DRAMModel, TrafficSummary
from ..sim.stats import STALL_CATEGORIES, geometric_mean
from .experiments import APP_DATASETS, ProfileSet, collect_profiles

# --------------------------------------------------------------------------- #
# Figure 4: traced request vector under the four ordering modes
# --------------------------------------------------------------------------- #

FIGURE4_PAPER_UTILIZATION = {
    "unordered": 79.9,
    "address-ordered": 34.2,
    "fully-ordered": 25.5,
    "arbitrated": 32.4,
}


def figure4_ordering_trace(vectors: int = 120, seed: int = 7) -> Dict:
    """Bank utilization of one random request stream under each ordering mode.

    The paper shows a traced vector's per-cycle bank grants; the quantity it
    annotates (and that Table 10 confirms at system level) is the bank
    utilization each mode achieves, which is what this harness reports,
    together with a short per-cycle trace excerpt for the unordered mode.
    """
    results: Dict[str, float] = {}
    trace_excerpt: List[int] = []
    for name, mode in (
        ("unordered", OrderingMode.UNORDERED),
        ("address-ordered", OrderingMode.ADDRESS_ORDERED),
        ("fully-ordered", OrderingMode.FULLY_ORDERED),
        ("arbitrated", OrderingMode.ARBITRATED),
    ):
        unit = SparseMemoryUnit(SpMUConfig(), ordering=mode, record_trace=True)
        stats = unit.simulate(random_request_vectors(vectors, seed=seed))
        results[name] = 100.0 * stats.bank_utilization
        if name == "unordered":
            trace_excerpt = [int(banks) for banks in stats.per_cycle_active_banks[:15]]
    return {
        "measured_utilization_pct": results,
        "paper_utilization_pct": FIGURE4_PAPER_UTILIZATION,
        "unordered_active_banks_per_cycle": trace_excerpt,
    }


# --------------------------------------------------------------------------- #
# Figure 5: DRAM bandwidth, area (outer-parallelism), and compression sweeps
# --------------------------------------------------------------------------- #

FIGURE5_BANDWIDTH_POINTS = (20, 50, 100, 200, 500, 1000, 2000)

#: Apps plotted in Figure 5 (all except BiCGStab, following the legend).
FIGURE5_APPS = (
    "spmv-csr",
    "spmv-coo",
    "spmv-csc",
    "conv",
    "pagerank-pull",
    "pagerank-edge",
    "bfs",
    "sssp",
    "spadd",
    "spmspm",
)


def figure5a_bandwidth_sensitivity(
    profiles: Optional[ProfileSet] = None,
    bandwidths_gbps: tuple = FIGURE5_BANDWIDTH_POINTS,
) -> Dict[str, List[float]]:
    """Speedup vs DRAM bandwidth, normalized to the lowest point per app."""
    profiles = profiles or collect_profiles(apps=list(FIGURE5_APPS))
    series: Dict[str, List[float]] = {}
    for app in profiles.apps():
        app_profiles = profiles.for_app(app)
        runtimes = []
        for bandwidth in bandwidths_gbps:
            seconds = []
            for profile in app_profiles:
                platform = default_platform(MemoryTechnology.HBM2E)
                cycles, _ = _cycles_with_bandwidth(profile, platform, bandwidth)
                seconds.append(cycles)
            runtimes.append(geometric_mean(seconds))
        base = runtimes[0]
        series[app] = [base / r if r > 0 else 0.0 for r in runtimes]
    series["bandwidth_gbps"] = list(bandwidths_gbps)
    return series


def _cycles_with_bandwidth(profile, platform: CapstanPlatform, bandwidth_gbps: float):
    """Re-cost a profile with an overridden DRAM bandwidth."""
    cycles, breakdown = estimate_cycles(profile, platform)
    # Replace the DRAM component with one computed at the swept bandwidth.
    dram_default = DRAMModel(platform.config.memory, clock_ghz=platform.config.clock_ghz)
    dram_swept = DRAMModel(
        platform.config.memory, bandwidth_gbps=bandwidth_gbps, clock_ghz=platform.config.clock_ghz
    )
    traffic = TrafficSummary(
        streaming_read_bytes=profile.dram_stream_read_bytes,
        streaming_write_bytes=profile.dram_stream_write_bytes,
        random_accesses=profile.dram_random_reads + 2 * profile.dram_random_updates,
    )
    old_dram = max(0.0, dram_default.traffic_cycles(traffic) - breakdown.load_store)
    new_dram = max(0.0, dram_swept.traffic_cycles(traffic) - breakdown.load_store)
    return cycles - breakdown.dram + new_dram, breakdown


def figure5b_area_sensitivity(
    profiles: Optional[ProfileSet] = None,
    parallelism_points: tuple = (2, 4, 8, 16, 32, 64),
) -> Dict[str, List[float]]:
    """Speedup vs outer-parallelism (a proxy for weighted on-chip area)."""
    profiles = profiles or collect_profiles(apps=list(FIGURE5_APPS))
    series: Dict[str, List[float]] = {}
    for app in profiles.apps():
        app_profiles = profiles.for_app(app)
        runtimes = []
        for units in parallelism_points:
            seconds = []
            for profile in app_profiles:
                scaled = _with_parallelism(profile, units)
                platform = default_platform(MemoryTechnology.HBM2E)
                cycles, _ = estimate_cycles(scaled, platform)
                seconds.append(cycles)
            runtimes.append(geometric_mean(seconds))
        base = runtimes[0]
        series[app] = [base / r if r > 0 else 0.0 for r in runtimes]
    series["parallelism"] = list(parallelism_points)
    return series


def _with_parallelism(profile, units: int):
    """Copy a profile with a different outer-parallelism and re-split tiles."""
    import copy

    scaled = copy.copy(profile)
    scaled.outer_parallelism = units
    work = np.asarray(profile.tile_work, dtype=np.float64)
    if work.size:
        total = work.sum()
        rng = np.random.default_rng(3)
        # Redistribute the same total work over `units` tiles with the same
        # relative spread as the original partition.
        spread = work.std() / work.mean() if work.mean() > 0 else 0.0
        new_work = np.maximum(0.0, rng.normal(1.0, spread, size=units))
        new_work = new_work / max(new_work.sum(), 1e-9) * total
        scaled.tile_work = new_work.tolist()
    return scaled


def figure5c_compression_sensitivity(
    profiles: Optional[ProfileSet] = None,
    bandwidths_gbps: tuple = FIGURE5_BANDWIDTH_POINTS,
) -> Dict[str, List[float]]:
    """Speedup from read-side DRAM compression across bandwidths."""
    profiles = profiles or collect_profiles(apps=list(FIGURE5_APPS))
    series: Dict[str, List[float]] = {}
    for app in profiles.apps():
        app_profiles = profiles.for_app(app)
        speedups = []
        for bandwidth in bandwidths_gbps:
            with_compression = []
            without_compression = []
            for profile in app_profiles:
                enabled = default_platform(MemoryTechnology.HBM2E)
                cycles_on, _ = _cycles_with_bandwidth(profile, enabled, bandwidth)
                import copy

                stripped = copy.copy(profile)
                stripped.pointer_compression_ratio = 1.0
                cycles_off, _ = _cycles_with_bandwidth(stripped, enabled, bandwidth)
                with_compression.append(cycles_on)
                without_compression.append(cycles_off)
            speedups.append(
                geometric_mean(without_compression) / max(geometric_mean(with_compression), 1e-9)
            )
        series[app] = speedups
    series["bandwidth_gbps"] = list(bandwidths_gbps)
    return series


# --------------------------------------------------------------------------- #
# Figure 6: scanner width sensitivity
# --------------------------------------------------------------------------- #

FIGURE6_BIT_WIDTHS = (1, 4, 16, 64, 128, 256, 512)
FIGURE6_OUTPUT_WIDTHS = (1, 2, 4, 8, 16)
FIGURE6_BIT_APPS = ("bfs", "sssp", "spadd", "spmspm")
FIGURE6_OUTPUT_APPS = ("spadd", "spmspm")


def figure6_scanner_sensitivity(
    profiles: Optional[ProfileSet] = None,
    scale: float = 1.0 / 64.0,
) -> Dict:
    """Slowdown vs scanner bit width and output vectorization.

    Scanner configuration changes the scan-cycle component of each profile;
    the applications are re-profiled with the swept scanner configuration
    and re-costed, all relative to the maximal 512-input/16-output scanner.
    """
    bit_series: Dict[str, List[float]] = {}
    out_series: Dict[str, List[float]] = {}

    def runtime(app: str, scanner: ScannerConfig) -> float:
        seconds = []
        for dataset in APP_DATASETS[app]:
            profile = _scan_reprofiled(app, dataset, scale, scanner)
            config = CapstanConfig(scanner=scanner)
            cycles, _ = estimate_cycles(profile, CapstanPlatform(config=config))
            seconds.append(cycles)
        return geometric_mean(seconds)

    reference = ScannerConfig(bit_width=512, output_vectorization=16)
    for app in FIGURE6_BIT_APPS:
        base = runtime(app, reference)
        bit_series[app] = [
            runtime(app, ScannerConfig(bit_width=width, output_vectorization=16)) / base
            for width in FIGURE6_BIT_WIDTHS
        ]
    for app in FIGURE6_OUTPUT_APPS:
        base = runtime(app, reference)
        out_series[app] = [
            runtime(app, ScannerConfig(bit_width=512, output_vectorization=out)) / base
            for out in FIGURE6_OUTPUT_WIDTHS
        ]
    return {
        "bit_widths": list(FIGURE6_BIT_WIDTHS),
        "bit_slowdown": bit_series,
        "output_widths": list(FIGURE6_OUTPUT_WIDTHS),
        "output_slowdown": out_series,
    }


_SCAN_REPROFILE_CACHE: Dict[tuple, object] = {}


def _scan_reprofiled(app: str, dataset: str, scale: float, scanner: ScannerConfig):
    """Re-run one app with a swept scanner configuration (cached in-memory).

    The registry applies the scanner override during execution (the
    scan-cost helpers construct their default configuration at call time),
    so the application is profiled as if the hardware had the swept scanner.
    These off-design-point profiles deliberately bypass the on-disk cache.
    """
    from ..runtime.registry import RunContext, execute

    key = (app, dataset, scale, scanner.bit_width, scanner.output_vectorization)
    cached = _SCAN_REPROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    context = RunContext(scale=scale, scanner=scanner)
    profile = execute(app, dataset, context)
    _SCAN_REPROFILE_CACHE[key] = profile
    return profile


# --------------------------------------------------------------------------- #
# Figure 7: stall breakdown
# --------------------------------------------------------------------------- #

def figure7_stall_breakdown(profiles: Optional[ProfileSet] = None) -> Dict[str, Dict[str, float]]:
    """Fractional stall breakdown per application (averaged over datasets)."""
    profiles = profiles or collect_profiles()
    platform = default_platform(MemoryTechnology.HBM2E)
    breakdown_by_app: Dict[str, Dict[str, float]] = {}
    for app in profiles.apps():
        totals = {name: 0.0 for name in STALL_CATEGORIES}
        for profile in profiles.for_app(app):
            _, breakdown = estimate_cycles(profile, platform)
            fractions = breakdown.fractions()
            for name in STALL_CATEGORIES:
                totals[name] += fractions[name]
        count = max(1, len(profiles.for_app(app)))
        breakdown_by_app[app] = {name: totals[name] / count for name in STALL_CATEGORIES}
    return breakdown_by_app
