"""Architecture configuration objects for Capstan and its baselines.

The numbers here come from Section 4.1 and Table 7 of the paper: a 20x20
checkerboard of compute units (CUs) and sparse memory units (SpMUs) ringed by
80 DRAM address generators (AGs), 16 vector lanes per CU, 16 banks per SpMU,
a 16-entry reorder queue, and a choice of DDR4 / HBM2 / HBM2E memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict

from .errors import ConfigurationError


class MemoryTechnology(Enum):
    """Off-chip memory technologies evaluated in the paper (Table 7)."""

    DDR4 = "ddr4"
    HBM2 = "hbm2"
    HBM2E = "hbm2e"
    IDEAL = "ideal"


#: Peak off-chip bandwidth in GB/s for each technology (Table 7).
MEMORY_BANDWIDTH_GBPS: Dict[MemoryTechnology, float] = {
    MemoryTechnology.DDR4: 68.0,
    MemoryTechnology.HBM2: 900.0,
    MemoryTechnology.HBM2E: 1800.0,
    MemoryTechnology.IDEAL: float("inf"),
}

#: Typical random-access (closed-page) latency in nanoseconds.
MEMORY_LATENCY_NS: Dict[MemoryTechnology, float] = {
    MemoryTechnology.DDR4: 80.0,
    MemoryTechnology.HBM2: 100.0,
    MemoryTechnology.HBM2E: 100.0,
    MemoryTechnology.IDEAL: 0.0,
}


@dataclass(frozen=True)
class SpMUConfig:
    """Configuration of a single sparse memory unit (Section 3.1).

    Attributes:
        banks: Number of SRAM banks (``b`` in the paper).
        words_per_bank: 32-bit words per bank.
        queue_depth: Reorder (issue) queue depth in vectors (``d``).
        crossbar_inputs: Crossbar input ports; ``lanes`` for no speedup,
            ``2 * lanes`` for 2x input speedup.
        allocator_iterations: Iterations of the separable allocator.
        allocator_priorities: Number of age-priority classes used during
            allocation (1-3 in Table 4).
        bloom_filter_entries: Entries in the address-order Bloom filter.
    """

    banks: int = 16
    words_per_bank: int = 4096
    queue_depth: int = 16
    crossbar_inputs: int = 16
    allocator_iterations: int = 3
    allocator_priorities: int = 3
    bloom_filter_entries: int = 128

    @property
    def capacity_bytes(self) -> int:
        """Total SRAM capacity of the unit in bytes (256 KiB by default)."""
        return self.banks * self.words_per_bank * 4

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the configuration is invalid."""
        if self.banks <= 0 or self.banks & (self.banks - 1):
            raise ConfigurationError(f"banks must be a power of two, got {self.banks}")
        if self.queue_depth <= 0:
            raise ConfigurationError("queue_depth must be positive")
        if self.crossbar_inputs <= 0:
            raise ConfigurationError("crossbar_inputs must be positive")
        if self.allocator_iterations <= 0:
            raise ConfigurationError("allocator_iterations must be positive")
        if not 1 <= self.allocator_priorities <= self.allocator_iterations:
            raise ConfigurationError(
                "allocator_priorities must be between 1 and allocator_iterations"
            )


@dataclass(frozen=True)
class ScannerConfig:
    """Configuration of the bit-vector / data scanner (Section 3.3).

    Attributes:
        bit_width: Bits scanned per cycle by the bit-vector scanner.
        data_width: Elements scanned per cycle by the data scanner.
        output_vectorization: Maximum set bits emitted per cycle.
    """

    bit_width: int = 256
    data_width: int = 16
    output_vectorization: int = 16

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the configuration is invalid."""
        if self.bit_width <= 0:
            raise ConfigurationError("bit_width must be positive")
        if self.output_vectorization <= 0:
            raise ConfigurationError("output_vectorization must be positive")
        if self.data_width <= 0:
            raise ConfigurationError("data_width must be positive")


class ShuffleMode(Enum):
    """Merge-unit lane-shifting flexibility (Table 11).

    ``NONE`` removes the shuffle network entirely; ``MRG0`` merges without
    shifting lanes; ``MRG1`` allows a +/-1 lane shift (the paper's design
    point); ``MRG16`` is a full crossbar.
    """

    NONE = "none"
    MRG0 = "mrg-0"
    MRG1 = "mrg-1"
    MRG16 = "mrg-16"

    @property
    def max_shift(self) -> int:
        """Maximum lane displacement permitted when merging two vectors."""
        if self is ShuffleMode.NONE:
            return 0
        if self is ShuffleMode.MRG0:
            return 0
        if self is ShuffleMode.MRG1:
            return 1
        return 16


@dataclass(frozen=True)
class ShuffleConfig:
    """Configuration of the butterfly shuffle networks (Section 3.2)."""

    mode: ShuffleMode = ShuffleMode.MRG1
    on_chip_networks: int = 2
    off_chip_networks: int = 4
    endpoints: int = 16
    permutation_fifo_depth: int = 64

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the configuration is invalid."""
        if self.endpoints <= 0 or self.endpoints & (self.endpoints - 1):
            raise ConfigurationError("endpoints must be a power of two")
        if self.permutation_fifo_depth <= 0:
            raise ConfigurationError("permutation_fifo_depth must be positive")


@dataclass(frozen=True)
class CapstanConfig:
    """Top-level Capstan architecture configuration (Table 7).

    The defaults describe the paper's evaluated design point: a 20x20 grid of
    200 CUs and 200 SpMUs, 80 DRAM address generators, 16 vector lanes, and
    a 1.6 GHz clock.
    """

    compute_units: int = 200
    memory_units: int = 200
    address_generators: int = 80
    lanes: int = 16
    vector_stages: int = 6
    clock_ghz: float = 1.6
    memory: MemoryTechnology = MemoryTechnology.HBM2E
    spmu: SpMUConfig = field(default_factory=SpMUConfig)
    scanner: ScannerConfig = field(default_factory=ScannerConfig)
    shuffle: ShuffleConfig = field(default_factory=ShuffleConfig)
    dram_burst_bytes: int = 64
    compression_enabled: bool = True
    sparse_fraction: float = 1.0

    def validate(self) -> None:
        """Validate the whole configuration tree."""
        if self.lanes <= 0 or self.lanes & (self.lanes - 1):
            raise ConfigurationError("lanes must be a power of two")
        if self.clock_ghz <= 0:
            raise ConfigurationError("clock_ghz must be positive")
        if self.compute_units <= 0 or self.memory_units <= 0:
            raise ConfigurationError("grid must have compute and memory units")
        if not 0.0 <= self.sparse_fraction <= 1.0:
            raise ConfigurationError("sparse_fraction must be within [0, 1]")
        self.spmu.validate()
        self.scanner.validate()
        self.shuffle.validate()

    @property
    def memory_bandwidth_gbps(self) -> float:
        """Peak off-chip bandwidth of the configured memory technology."""
        return MEMORY_BANDWIDTH_GBPS[self.memory]

    @property
    def memory_latency_ns(self) -> float:
        """Closed-page latency of the configured memory technology."""
        return MEMORY_LATENCY_NS[self.memory]

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.clock_ghz

    @property
    def on_chip_sram_bytes(self) -> int:
        """Total distributed SRAM capacity across all SpMUs."""
        return self.memory_units * self.spmu.capacity_bytes

    @property
    def peak_flops_per_cycle(self) -> int:
        """Peak multiply-accumulate lanes active per cycle across all CUs."""
        return self.compute_units * self.lanes

    def with_memory(self, memory: MemoryTechnology) -> "CapstanConfig":
        """Return a copy of this configuration using ``memory`` off-chip."""
        return replace(self, memory=memory)

    def with_shuffle_mode(self, mode: ShuffleMode) -> "CapstanConfig":
        """Return a copy of this configuration with a different shuffle mode."""
        return replace(self, shuffle=replace(self.shuffle, mode=mode))

    def scaled(self, factor: float) -> "CapstanConfig":
        """Return a configuration with the grid scaled by ``factor``.

        Used for the Figure 5b area-sensitivity study where outer
        parallelization (and therefore the number of active units) varies.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            compute_units=max(1, int(round(self.compute_units * factor))),
            memory_units=max(1, int(round(self.memory_units * factor))),
            address_generators=max(1, int(round(self.address_generators * factor))),
        )


@dataclass(frozen=True)
class PlasticineConfig:
    """Configuration of the dense Plasticine baseline (Section 5).

    Plasticine shares Capstan's grid and clock but its memories are
    statically banked (one random access per cycle per memory), it has no
    read-modify-write support, and no sparse-iteration hardware.
    """

    compute_units: int = 200
    memory_units: int = 200
    address_generators: int = 80
    lanes: int = 16
    clock_ghz: float = 1.6
    memory: MemoryTechnology = MemoryTechnology.HBM2E

    @property
    def memory_bandwidth_gbps(self) -> float:
        """Peak off-chip bandwidth of the configured memory technology."""
        return MEMORY_BANDWIDTH_GBPS[self.memory]

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.clock_ghz


def default_config(memory: MemoryTechnology = MemoryTechnology.HBM2E) -> CapstanConfig:
    """Return the paper's default Capstan design point with ``memory``."""
    config = CapstanConfig(memory=memory)
    config.validate()
    return config
