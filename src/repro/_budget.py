"""Memory-budget primitives for chunked batch execution.

The batch engines (platform costing, lock-step SpMU simulation, tile
conversion, scanning, DSE) materialize whole grids as numpy tensors. A
memory budget bounds that: given a byte budget and a per-item cost model,
:func:`plan_chunks` picks a chunk size and the engines stream chunk by
chunk, aggregating results that are bit-identical to the unchunked pass.

This module is deliberately low-level (stdlib-only, importable from
``repro.core`` and ``repro.apps`` without layering cycles); the public
planner facade lives in :mod:`repro.runtime.budget`.

The budget can come from three places, in precedence order: an explicit
argument to the engine, the ``REPRO_MEMORY_BUDGET`` environment variable
(set by ``repro-eval --memory-budget``), or no budget at all (the engines
then run unchunked, exactly as before).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple, TypeVar, Union

from .errors import ConfigurationError

#: Environment variable carrying the process-wide memory budget in bytes
#: (suffixed sizes like ``512M`` are accepted too).
ENV_MEMORY_BUDGET = "REPRO_MEMORY_BUDGET"

_T = TypeVar("_T")

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    "gib": 1 << 30,
    "t": 1 << 40,
    "tb": 1 << 40,
    "tib": 1 << 40,
}


def parse_memory_budget(value: Union[int, float, str, None]) -> Optional[int]:
    """Parse a memory budget into bytes.

    Accepts ``None`` (no budget), plain byte counts (``1048576``), and
    suffixed sizes (``"512M"``, ``"1.5G"``, ``"64KiB"``); suffixes are
    binary (``M`` = MiB). The result must be a positive byte count.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ConfigurationError("memory budget must be a byte count, not a bool")
    if isinstance(value, (int, float)):
        budget = int(value)
    else:
        text = str(value).strip().lower().replace(" ", "")
        number = text.rstrip("abgikmt")
        unit = text[len(number):]
        if unit not in _UNIT_FACTORS:
            raise ConfigurationError(f"unknown memory-budget unit {unit!r} in {value!r}")
        try:
            scale = float(number)
        except ValueError:
            raise ConfigurationError(f"invalid memory budget {value!r}") from None
        budget = int(scale * _UNIT_FACTORS[unit])
    if budget <= 0:
        raise ConfigurationError(f"memory budget must be positive, got {value!r}")
    return budget


def resolve_memory_budget(
    value: Union[int, float, str, None] = None,
) -> Optional[int]:
    """Resolve the effective budget: explicit argument, else the environment.

    ``None`` with no (or empty) ``REPRO_MEMORY_BUDGET`` means unbudgeted.
    """
    if value is not None:
        return parse_memory_budget(value)
    env = os.environ.get(ENV_MEMORY_BUDGET, "").strip()
    if not env:
        return None
    return parse_memory_budget(env)


@dataclass(frozen=True)
class ChunkPlan:
    """A chunking decision: ``total_items`` processed ``chunk_items`` at a time."""

    total_items: int
    chunk_items: int

    @property
    def n_chunks(self) -> int:
        """Number of chunks the plan produces."""
        if self.total_items == 0:
            return 0
        return -(-self.total_items // self.chunk_items)

    def bounds(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, stop)`` item ranges in order."""
        for start in range(0, self.total_items, self.chunk_items):
            yield start, min(start + self.chunk_items, self.total_items)

    def slices(self) -> Iterator[slice]:
        """Yield ``slice`` objects covering the item ranges in order."""
        for start, stop in self.bounds():
            yield slice(start, stop)


def plan_chunks(
    total_items: int,
    bytes_per_item: Union[int, float],
    memory_budget: Optional[int],
    *,
    min_items: int = 1,
    max_items: Optional[int] = None,
) -> ChunkPlan:
    """Pick a chunk size so one chunk's working set fits the budget.

    Args:
        total_items: Grid extent along the chunked axis.
        bytes_per_item: Cost-model estimate of one item's working set.
        memory_budget: Byte budget, or ``None`` for a single chunk.
        min_items: Floor on the chunk size (a chunk must make progress
            even when one item alone exceeds the budget).
        max_items: Optional ceiling on the chunk size.

    Returns:
        A :class:`ChunkPlan`; with no budget it holds everything in one chunk.
    """
    if total_items < 0:
        raise ConfigurationError("total_items must be non-negative")
    if min_items < 1:
        raise ConfigurationError("min_items must be at least 1")
    if memory_budget is None:
        chunk = max(total_items, min_items)
    else:
        per_item = max(float(bytes_per_item), 1.0)
        chunk = max(int(memory_budget / per_item), min_items)
    if max_items is not None:
        chunk = min(chunk, max(max_items, min_items))
    return ChunkPlan(total_items=total_items, chunk_items=max(chunk, min_items))


def iter_chunked(items: Iterable[_T], chunk_items: int) -> Iterator[List[_T]]:
    """Yield successive lists of up to ``chunk_items`` from any iterable.

    The source is consumed lazily (one chunk ahead at most), so generators
    stream through without up-front materialization.
    """
    if chunk_items < 1:
        raise ConfigurationError("chunk_items must be at least 1")
    iterator = iter(items)
    while True:
        chunk = list(itertools.islice(iterator, chunk_items))
        if not chunk:
            return
        yield chunk
