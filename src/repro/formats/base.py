"""Common base types shared by all sparse tensor formats.

Every 2-D format in :mod:`repro.formats` implements the
:class:`SparseMatrixFormat` interface: a shape, a non-zero count, conversion
to a dense ``numpy`` array and to scipy COO triplets, and element access.
Formats are immutable value objects; construction validates the underlying
arrays so downstream hardware models can assume well-formed inputs.
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple

import numpy as np

from ..errors import FormatError


class SparseMatrixFormat(abc.ABC):
    """Abstract interface implemented by every 2-D sparse matrix format."""

    @property
    @abc.abstractmethod
    def shape(self) -> Tuple[int, int]:
        """Matrix dimensions as ``(rows, cols)``."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored entries."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialize the matrix as a dense float64 array."""

    @abc.abstractmethod
    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries.

        This is every format's vectorized primitive; each implementation
        produces the arrays directly from its compressed storage, in the
        same entry order its former element-at-a-time iterator used.
        """

    def iter_nonzeros(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(row, col, value)`` triplets for every stored entry.

        A thin compatibility wrapper over :meth:`to_coo_arrays`.
        """
        rows, cols, values = self.to_coo_arrays()
        yield from zip(rows.tolist(), cols.tolist(), values.tolist())

    @property
    def density(self) -> float:
        """Fraction of entries that are explicitly stored."""
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrixFormat):
            return NotImplemented
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense())

    def __hash__(self) -> int:  # pragma: no cover - formats are not hashable
        raise TypeError(f"{type(self).__name__} objects are unhashable")


def check_shape(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Validate and normalize a 2-D shape tuple."""
    if len(shape) != 2:
        raise FormatError(f"expected a 2-D shape, got {shape!r}")
    rows, cols = int(shape[0]), int(shape[1])
    if rows < 0 or cols < 0:
        raise FormatError(f"shape dimensions must be non-negative, got {shape!r}")
    return rows, cols


def check_indices(indices: np.ndarray, bound: int, name: str) -> np.ndarray:
    """Validate an index array is integral and within ``[0, bound)``."""
    array = np.asarray(indices)
    if array.size and not np.issubdtype(array.dtype, np.integer):
        raise FormatError(f"{name} must be integers")
    array = array.astype(np.int64, copy=False)
    if array.size:
        if array.min() < 0:
            raise FormatError(f"{name} contains negative indices")
        if array.max() >= bound:
            raise FormatError(
                f"{name} contains index {int(array.max())} outside dimension {bound}"
            )
    return array


def check_pointers(pointers: np.ndarray, segments: int, nnz: int, name: str) -> np.ndarray:
    """Validate a compressed-format pointer array.

    Pointer arrays (CSR row pointers, CSC column pointers) must have exactly
    ``segments + 1`` monotonically non-decreasing entries that start at zero
    and end at ``nnz``.
    """
    array = np.asarray(pointers).astype(np.int64, copy=False)
    if array.ndim != 1 or array.size != segments + 1:
        raise FormatError(f"{name} must have {segments + 1} entries, got {array.size}")
    if array.size:
        if array[0] != 0:
            raise FormatError(f"{name} must start at 0, got {int(array[0])}")
        if array[-1] != nnz:
            raise FormatError(f"{name} must end at nnz={nnz}, got {int(array[-1])}")
        if np.any(np.diff(array) < 0):
            raise FormatError(f"{name} must be monotonically non-decreasing")
    return array
