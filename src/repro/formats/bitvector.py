"""Packed bit-vector sparse vector format (Figure 1).

A bit-vector stores one bit per logical position; set bits mark non-zero
positions, and the corresponding values are stored contiguously in a
compressed data array. Bit-vectors are the substrate for Capstan's
vectorized sparse iteration: the scanner intersects or unions two
bit-vectors and emits dense and compressed indices (Section 2.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import FormatError


class BitVector:
    """A sparse vector stored as a packed bit mask plus compressed values.

    Attributes:
        length: Logical length of the vector (number of bit positions).
    """

    def __init__(
        self,
        length: int,
        indices: Iterable[int],
        values: Optional[Iterable[float]] = None,
    ):
        if length < 0:
            raise FormatError("bit-vector length must be non-negative")
        self._length = int(length)
        index_array = np.asarray(list(indices), dtype=np.int64)
        if index_array.size:
            if index_array.min() < 0 or index_array.max() >= self._length:
                raise FormatError("bit-vector indices out of range")
            if np.any(np.diff(np.sort(index_array)) == 0):
                raise FormatError("bit-vector indices must be unique")
        order = np.argsort(index_array, kind="stable")
        self._indices = index_array[order]
        if values is None:
            self._values = np.ones(self._indices.size, dtype=np.float64)
        else:
            value_array = np.asarray(list(values), dtype=np.float64)
            if value_array.size != index_array.size:
                raise FormatError("bit-vector values must match indices in length")
            self._values = value_array[order]
        self._mask = np.zeros(self._length, dtype=bool)
        self._mask[self._indices] = True

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitVector":
        """Build a bit-vector from a dense 1-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 1:
            raise FormatError("from_dense requires a 1-D array")
        indices = np.nonzero(array)[0]
        return cls(array.shape[0], indices, array[indices])

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "BitVector":
        """Build a boolean bit-vector (all values 1.0) from a mask array."""
        array = np.asarray(mask, dtype=bool)
        if array.ndim != 1:
            raise FormatError("from_mask requires a 1-D array")
        return cls(array.shape[0], np.nonzero(array)[0])

    @classmethod
    def empty(cls, length: int) -> "BitVector":
        """An all-zero bit-vector of the given length."""
        return cls(length, [])

    @property
    def length(self) -> int:
        """Logical number of positions."""
        return self._length

    @property
    def nnz(self) -> int:
        """Number of set bits."""
        return int(self._indices.size)

    @property
    def density(self) -> float:
        """Fraction of positions that are set."""
        return self.nnz / self._length if self._length else 0.0

    @property
    def indices(self) -> np.ndarray:
        """Sorted positions of set bits."""
        return self._indices.copy()

    @property
    def values(self) -> np.ndarray:
        """Compressed values, aligned with :attr:`indices`."""
        return self._values.copy()

    @property
    def mask(self) -> np.ndarray:
        """Boolean occupancy mask of length :attr:`length`."""
        return self._mask.copy()

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        dense = np.zeros(self._length, dtype=np.float64)
        dense[self._indices] = self._values
        return dense

    def packed_words(self, word_bits: int = 32) -> np.ndarray:
        """Pack the occupancy mask into ``word_bits``-bit unsigned words.

        This mirrors the on-chip storage layout: a 512-bit tile occupies 16
        32-bit SRAM words.
        """
        if word_bits <= 0 or word_bits > 64:
            raise FormatError("word_bits must be in (0, 64]")
        word_count = (self._length + word_bits - 1) // word_bits
        words = np.zeros(word_count, dtype=np.uint64)
        for index in self._indices.tolist():
            words[index // word_bits] |= np.uint64(1) << np.uint64(index % word_bits)
        return words

    def storage_bits(self) -> int:
        """Bits needed to store the mask plus 32-bit compressed values."""
        return self._length + 32 * self.nnz

    def intersect_mask(self, other: "BitVector") -> np.ndarray:
        """Boolean AND of the two occupancy masks."""
        self._check_compatible(other)
        return self._mask & other._mask

    def union_mask(self, other: "BitVector") -> np.ndarray:
        """Boolean OR of the two occupancy masks."""
        self._check_compatible(other)
        return self._mask | other._mask

    def compressed_position(self, index: int) -> int:
        """Return the compressed-array slot of dense position ``index``.

        Raises :class:`FormatError` if the bit at ``index`` is not set. This
        is the prefix-sum lookup the scanner performs in hardware.
        """
        if index < 0 or index >= self._length:
            raise FormatError(f"index {index} out of range")
        if not self._mask[index]:
            raise FormatError(f"bit {index} is not set")
        return int(np.searchsorted(self._indices, index))

    def iter_set_bits(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(index, value)`` for every set bit in ascending order."""
        for index, value in zip(self._indices.tolist(), self._values.tolist()):
            yield index, value

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return (
            self._length == other._length
            and np.array_equal(self._indices, other._indices)
            and np.allclose(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("BitVector objects are unhashable")

    def __repr__(self) -> str:
        return f"BitVector(length={self._length}, nnz={self.nnz})"

    def _check_compatible(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise FormatError(
                f"bit-vector lengths differ: {self._length} vs {other._length}"
            )
