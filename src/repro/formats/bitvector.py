"""Packed bit-vector sparse vector format (Figure 1).

A bit-vector stores one bit per logical position; set bits mark non-zero
positions, and the corresponding values are stored contiguously in a
compressed data array. Bit-vectors are the substrate for Capstan's
vectorized sparse iteration: the scanner intersects or unions two
bit-vectors and emits dense and compressed indices (Section 2.2).

The occupancy lives natively in packed ``uint64`` words
(:mod:`repro.formats.packed`), matching the on-chip storage layout; the
dense boolean mask is only materialized (and cached) when explicitly
requested. Construction is array-native: ``numpy`` index/value arrays pass
straight through without Python-list round trips, and all validation is
vectorized.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import FormatError
from . import packed


def _as_index_array(indices) -> np.ndarray:
    """Coerce an array-like or iterable of positions to an int64 array."""
    if isinstance(indices, np.ndarray):
        return indices.astype(np.int64, copy=False)
    if not isinstance(indices, (list, tuple, range)):
        indices = list(indices)
    return np.asarray(indices, dtype=np.int64)


def _as_value_array(values) -> np.ndarray:
    """Coerce an array-like or iterable of values to a float64 array."""
    if isinstance(values, np.ndarray):
        return values.astype(np.float64, copy=False)
    if not isinstance(values, (list, tuple, range)):
        values = list(values)
    return np.asarray(values, dtype=np.float64)


class BitVector:
    """A sparse vector stored as a packed bit mask plus compressed values.

    Attributes:
        length: Logical length of the vector (number of bit positions).
    """

    __slots__ = ("_length", "_indices", "_values", "_words", "_mask")

    def __init__(
        self,
        length: int,
        indices: Iterable[int],
        values: Optional[Iterable[float]] = None,
    ):
        if length < 0:
            raise FormatError("bit-vector length must be non-negative")
        self._length = int(length)
        index_array = _as_index_array(indices)
        if index_array.ndim != 1:
            raise FormatError("bit-vector indices must be one-dimensional")
        if index_array.size:
            if index_array.min() < 0 or index_array.max() >= self._length:
                raise FormatError("bit-vector indices out of range")
        order = np.argsort(index_array, kind="stable")
        sorted_indices = index_array[order]
        if sorted_indices.size > 1 and np.any(np.diff(sorted_indices) == 0):
            raise FormatError("bit-vector indices must be unique")
        self._indices = sorted_indices
        if values is None:
            self._values = np.ones(self._indices.size, dtype=np.float64)
        else:
            value_array = _as_value_array(values)
            if value_array.size != index_array.size:
                raise FormatError("bit-vector values must match indices in length")
            self._values = value_array[order]
        self._words: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None

    @classmethod
    def _from_trusted(
        cls,
        length: int,
        sorted_indices: np.ndarray,
        values: Optional[np.ndarray] = None,
        words: Optional[np.ndarray] = None,
    ) -> "BitVector":
        """Internal fast path: pre-validated sorted indices, no copies.

        Batch builders (the format converter, bit-tree tile extraction, CSR
        row fan-out) validate whole grids at once and hand each vector its
        slice directly.
        """
        vector = cls.__new__(cls)
        vector._length = int(length)
        vector._indices = sorted_indices
        if values is None:
            vector._values = np.ones(sorted_indices.size, dtype=np.float64)
        else:
            vector._values = values
        vector._words = words
        vector._mask = None
        return vector

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitVector":
        """Build a bit-vector from a dense 1-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 1:
            raise FormatError("from_dense requires a 1-D array")
        indices = np.nonzero(array)[0]
        return cls._from_trusted(
            array.shape[0], indices.astype(np.int64), array[indices]
        )

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "BitVector":
        """Build a boolean bit-vector (all values 1.0) from a mask array."""
        array = np.asarray(mask, dtype=bool)
        if array.ndim != 1:
            raise FormatError("from_mask requires a 1-D array")
        vector = cls._from_trusted(
            array.shape[0], np.nonzero(array)[0].astype(np.int64)
        )
        vector._mask = array.copy()
        return vector

    @classmethod
    def from_words(
        cls,
        length: int,
        words: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> "BitVector":
        """Build a bit-vector directly from packed 64-bit occupancy words.

        ``values``, when given, must align with the words' set bits in
        ascending position order.
        """
        if length < 0:
            raise FormatError("bit-vector length must be non-negative")
        expected = packed.word_count(length)
        word_array = np.array(
            np.asarray(words, dtype=np.uint64)[:expected], copy=True
        )
        if word_array.size < expected:
            raise FormatError("packed words do not cover the requested length")
        # Clear any stray bits at positions >= length so the stored words
        # stay consistent with the index view (count/scan agree).
        tail_bits = length % packed.WORD_BITS
        if expected and tail_bits:
            word_array[-1] &= (np.uint64(1) << np.uint64(tail_bits)) - np.uint64(1)
        indices = packed.indices_from_words(word_array, length)
        if values is not None:
            value_array = _as_value_array(values)
            if value_array.size != indices.size:
                raise FormatError("bit-vector values must match set bits in count")
        else:
            value_array = None
        return cls._from_trusted(length, indices, value_array, word_array)

    @classmethod
    def empty(cls, length: int) -> "BitVector":
        """An all-zero bit-vector of the given length."""
        if length < 0:
            raise FormatError("bit-vector length must be non-negative")
        return cls._from_trusted(length, np.empty(0, dtype=np.int64))

    @property
    def length(self) -> int:
        """Logical number of positions."""
        return self._length

    @property
    def nnz(self) -> int:
        """Number of set bits."""
        return int(self._indices.size)

    @property
    def density(self) -> float:
        """Fraction of positions that are set."""
        return self.nnz / self._length if self._length else 0.0

    @property
    def indices(self) -> np.ndarray:
        """Sorted positions of set bits."""
        return self._indices.copy()

    @property
    def values(self) -> np.ndarray:
        """Compressed values, aligned with :attr:`indices`."""
        return self._values.copy()

    @property
    def mask(self) -> np.ndarray:
        """Boolean occupancy mask of length :attr:`length`."""
        return self._occupancy().copy()

    @property
    def words(self) -> np.ndarray:
        """Packed 64-bit occupancy words (the native storage layout)."""
        return self._packed().copy()

    def _occupancy(self) -> np.ndarray:
        """Cached dense mask; internal callers must not mutate it."""
        if self._mask is None:
            mask = np.zeros(self._length, dtype=bool)
            mask[self._indices] = True
            self._mask = mask
        return self._mask

    def _packed(self) -> np.ndarray:
        """Cached packed words; internal callers must not mutate them."""
        if self._words is None:
            self._words = packed.pack_indices(self._indices, self._length)
        return self._words

    def _sorted_indices(self) -> np.ndarray:
        """Internal no-copy view of the sorted set-bit positions."""
        return self._indices

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        dense = np.zeros(self._length, dtype=np.float64)
        dense[self._indices] = self._values
        return dense

    def packed_words(self, word_bits: int = 32) -> np.ndarray:
        """Pack the occupancy mask into ``word_bits``-bit unsigned words.

        This mirrors the on-chip storage layout: a 512-bit tile occupies 16
        32-bit SRAM words.
        """
        return packed.pack_indices(self._indices, self._length, word_bits)

    def storage_bits(self) -> int:
        """Bits needed to store the mask plus 32-bit compressed values."""
        return self._length + 32 * self.nnz

    def intersect_mask(self, other: "BitVector") -> np.ndarray:
        """Boolean AND of the two occupancy masks."""
        self._check_compatible(other)
        return packed.unpack_words(
            self._packed() & other._packed(), self._length
        )

    def union_mask(self, other: "BitVector") -> np.ndarray:
        """Boolean OR of the two occupancy masks."""
        self._check_compatible(other)
        return packed.unpack_words(
            self._packed() | other._packed(), self._length
        )

    def compressed_position(self, index: int) -> int:
        """Return the compressed-array slot of dense position ``index``.

        Raises :class:`FormatError` if the bit at ``index`` is not set. This
        is the prefix-sum rank lookup the scanner performs in hardware.
        """
        if index < 0 or index >= self._length:
            raise FormatError(f"index {index} out of range")
        slot = int(np.searchsorted(self._indices, index))
        if slot >= self._indices.size or self._indices[slot] != index:
            raise FormatError(f"bit {index} is not set")
        return slot

    def iter_set_bits(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(index, value)`` for every set bit in ascending order."""
        for index, value in zip(self._indices.tolist(), self._values.tolist()):
            yield index, value

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return (
            self._length == other._length
            and np.array_equal(self._indices, other._indices)
            and np.allclose(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("BitVector objects are unhashable")

    def __repr__(self) -> str:
        return f"BitVector(length={self._length}, nnz={self.nnz})"

    def _check_compatible(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise FormatError(
                f"bit-vector lengths differ: {self._length} vs {other._length}"
            )
