"""Retained object-at-a-time reference implementations of the format layer.

The packed-word substrate (:mod:`repro.formats.packed`), the array-native
:class:`~repro.formats.bitvector.BitVector` / :class:`~repro.formats.bittree.BitTree`
builders, the columnar scanner batch path, and the batched format converter
all replaced element-at-a-time Python loops. Those loops are preserved here,
unchanged in behaviour, for two purposes:

* property tests pin every vectorized kernel element-for-element against
  its reference twin (``tests/test_packed_formats.py``), and
* ``benchmarks/bench_runner.py`` times the batch paths against them for the
  ``formats`` section of ``BENCH_runner.json``.

Nothing in the library's hot paths calls into this module.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import FormatError
from .bittree import BitTree
from .bitvector import BitVector


def pack_indices_reference(
    indices: np.ndarray, length: int, word_bits: int = 64
) -> np.ndarray:
    """Per-index loop version of :func:`repro.formats.packed.pack_indices`."""
    if word_bits <= 0 or word_bits > 64:
        raise FormatError("word_bits must be in (0, 64]")
    words = np.zeros((length + word_bits - 1) // word_bits, dtype=np.uint64)
    for index in np.asarray(indices, dtype=np.int64).tolist():
        if index < 0 or index >= length:
            raise FormatError("bit index out of range for packed length")
        words[index // word_bits] |= np.uint64(1) << np.uint64(index % word_bits)
    return words


def unpack_words_reference(words: np.ndarray, length: int) -> np.ndarray:
    """Per-bit loop version of :func:`repro.formats.packed.unpack_words`."""
    mask = np.zeros(length, dtype=bool)
    for word_id, word in enumerate(np.asarray(words, dtype=np.uint64).tolist()):
        for bit in range(64):
            position = word_id * 64 + bit
            if position >= length:
                break
            mask[position] = bool((word >> bit) & 1)
    return mask


def popcount_reference(words: np.ndarray) -> np.ndarray:
    """Python bit-string loop version of :func:`repro.formats.packed.popcount`."""
    return np.asarray(
        [bin(int(word)).count("1") for word in np.asarray(words, dtype=np.uint64).tolist()],
        dtype=np.int64,
    )


def rank_reference(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Per-position loop version of :func:`repro.formats.packed.rank`."""
    mask = unpack_words_reference(words, int(np.asarray(words).size * 64))
    prefix = np.cumsum(mask.astype(np.int64))
    out = []
    for position in np.asarray(positions, dtype=np.int64).tolist():
        out.append(int(prefix[position - 1]) if position > 0 else 0)
    return np.asarray(out, dtype=np.int64)


def select_reference(words: np.ndarray, ranks: np.ndarray, length: int) -> np.ndarray:
    """Per-rank scan version of :func:`repro.formats.packed.select`."""
    set_positions = np.flatnonzero(unpack_words_reference(words, length))
    return np.asarray(
        [int(set_positions[rank]) for rank in np.asarray(ranks, dtype=np.int64).tolist()],
        dtype=np.int64,
    )


def bittree_from_indices_reference(
    length: int,
    indices: np.ndarray,
    values: np.ndarray,
    tile_bits: int = 512,
) -> BitTree:
    """The seed-era object-at-a-time bit-tree build: one ``set()`` per entry."""
    tree = BitTree(length, tile_bits)
    for index, value in zip(
        np.asarray(indices).tolist(), np.asarray(values).tolist()
    ):
        tree.set(int(index), float(value))
    return tree


def bitvector_construct_reference(
    length: int,
    indices,
    values=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The seed-era list-round-trip bit-vector construction.

    Performs exactly the work the pre-substrate ``BitVector.__init__`` did --
    ``list()`` round trips, a second full sort for the duplicate check, and
    an eagerly materialized dense occupancy mask -- and returns the
    ``(sorted_indices, sorted_values, mask)`` artifacts for comparison
    against the array-native construction path.
    """
    index_array = np.asarray(list(indices), dtype=np.int64)
    if index_array.size:
        if index_array.min() < 0 or index_array.max() >= length:
            raise FormatError("bit-vector indices out of range")
        if np.any(np.diff(np.sort(index_array)) == 0):
            raise FormatError("bit-vector indices must be unique")
    order = np.argsort(index_array, kind="stable")
    sorted_indices = index_array[order]
    if values is None:
        sorted_values = np.ones(sorted_indices.size, dtype=np.float64)
    else:
        value_array = np.asarray(list(values), dtype=np.float64)
        if value_array.size != index_array.size:
            raise FormatError("bit-vector values must match indices in length")
        sorted_values = value_array[order]
    mask = np.zeros(length, dtype=bool)
    mask[sorted_indices] = True
    return sorted_indices, sorted_values, mask


def align_trees_reference(
    left: BitTree, right: BitTree, mode: str = "union"
) -> List[Tuple[int, BitVector, BitVector]]:
    """Python set-arithmetic tile realignment (the seed-era first pass)."""
    if left.length != right.length or left.tile_bits != right.tile_bits:
        raise FormatError("bit-trees must have matching length and tile size")
    if mode not in ("union", "intersect"):
        raise FormatError(f"unknown alignment mode {mode!r}")
    left_ids = {tile_id for tile_id, _ in left.iter_tiles()}
    right_ids = {tile_id for tile_id, _ in right.iter_tiles()}
    if mode == "union":
        selected = sorted(left_ids | right_ids)
    else:
        selected = sorted(left_ids & right_ids)
    return [(tile_id, left.tile(tile_id), right.tile(tile_id)) for tile_id in selected]


def to_coo_arrays_reference(matrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The seed-era triple-list materialization over ``iter_nonzeros``."""
    triples = list(matrix.iter_nonzeros())
    if not triples:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    rows, cols, values = zip(*triples)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def packed_words_reference(vector: BitVector, word_bits: int = 32) -> np.ndarray:
    """Seed-era per-index repacking of a bit-vector's occupancy."""
    return pack_indices_reference(vector.indices, vector.length, word_bits)


__all__ = [
    "align_trees_reference",
    "bittree_from_indices_reference",
    "bitvector_construct_reference",
    "pack_indices_reference",
    "packed_words_reference",
    "popcount_reference",
    "rank_reference",
    "select_reference",
    "to_coo_arrays_reference",
    "unpack_words_reference",
]
