"""Packed-word bitset kernels: the array-native sparse format substrate.

Capstan stores occupancy as packed bit-vectors in SRAM words and operates on
whole words at a time (Sections 2.2-2.3): the scanner ANDs/ORs words, counts
set bits with popcount trees, and turns prefix-sum ranks into compressed
indices. This module is the software mirror of that substrate -- every
kernel is a vectorized ``numpy`` operation over ``uint64`` word arrays, and
everything downstream (:class:`~repro.formats.bitvector.BitVector`,
:class:`~repro.formats.bittree.BitTree`, the scanner batch path, the format
converter) is built on it.

Kernels:

* :func:`pack_indices` / :func:`pack_mask` -- set-bit positions or a boolean
  mask into packed ``uint64`` words;
* :func:`unpack_words` -- packed words back into a boolean mask;
* :func:`indices_from_words` -- packed words into sorted set-bit positions;
* :func:`popcount` -- per-word set-bit counts;
* :func:`rank_words` / :func:`rank` -- prefix-sum rank (set bits strictly
  before a word / a position), the compressed-index lookup;
* :func:`select` -- position of the ``k``-th set bit, rank's inverse;
* :func:`test_bits` -- membership of positions in a packed word array;
* :func:`intersect_words` / :func:`union_words` -- word-wise AND / OR.

Object-at-a-time reference implementations of the same kernels live in
:mod:`repro.formats.reference`; property tests pin the two element for
element.
"""

from __future__ import annotations

import sys

import numpy as np

from .._compiled import HAS_NUMBA, default_backend, njit
from ..errors import FormatError

#: Bits per packed word: the substrate packs into 64-bit words natively.
WORD_BITS = 64

_LITTLE_ENDIAN = sys.byteorder == "little"


def _use_compiled() -> bool:
    """Route the hot kernels through the numba loops?

    Only when numba is both requested (process default backend) and
    actually importable -- the plain-Python rendition of the loop kernels
    exists for equivalence testing, not production use.
    """
    return HAS_NUMBA and default_backend() == "numba"


# --------------------------------------------------------------------------- #
# Scalar loop kernels (the optional numba backend)
#
# Each kernel is the loop-form of one numpy kernel below, decorated with the
# import-guarded :func:`~repro._compiled.njit`: compiled to machine code
# when numba is installed, plain Python otherwise. Property tests pin them
# element-for-element against the numpy implementations either way.
# --------------------------------------------------------------------------- #


@njit
def _pack_indices_kernel(indices, n_words, word_bits):
    """Loop form of :func:`pack_indices` over validated unique indices."""
    words = np.zeros(n_words, dtype=np.uint64)
    for i in range(indices.shape[0]):
        index = indices[i]
        words[index // word_bits] |= np.uint64(1) << np.uint64(index % word_bits)
    return words


@njit
def _popcount_kernel(words):
    """Loop form of :func:`popcount` (Kernighan bit-clearing)."""
    out = np.empty(words.shape[0], dtype=np.int64)
    for i in range(words.shape[0]):
        word = words[i]
        count = 0
        while word != np.uint64(0):
            word &= word - np.uint64(1)
            count += 1
        out[i] = count
    return out


@njit
def _rank_kernel(words, positions):
    """Loop form of :func:`rank` over validated positions (64-bit words)."""
    n_words = words.shape[0]
    prefix = np.empty(n_words + 1, dtype=np.int64)
    prefix[0] = 0
    for i in range(n_words):
        word = words[i]
        count = 0
        while word != np.uint64(0):
            word &= word - np.uint64(1)
            count += 1
        prefix[i + 1] = prefix[i] + count
    out = np.empty(positions.shape[0], dtype=np.int64)
    for i in range(positions.shape[0]):
        position = positions[i]
        below = words[position >> 6] & (
            (np.uint64(1) << np.uint64(position & 63)) - np.uint64(1)
        )
        count = 0
        while below != np.uint64(0):
            below &= below - np.uint64(1)
            count += 1
        out[i] = prefix[position >> 6] + count
    return out


@njit
def _intersect_kernel(a, b):
    """Loop form of :func:`intersect_words` over flat same-length arrays."""
    out = np.empty(a.shape[0], dtype=np.uint64)
    for i in range(a.shape[0]):
        out[i] = a[i] & b[i]
    return out


@njit
def _union_kernel(a, b):
    """Loop form of :func:`union_words` over flat same-length arrays."""
    out = np.empty(a.shape[0], dtype=np.uint64)
    for i in range(a.shape[0]):
        out[i] = a[i] | b[i]
    return out


def word_count(length: int, word_bits: int = WORD_BITS) -> int:
    """Number of ``word_bits``-bit words covering ``length`` bit positions."""
    if word_bits <= 0 or word_bits > 64:
        raise FormatError("word_bits must be in (0, 64]")
    if length < 0:
        raise FormatError("length must be non-negative")
    return (length + word_bits - 1) // word_bits


def pack_indices(
    indices: np.ndarray, length: int, word_bits: int = WORD_BITS
) -> np.ndarray:
    """Pack sorted-or-unsorted unique set-bit positions into words.

    Args:
        indices: Unique positions in ``[0, length)``.
        length: Logical bit length of the packed vector.
        word_bits: Word width; 64 is the native substrate width, 32 mirrors
            the on-chip SRAM word layout.

    Returns:
        A ``uint64`` array of ``word_count(length, word_bits)`` words, bit
        ``i % word_bits`` of word ``i // word_bits`` set for each index.
    """
    words = np.zeros(word_count(length, word_bits), dtype=np.uint64)
    index_array = np.asarray(indices, dtype=np.int64)
    if index_array.size == 0:
        return words
    if index_array.min() < 0 or index_array.max() >= length:
        raise FormatError("bit index out of range for packed length")
    if index_array.size > 1 and np.any(np.diff(index_array) < 0):
        index_array = np.sort(index_array)
    if _use_compiled():
        return _pack_indices_kernel(index_array, words.size, word_bits)
    word_ids = index_array // word_bits
    bits = np.uint64(1) << (index_array % word_bits).astype(np.uint64)
    # Indices are sorted, so equal word ids form runs; OR each run in one
    # reduceat pass and scatter into the occupied words.
    starts = np.flatnonzero(
        np.concatenate(([True], word_ids[1:] != word_ids[:-1]))
    )
    words[word_ids[starts]] = np.bitwise_or.reduceat(bits, starts)
    return words


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean occupancy mask into native 64-bit words."""
    array = np.asarray(mask, dtype=bool)
    if array.ndim != 1:
        raise FormatError("pack_mask requires a 1-D mask")
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian fallback
        return pack_indices(np.flatnonzero(array), array.size)
    words = np.zeros(word_count(array.size), dtype=np.uint64)
    if array.size:
        packed_bytes = np.packbits(array, bitorder="little")
        words.view(np.uint8)[: packed_bytes.size] = packed_bytes
    return words


def unpack_words(words: np.ndarray, length: int) -> np.ndarray:
    """Expand native 64-bit packed words into a boolean mask of ``length``."""
    array = np.ascontiguousarray(words, dtype=np.uint64)
    if length < 0:
        raise FormatError("length must be non-negative")
    if array.size * WORD_BITS < length:
        raise FormatError("packed words do not cover the requested length")
    if length == 0:
        return np.zeros(0, dtype=bool)
    if _LITTLE_ENDIAN:
        return np.unpackbits(
            array.view(np.uint8), count=length, bitorder="little"
        ).astype(bool)
    shifts = np.arange(WORD_BITS, dtype=np.uint64)  # pragma: no cover
    bits = (array[:, None] >> shifts) & np.uint64(1)  # pragma: no cover
    return bits.reshape(-1)[:length].astype(bool)  # pragma: no cover


def indices_from_words(words: np.ndarray, length: int) -> np.ndarray:
    """Sorted set-bit positions of a packed word array."""
    return np.flatnonzero(unpack_words(words, length)).astype(np.int64)


_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word set-bit counts (the scanner's popcount tree)."""
    array = np.asarray(words, dtype=np.uint64)
    if _use_compiled():
        return _popcount_kernel(np.ascontiguousarray(array).reshape(-1)).reshape(
            array.shape
        )
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(array).astype(np.int64)
    if array.size == 0:  # pragma: no cover - numpy < 2.0 fallback
        return np.zeros(array.shape, dtype=np.int64)
    bits = np.unpackbits(  # pragma: no cover - numpy < 2.0 fallback
        np.ascontiguousarray(array).view(np.uint8)
    )
    counts = bits.reshape(array.size, 8 * array.itemsize).sum(  # pragma: no cover
        axis=1, dtype=np.int64
    )
    return counts.reshape(array.shape)  # pragma: no cover


def rank_words(words: np.ndarray) -> np.ndarray:
    """Set bits strictly before each word: an exclusive popcount prefix sum.

    ``rank_words(words)[w]`` is the compressed-array offset of word ``w``'s
    first set bit, exactly the per-word base the hardware prefix-sum network
    produces.
    """
    counts = popcount(words)
    ranks = np.empty(counts.size + 1, dtype=np.int64)
    ranks[0] = 0
    np.cumsum(counts, out=ranks[1:])
    return ranks[:-1]


def rank(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Set bits strictly before each position (the compressed-index lookup)."""
    array = np.asarray(words, dtype=np.uint64)
    pos = np.asarray(positions, dtype=np.int64)
    if pos.size and (pos.min() < 0 or pos.max() >= array.size * WORD_BITS):
        raise FormatError("rank position outside the packed words")
    if _use_compiled():
        return _rank_kernel(np.ascontiguousarray(array), pos)
    word_ids = pos // WORD_BITS
    offsets = (pos % WORD_BITS).astype(np.uint64)
    below = array[word_ids] & ((np.uint64(1) << offsets) - np.uint64(1))
    return rank_words(array)[word_ids] + popcount(below)


def select(words: np.ndarray, ranks: np.ndarray, length: int) -> np.ndarray:
    """Position of the ``k``-th set bit for each ``k`` in ``ranks``."""
    set_positions = indices_from_words(words, length)
    rank_array = np.asarray(ranks, dtype=np.int64)
    if rank_array.size and (
        rank_array.min() < 0 or rank_array.max() >= set_positions.size
    ):
        raise FormatError("select rank exceeds the number of set bits")
    return set_positions[rank_array]


def test_bits(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Boolean membership of each position in the packed word array."""
    array = np.asarray(words, dtype=np.uint64)
    pos = np.asarray(positions, dtype=np.int64)
    if pos.size == 0:
        return np.zeros(0, dtype=bool)
    if pos.min() < 0 or pos.max() >= array.size * WORD_BITS:
        raise FormatError("bit position outside the packed words")
    bits = (array[pos // WORD_BITS] >> (pos % WORD_BITS).astype(np.uint64)) & np.uint64(1)
    return bits.astype(bool)


def intersect_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-wise AND of two packed occupancy arrays."""
    left, right = _check_same_words(a, b)
    if _use_compiled():
        return _intersect_kernel(
            np.ascontiguousarray(left).reshape(-1),
            np.ascontiguousarray(right).reshape(-1),
        ).reshape(left.shape)
    return left & right


def union_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-wise OR of two packed occupancy arrays."""
    left, right = _check_same_words(a, b)
    if _use_compiled():
        return _union_kernel(
            np.ascontiguousarray(left).reshape(-1),
            np.ascontiguousarray(right).reshape(-1),
        ).reshape(left.shape)
    return left | right


def _check_same_words(a: np.ndarray, b: np.ndarray):
    left = np.asarray(a, dtype=np.uint64)
    right = np.asarray(b, dtype=np.uint64)
    if left.shape != right.shape:
        raise FormatError(
            f"packed word arrays differ in shape: {left.shape} vs {right.shape}"
        )
    return left, right
