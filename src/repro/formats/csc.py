"""Compressed sparse column (CSC) matrix format (Table 1).

CSC is dense along columns and compressed along rows within each column. It
enables skipping whole columns that would be multiplied by a zero input
element, which is how the CSC SpMV, BFS, and SSSP applications in Table 2
exploit input sparsity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_indices, check_pointers, check_shape
from .bitvector import BitVector


class CSCMatrix(SparseMatrixFormat):
    """A CSC matrix: column pointers, row indices, and values."""

    def __init__(
        self,
        shape: Tuple[int, int],
        col_pointers: np.ndarray,
        row_indices: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = check_shape(shape)
        values = np.asarray(values, dtype=np.float64)
        row_indices = check_indices(row_indices, self._shape[0], "row_indices")
        if values.shape != row_indices.shape:
            raise FormatError("values and row_indices must have matching length")
        self._col_pointers = check_pointers(
            col_pointers, self._shape[1], values.size, "col_pointers"
        )
        self._row_indices = row_indices
        self._values = values
        self._check_sorted_cols()

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build a CSC matrix from a dense 2-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        rows, cols = array.shape
        col_pointers = [0]
        row_indices = []
        values = []
        for c in range(cols):
            nonzero = np.nonzero(array[:, c])[0]
            row_indices.extend(nonzero.tolist())
            values.extend(array[nonzero, c].tolist())
            col_pointers.append(len(row_indices))
        return cls(
            (rows, cols),
            np.asarray(col_pointers, dtype=np.int64),
            np.asarray(row_indices, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )

    @classmethod
    def from_coo_arrays(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> "CSCMatrix":
        """Build a CSC matrix from unordered COO triplets (duplicates summed)."""
        shape = check_shape(shape)
        rows = check_indices(rows, shape[0], "rows")
        cols = check_indices(cols, shape[1], "cols")
        values = np.asarray(values, dtype=np.float64)
        if not (rows.size == cols.size == values.size):
            raise FormatError("rows, cols, and values must have matching length")
        if rows.size:
            keys = cols * shape[0] + rows
            # Canonical triplets (already (col, row)-sorted, duplicate-free)
            # skip the sort-and-reduce entirely; copy so the matrix never
            # aliases the caller's arrays.
            if keys.size < 2 or np.all(keys[1:] > keys[:-1]):
                rows, cols, values = rows.copy(), cols.copy(), values.copy()
            else:
                order = np.lexsort((rows, cols))
                rows, cols, values = rows[order], cols[order], values[order]
                keys = keys[order]
                unique_keys, inverse = np.unique(keys, return_inverse=True)
                summed = np.zeros(unique_keys.size, dtype=np.float64)
                np.add.at(summed, inverse, values)
                cols = (unique_keys // shape[0]).astype(np.int64)
                rows = (unique_keys % shape[0]).astype(np.int64)
                values = summed
        col_pointers = np.zeros(shape[1] + 1, dtype=np.int64)
        np.add.at(col_pointers, cols + 1, 1)
        col_pointers = np.cumsum(col_pointers)
        return cls(shape, col_pointers, rows, values)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def col_pointers(self) -> np.ndarray:
        """Column pointer array of length ``cols + 1``."""
        return self._col_pointers.copy()

    @property
    def row_indices(self) -> np.ndarray:
        """Row indices of stored entries, column-major order."""
        return self._row_indices.copy()

    @property
    def values(self) -> np.ndarray:
        """Values of stored entries, column-major order."""
        return self._values.copy()

    def col_length(self, col: int) -> int:
        """Number of stored entries in ``col``."""
        self._check_col(col)
        return int(self._col_pointers[col + 1] - self._col_pointers[col])

    def col_slice(self, col: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` for ``col``."""
        self._check_col(col)
        start, end = self._col_pointers[col], self._col_pointers[col + 1]
        return self._row_indices[start:end].copy(), self._values[start:end].copy()

    def col_bitvector(self, col: int) -> BitVector:
        """The column's occupancy and values as a bit-vector of width ``rows``."""
        rows, values = self.col_slice(col)
        return BitVector(self._shape[0], rows, values)

    def col_lengths(self) -> np.ndarray:
        """Stored entries per column."""
        return np.diff(self._col_pointers)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        for col in range(self._shape[1]):
            start, end = self._col_pointers[col], self._col_pointers[col + 1]
            dense[self._row_indices[start:end], col] = self._values[start:end]
        return dense

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries."""
        cols = np.repeat(
            np.arange(self._shape[1], dtype=np.int64), np.diff(self._col_pointers)
        )
        return self._row_indices.copy(), cols, self._values.copy()

    def storage_bytes(self) -> int:
        """Bytes to store pointers, indices, and values at 32 bits each."""
        return 4 * (self._col_pointers.size + self._row_indices.size + self._values.size)

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self._shape}, nnz={self.nnz})"

    def _check_col(self, col: int) -> None:
        if col < 0 or col >= self._shape[1]:
            raise FormatError(f"col {col} out of range for shape {self._shape}")

    def _check_sorted_cols(self) -> None:
        if self._row_indices.size < 2:
            return
        # Row indices must be strictly increasing within each column; a
        # non-increasing adjacent pair is only legal exactly at a column start.
        violations = self._row_indices[1:] <= self._row_indices[:-1]
        boundaries = self._col_pointers[1:-1]
        interior = boundaries[(boundaries > 0) & (boundaries < self._row_indices.size)]
        violations[interior - 1] = False
        bad = np.flatnonzero(violations)
        if bad.size:
            col = int(np.searchsorted(self._col_pointers, bad[0], side="right")) - 1
            raise FormatError(
                f"column {col} row indices must be strictly increasing"
            )
