"""Block compressed sparse row (BCSR) and banded matrix formats (Table 1).

BCSR stores small dense ``k x k`` blocks instead of individual non-zeros; it
trades some explicit zeros for regular, vectorizable block structure. The
banded format stores a subset of diagonals densely, matching matrices from
stencil discretizations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_shape


class BCSRMatrix(SparseMatrixFormat):
    """A block-CSR matrix with square ``block_size`` x ``block_size`` blocks."""

    def __init__(
        self,
        shape: Tuple[int, int],
        block_size: int,
        block_row_pointers: np.ndarray,
        block_col_indices: np.ndarray,
        blocks: np.ndarray,
    ):
        self._shape = check_shape(shape)
        if block_size <= 0:
            raise FormatError("block_size must be positive")
        if self._shape[0] % block_size or self._shape[1] % block_size:
            raise FormatError("matrix dimensions must be multiples of block_size")
        self._block_size = int(block_size)
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[1:] != (block_size, block_size):
            raise FormatError("blocks must have shape (nblocks, block_size, block_size)")
        block_rows = self._shape[0] // block_size
        block_col_indices = np.asarray(block_col_indices, dtype=np.int64)
        if block_col_indices.size != blocks.shape[0]:
            raise FormatError("block_col_indices must match number of blocks")
        block_row_pointers = np.asarray(block_row_pointers, dtype=np.int64)
        if block_row_pointers.size != block_rows + 1:
            raise FormatError("block_row_pointers must have block_rows + 1 entries")
        if block_row_pointers[0] != 0 or block_row_pointers[-1] != blocks.shape[0]:
            raise FormatError("block_row_pointers must span all blocks")
        if np.any(np.diff(block_row_pointers) < 0):
            raise FormatError("block_row_pointers must be non-decreasing")
        if block_col_indices.size and (
            block_col_indices.min() < 0
            or block_col_indices.max() >= self._shape[1] // block_size
        ):
            raise FormatError("block_col_indices out of range")
        self._block_row_pointers = block_row_pointers
        self._block_col_indices = block_col_indices
        self._blocks = blocks

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int = 4) -> "BCSRMatrix":
        """Build a BCSR matrix keeping every block containing any non-zero."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        rows, cols = array.shape
        if rows % block_size or cols % block_size:
            raise FormatError("matrix dimensions must be multiples of block_size")
        block_rows, block_cols = rows // block_size, cols // block_size
        # One reshape exposes every block as tiled[br, bc]; occupancy and
        # extraction are then pure fancy indexing.
        tiled = array.reshape(block_rows, block_size, block_cols, block_size)
        tiled = tiled.transpose(0, 2, 1, 3)
        occupied = np.any(tiled, axis=(2, 3))
        block_r, block_c = np.nonzero(occupied)
        pointers = np.zeros(block_rows + 1, dtype=np.int64)
        np.add.at(pointers, block_r + 1, 1)
        return cls(
            (rows, cols),
            block_size,
            np.cumsum(pointers),
            block_c.astype(np.int64),
            tiled[block_r, block_c].copy(),
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def block_size(self) -> int:
        """Edge length of each stored dense block."""
        return self._block_size

    @property
    def block_count(self) -> int:
        """Number of stored blocks."""
        return int(self._blocks.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._blocks))

    @property
    def stored_elements(self) -> int:
        """Total elements stored, including explicit zeros inside blocks."""
        return self.block_count * self._block_size * self._block_size

    def block_fill_ratio(self) -> float:
        """Fraction of stored block elements that are actually non-zero."""
        stored = self.stored_elements
        return self.nnz / stored if stored else 0.0

    def _block_rows_of_slots(self) -> np.ndarray:
        """Block-row id of every stored block slot."""
        return np.repeat(
            np.arange(self._block_row_pointers.size - 1, dtype=np.int64),
            np.diff(self._block_row_pointers),
        )

    def to_dense(self) -> np.ndarray:
        block_rows = self._shape[0] // self._block_size
        block_cols = self._shape[1] // self._block_size
        tiled = np.zeros(
            (block_rows, block_cols, self._block_size, self._block_size),
            dtype=np.float64,
        )
        tiled[self._block_rows_of_slots(), self._block_col_indices] = self._blocks
        return tiled.transpose(0, 2, 1, 3).reshape(self._shape)

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays, ``(row, col)``-sorted."""
        slots, within_r, within_c = np.nonzero(self._blocks)
        rows = self._block_rows_of_slots()[slots] * self._block_size + within_r
        cols = self._block_col_indices[slots] * self._block_size + within_c
        values = self._blocks[slots, within_r, within_c]
        order = np.lexsort((cols, rows))
        return rows[order], cols[order], values[order]

    def storage_bytes(self) -> int:
        """Bytes for pointers, block column indices, and dense block payloads."""
        return 4 * (
            self._block_row_pointers.size
            + self._block_col_indices.size
            + self.stored_elements
        )

    def __repr__(self) -> str:
        return (
            f"BCSRMatrix(shape={self._shape}, block_size={self._block_size}, "
            f"blocks={self.block_count}, nnz={self.nnz})"
        )


class BandedMatrix(SparseMatrixFormat):
    """A matrix stored densely along a subset of diagonals.

    Diagonal ``k`` holds entries ``A[i, i + k]``; ``k = 0`` is the main
    diagonal, positive offsets are super-diagonals and negative offsets are
    sub-diagonals.
    """

    def __init__(self, shape: Tuple[int, int], diagonals: Dict[int, np.ndarray]):
        self._shape = check_shape(shape)
        rows, cols = self._shape
        self._diagonals: Dict[int, np.ndarray] = {}
        for offset, values in sorted(diagonals.items()):
            expected = self._diagonal_length(offset)
            values = np.asarray(values, dtype=np.float64)
            if values.ndim != 1 or values.size != expected:
                raise FormatError(
                    f"diagonal {offset} must have {expected} entries, got {values.size}"
                )
            if not -rows < offset < cols:
                raise FormatError(f"diagonal offset {offset} outside matrix")
            self._diagonals[int(offset)] = values.copy()

    @classmethod
    def from_dense(cls, dense: np.ndarray, offsets: List[int]) -> "BandedMatrix":
        """Extract the given diagonals from a dense matrix."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        diagonals = {offset: np.diagonal(array, offset).copy() for offset in offsets}
        return cls(array.shape, diagonals)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def offsets(self) -> List[int]:
        """Stored diagonal offsets in ascending order."""
        return sorted(self._diagonals)

    @property
    def nnz(self) -> int:
        return int(sum(np.count_nonzero(v) for v in self._diagonals.values()))

    @property
    def stored_elements(self) -> int:
        """Total stored elements including explicit zeros on the diagonals."""
        return int(sum(v.size for v in self._diagonals.values()))

    def diagonal(self, offset: int) -> np.ndarray:
        """Return the stored values along ``offset`` (raises if absent)."""
        if offset not in self._diagonals:
            raise FormatError(f"diagonal {offset} is not stored")
        return self._diagonals[offset].copy()

    def _diagonal_coords(self, offset: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row/column coordinates of a stored diagonal's entries."""
        steps = np.arange(self._diagonals[offset].size, dtype=np.int64)
        if offset >= 0:
            return steps, steps + offset
        return steps - offset, steps

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        for offset, values in self._diagonals.items():
            rows, cols = self._diagonal_coords(offset)
            dense[rows, cols] = values
        return dense

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays, ``(row, col)``-sorted."""
        if not self._diagonals:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        row_parts = []
        col_parts = []
        value_parts = []
        for offset, values in self._diagonals.items():
            keep = values != 0.0
            rows, cols = self._diagonal_coords(offset)
            row_parts.append(rows[keep])
            col_parts.append(cols[keep])
            value_parts.append(values[keep])
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        values = np.concatenate(value_parts)
        order = np.lexsort((cols, rows))
        return rows[order], cols[order], values[order]

    def storage_bytes(self) -> int:
        """Bytes to store the diagonal payloads plus one offset per diagonal."""
        return 4 * (self.stored_elements + len(self._diagonals))

    def __repr__(self) -> str:
        return (
            f"BandedMatrix(shape={self._shape}, diagonals={len(self._diagonals)}, "
            f"nnz={self.nnz})"
        )

    def _diagonal_length(self, offset: int) -> int:
        rows, cols = self._shape
        if offset >= 0:
            return max(0, min(rows, cols - offset))
        return max(0, min(rows + offset, cols))
