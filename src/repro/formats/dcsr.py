"""Doubly-compressed sparse row/column (DCSR / DCSC) formats (Table 1).

DCSR compresses the row dimension as well: only rows containing at least one
non-zero are stored, each with its own compressed column list. DCSC is the
column-major mirror. These formats matter for hypersparse matrices where
most rows (or columns) are entirely empty.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_indices, check_pointers, check_shape
from .csr import CSRMatrix


class DCSRMatrix(SparseMatrixFormat):
    """A doubly-compressed sparse row matrix.

    Stores the indices of non-empty rows, a pointer array over those rows,
    and compressed column/value arrays.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        row_ids: np.ndarray,
        row_pointers: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = check_shape(shape)
        self._row_ids = check_indices(row_ids, self._shape[0], "row_ids")
        if self._row_ids.size > 1 and np.any(np.diff(self._row_ids) <= 0):
            raise FormatError("row_ids must be strictly increasing")
        values = np.asarray(values, dtype=np.float64)
        col_indices = check_indices(col_indices, self._shape[1], "col_indices")
        if values.shape != col_indices.shape:
            raise FormatError("values and col_indices must have matching length")
        self._row_pointers = check_pointers(
            row_pointers, self._row_ids.size, values.size, "row_pointers"
        )
        if np.any(np.diff(self._row_pointers) == 0):
            raise FormatError("DCSR stored rows must be non-empty")
        self._col_indices = col_indices
        self._values = values

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DCSRMatrix":
        """Build a DCSR matrix from a dense 2-D array, dropping zeros."""
        return cls.from_csr(CSRMatrix.from_dense(dense))

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DCSRMatrix":
        """Build a DCSR matrix by dropping empty rows from a CSR matrix."""
        lengths = csr.row_lengths()
        row_ids = np.nonzero(lengths)[0].astype(np.int64)
        row_pointers = np.concatenate(
            ([0], np.cumsum(lengths[row_ids]))
        ).astype(np.int64)
        # Empty rows contribute no entries, so the compressed column/value
        # arrays carry over verbatim; only the pointer array re-indexes.
        return cls(csr.shape, row_ids, row_pointers, csr.col_indices, csr.values)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def stored_rows(self) -> int:
        """Number of non-empty rows actually stored."""
        return int(self._row_ids.size)

    @property
    def row_ids(self) -> np.ndarray:
        """Indices of the stored (non-empty) rows."""
        return self._row_ids.copy()

    def row_slice(self, stored_index: int) -> Tuple[int, np.ndarray, np.ndarray]:
        """Return ``(row_id, col_indices, values)`` of stored row ``stored_index``."""
        if stored_index < 0 or stored_index >= self.stored_rows:
            raise FormatError(f"stored row {stored_index} out of range")
        start = self._row_pointers[stored_index]
        end = self._row_pointers[stored_index + 1]
        return (
            int(self._row_ids[stored_index]),
            self._col_indices[start:end].copy(),
            self._values[start:end].copy(),
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        rows, cols, values = self.to_coo_arrays()
        dense[rows, cols] = values
        return dense

    def to_csr(self) -> CSRMatrix:
        """Expand back to plain CSR (reinstating empty rows)."""
        return CSRMatrix.from_dense(self.to_dense())

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries."""
        rows = np.repeat(self._row_ids, np.diff(self._row_pointers))
        return rows, self._col_indices.copy(), self._values.copy()

    def storage_bytes(self) -> int:
        """Bytes for row ids, pointers, column indices, and values (32-bit)."""
        return 4 * (
            self._row_ids.size
            + self._row_pointers.size
            + self._col_indices.size
            + self._values.size
        )

    def __repr__(self) -> str:
        return (
            f"DCSRMatrix(shape={self._shape}, stored_rows={self.stored_rows}, "
            f"nnz={self.nnz})"
        )


class DCSCMatrix(SparseMatrixFormat):
    """A doubly-compressed sparse column matrix (column-major mirror of DCSR)."""

    def __init__(self, transpose_dcsr: DCSRMatrix, shape: Tuple[int, int]):
        self._shape = check_shape(shape)
        if transpose_dcsr.shape != (self._shape[1], self._shape[0]):
            raise FormatError("transpose_dcsr shape must be the transpose of shape")
        self._transposed = transpose_dcsr

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DCSCMatrix":
        """Build a DCSC matrix from a dense 2-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        return cls(DCSRMatrix.from_dense(array.T), array.shape)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._transposed.nnz

    @property
    def stored_cols(self) -> int:
        """Number of non-empty columns actually stored."""
        return self._transposed.stored_rows

    @property
    def col_ids(self) -> np.ndarray:
        """Indices of the stored (non-empty) columns."""
        return self._transposed.row_ids

    def col_slice(self, stored_index: int) -> Tuple[int, np.ndarray, np.ndarray]:
        """Return ``(col_id, row_indices, values)`` of stored column ``stored_index``."""
        return self._transposed.row_slice(stored_index)

    def to_dense(self) -> np.ndarray:
        return self._transposed.to_dense().T

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays, ordered by ``(col, row)``."""
        cols, rows, values = self._transposed.to_coo_arrays()
        return rows, cols, values

    def storage_bytes(self) -> int:
        """Bytes for column ids, pointers, row indices, and values (32-bit)."""
        return self._transposed.storage_bytes()

    def __repr__(self) -> str:
        return (
            f"DCSCMatrix(shape={self._shape}, stored_cols={self.stored_cols}, "
            f"nnz={self.nnz})"
        )
