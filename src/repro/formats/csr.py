"""Compressed sparse row (CSR) matrix format (Table 1).

CSR is dense along rows (one entry per row in the pointer array) and
compressed along columns within each row. It is the input format for the
CSR SpMV, PageRank-pull, M+M, and SpMSpM applications in Table 2.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_indices, check_pointers, check_shape
from .bitvector import BitVector


class CSRMatrix(SparseMatrixFormat):
    """A CSR matrix: row pointers, column indices, and values."""

    def __init__(
        self,
        shape: Tuple[int, int],
        row_pointers: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = check_shape(shape)
        values = np.asarray(values, dtype=np.float64)
        col_indices = check_indices(col_indices, self._shape[1], "col_indices")
        if values.shape != col_indices.shape:
            raise FormatError("values and col_indices must have matching length")
        self._row_pointers = check_pointers(
            row_pointers, self._shape[0], values.size, "row_pointers"
        )
        self._col_indices = col_indices
        self._values = values
        self._check_sorted_rows()

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        rows, cols = array.shape
        row_pointers = [0]
        col_indices = []
        values = []
        for r in range(rows):
            nonzero = np.nonzero(array[r])[0]
            col_indices.extend(nonzero.tolist())
            values.extend(array[r, nonzero].tolist())
            row_pointers.append(len(col_indices))
        return cls(
            (rows, cols),
            np.asarray(row_pointers, dtype=np.int64),
            np.asarray(col_indices, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )

    @classmethod
    def from_coo_arrays(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> "CSRMatrix":
        """Build a CSR matrix from unordered COO triplets (duplicates summed)."""
        shape = check_shape(shape)
        rows = check_indices(rows, shape[0], "rows")
        cols = check_indices(cols, shape[1], "cols")
        values = np.asarray(values, dtype=np.float64)
        if not (rows.size == cols.size == values.size):
            raise FormatError("rows, cols, and values must have matching length")
        if rows.size:
            keys = rows * shape[1] + cols
            # Canonical triplets (already (row, col)-sorted, duplicate-free,
            # e.g. from COOMatrix) skip the sort-and-reduce entirely; copy
            # so the matrix never aliases the caller's arrays.
            if keys.size < 2 or np.all(keys[1:] > keys[:-1]):
                rows, cols, values = rows.copy(), cols.copy(), values.copy()
            else:
                # Sum duplicates by sorting on (row, col) and segment-reducing.
                order = np.lexsort((cols, rows))
                rows, cols, values = rows[order], cols[order], values[order]
                keys = keys[order]
                unique_keys, inverse = np.unique(keys, return_inverse=True)
                summed = np.zeros(unique_keys.size, dtype=np.float64)
                np.add.at(summed, inverse, values)
                rows = (unique_keys // shape[1]).astype(np.int64)
                cols = (unique_keys % shape[1]).astype(np.int64)
                values = summed
        row_pointers = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(row_pointers, rows + 1, 1)
        row_pointers = np.cumsum(row_pointers)
        return cls(shape, row_pointers, cols, values)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def row_pointers(self) -> np.ndarray:
        """Row pointer array of length ``rows + 1``."""
        return self._row_pointers.copy()

    @property
    def col_indices(self) -> np.ndarray:
        """Column indices of stored entries, row-major order."""
        return self._col_indices.copy()

    @property
    def values(self) -> np.ndarray:
        """Values of stored entries, row-major order."""
        return self._values.copy()

    def row_length(self, row: int) -> int:
        """Number of stored entries in ``row``."""
        self._check_row(row)
        return int(self._row_pointers[row + 1] - self._row_pointers[row])

    def row_slice(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(col_indices, values)`` for ``row``."""
        self._check_row(row)
        start, end = self._row_pointers[row], self._row_pointers[row + 1]
        return self._col_indices[start:end].copy(), self._values[start:end].copy()

    def row_bitvector(self, row: int) -> BitVector:
        """The row's occupancy and values as a bit-vector of width ``cols``."""
        cols, values = self.row_slice(row)
        return BitVector(self._shape[1], cols, values)

    def row_lengths(self) -> np.ndarray:
        """Stored entries per row, for load-balance / imbalance analysis."""
        return np.diff(self._row_pointers)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        for row in range(self._shape[0]):
            start, end = self._row_pointers[row], self._row_pointers[row + 1]
            dense[row, self._col_indices[start:end]] = self._values[start:end]
        return dense

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries."""
        rows = np.repeat(
            np.arange(self._shape[0], dtype=np.int64), np.diff(self._row_pointers)
        )
        return rows, self._col_indices.copy(), self._values.copy()

    def transpose_to_csr(self) -> "CSRMatrix":
        """Return the transpose, also in CSR form."""
        rows, cols, values = self.to_coo_arrays()
        return CSRMatrix.from_coo_arrays((self._shape[1], self._shape[0]), cols, rows, values)

    def storage_bytes(self) -> int:
        """Bytes to store pointers (32-bit), indices (32-bit), and values."""
        return 4 * (self._row_pointers.size + self._col_indices.size + self._values.size)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self._shape}, nnz={self.nnz})"

    def _check_row(self, row: int) -> None:
        if row < 0 or row >= self._shape[0]:
            raise FormatError(f"row {row} out of range for shape {self._shape}")

    def _check_sorted_rows(self) -> None:
        if self._col_indices.size < 2:
            return
        # Column indices must be strictly increasing within each row; a
        # non-increasing adjacent pair is only legal exactly at a row start.
        violations = self._col_indices[1:] <= self._col_indices[:-1]
        boundaries = self._row_pointers[1:-1]
        interior = boundaries[(boundaries > 0) & (boundaries < self._col_indices.size)]
        violations[interior - 1] = False
        bad = np.flatnonzero(violations)
        if bad.size:
            row = int(np.searchsorted(self._row_pointers, bad[0], side="right")) - 1
            raise FormatError(
                f"row {row} column indices must be strictly increasing"
            )
