"""Two-level bit-tree sparse vector format (Section 2.3, Figure 1).

Bit-vector sparsity breaks down for extremely sparse vectors (density well
below 1%): most scanned bits are zero, so vectorization gains nothing. The
bit-tree adds a top-level bit-vector whose set bits each point to a
fixed-size second-level bit-vector tile. A two-level tree with 512-bit tiles
can encode 262,144 positions in 512 top-level bits.

Streaming iteration over two bit-trees uses a two-pass algorithm: the first
pass intersects/unions the top-level vectors to realign the second-level
tiles (dropping unmatched tiles for intersection, inserting zero tiles for
union), then nested sparse-sparse loops process the aligned tiles.

The tree's occupancy is stored as one dense ``(tiles, words_per_tile)``
``uint64`` matrix over the packed-word substrate
(:mod:`repro.formats.packed`): :meth:`BitTree.from_dense` and
:meth:`BitTree.from_indices` pack every tile in a single vectorized pass,
tile occupancy is a per-row popcount, and :func:`align_trees` realigns two
trees with array operations instead of Python set arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import FormatError
from . import packed
from .bitvector import BitVector


class BitTree:
    """A two-level bit-tree over a logical vector of ``length`` positions."""

    def __init__(self, length: int, tile_bits: int = 512):
        if length < 0:
            raise FormatError("bit-tree length must be non-negative")
        if tile_bits <= 0:
            raise FormatError("tile_bits must be positive")
        self._length = int(length)
        self._tile_bits = int(tile_bits)
        self._words_per_tile = packed.word_count(self._tile_bits)
        self._indices = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)
        self._words = np.zeros(
            (self.tile_count, self._words_per_tile), dtype=np.uint64
        )
        self._tile_cache: Dict[int, BitVector] = {}

    @classmethod
    def from_dense(cls, dense: np.ndarray, tile_bits: int = 512) -> "BitTree":
        """Build a bit-tree from a dense 1-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 1:
            raise FormatError("from_dense requires a 1-D array")
        indices = np.nonzero(array)[0].astype(np.int64)
        tree = cls(array.shape[0], tile_bits)
        tree._load_sorted(indices, array[indices])
        return tree

    @classmethod
    def from_indices(
        cls, length: int, indices: np.ndarray, values: np.ndarray, tile_bits: int = 512
    ) -> "BitTree":
        """Build a bit-tree from index/value arrays in one vectorized pass.

        Indices may be unsorted; duplicate indices keep the last value, and
        zero values are rejected, matching element-at-a-time :meth:`set`
        semantics.
        """
        tree = cls(length, tile_bits)
        index_array = np.asarray(indices, dtype=np.int64).reshape(-1)
        value_array = np.asarray(values, dtype=np.float64).reshape(-1)
        if index_array.size != value_array.size:
            raise FormatError("bit-tree indices and values must match in length")
        if index_array.size == 0:
            return tree
        if index_array.min() < 0 or index_array.max() >= tree._length:
            bad = index_array[(index_array < 0) | (index_array >= tree._length)][0]
            raise FormatError(f"index {int(bad)} out of range")
        if np.any(value_array == 0.0):
            raise FormatError("bit-tree entries must be non-zero")
        order = np.argsort(index_array, kind="stable")
        sorted_indices = index_array[order]
        sorted_values = value_array[order]
        # Stable sort keeps duplicates in input order; the last entry of
        # each equal run wins, like repeated set() calls.
        keep = np.concatenate((sorted_indices[1:] != sorted_indices[:-1], [True]))
        tree._load_sorted(sorted_indices[keep], sorted_values[keep])
        return tree

    def _load_sorted(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Install pre-validated sorted unique indices and pack all tiles."""
        self._indices = indices
        self._values = values
        if indices.size:
            # A position's bit in the flattened (tiles x words) matrix:
            # tile row times the padded tile width, plus the in-tile offset.
            flat_bits = (
                (indices // self._tile_bits) * (self._words_per_tile * packed.WORD_BITS)
                + indices % self._tile_bits
            )
            flat_words = packed.pack_indices(
                flat_bits, self.tile_count * self._words_per_tile * packed.WORD_BITS
            )
            self._words = flat_words.reshape(self.tile_count, self._words_per_tile)
        else:
            self._words = np.zeros(
                (self.tile_count, self._words_per_tile), dtype=np.uint64
            )
        self._tile_cache = {}

    @property
    def length(self) -> int:
        """Logical number of positions."""
        return self._length

    @property
    def tile_bits(self) -> int:
        """Positions covered by each second-level tile."""
        return self._tile_bits

    @property
    def tile_count(self) -> int:
        """Number of tile slots covering the whole vector."""
        return (self._length + self._tile_bits - 1) // self._tile_bits

    @property
    def nnz(self) -> int:
        """Number of stored non-zero positions."""
        return int(self._indices.size)

    @property
    def words(self) -> np.ndarray:
        """The dense ``(tiles, words_per_tile)`` packed occupancy matrix."""
        return self._words.copy()

    @property
    def occupied_tiles(self) -> int:
        """Number of second-level tiles with at least one set bit."""
        return int(self.occupied_tile_ids().size)

    def occupied_tile_ids(self) -> np.ndarray:
        """Sorted ids of tiles with at least one set bit."""
        if self._indices.size == 0:
            return np.empty(0, dtype=np.int64)
        tile_ids = self._indices // self._tile_bits
        keep = np.concatenate(([True], tile_ids[1:] != tile_ids[:-1]))
        return tile_ids[keep]

    def tile_counts(self) -> np.ndarray:
        """Set bits per occupied tile, aligned with :meth:`occupied_tile_ids`."""
        if self._indices.size == 0:
            return np.empty(0, dtype=np.int64)
        tile_ids = self._indices // self._tile_bits
        starts = np.flatnonzero(
            np.concatenate(([True], tile_ids[1:] != tile_ids[:-1]))
        )
        return np.diff(np.concatenate((starts, [tile_ids.size])))

    def set(self, index: int, value: float) -> None:
        """Set position ``index`` to ``value`` (value must be non-zero)."""
        if index < 0 or index >= self._length:
            raise FormatError(f"index {index} out of range")
        if value == 0.0:
            raise FormatError("bit-tree entries must be non-zero")
        slot = int(np.searchsorted(self._indices, index))
        if slot < self._indices.size and self._indices[slot] == index:
            self._values = self._values.copy()
            self._values[slot] = value
        else:
            self._indices = np.insert(self._indices, slot, index)
            self._values = np.insert(self._values, slot, value)
            tile_id = index // self._tile_bits
            self._words = self._words.copy()
            self._words[tile_id, (index % self._tile_bits) // packed.WORD_BITS] |= (
                np.uint64(1) << np.uint64((index % self._tile_bits) % packed.WORD_BITS)
            )
        self._tile_cache = {}

    def top_level(self) -> BitVector:
        """The top-level bit-vector: one bit per occupied tile slot."""
        return BitVector._from_trusted(self.tile_count, self.occupied_tile_ids())

    def tile_length(self, tile_id: int) -> int:
        """Logical positions covered by tile ``tile_id``."""
        if tile_id < 0 or tile_id >= self.tile_count:
            raise FormatError(f"tile {tile_id} out of range")
        return min(self._tile_bits, self._length - tile_id * self._tile_bits)

    def tile(self, tile_id: int) -> BitVector:
        """Return the second-level tile ``tile_id`` (empty if unoccupied)."""
        cached = self._tile_cache.get(tile_id)
        if cached is not None:
            return cached
        tile_len = self.tile_length(tile_id)
        base = tile_id * self._tile_bits
        start = int(np.searchsorted(self._indices, base))
        end = int(np.searchsorted(self._indices, base + self._tile_bits))
        vector = BitVector._from_trusted(
            tile_len,
            self._indices[start:end] - base,
            self._values[start:end],
            self._words[tile_id, : packed.word_count(tile_len)],
        )
        self._tile_cache[tile_id] = vector
        return vector

    def iter_tiles(self) -> Iterator[Tuple[int, BitVector]]:
        """Yield ``(tile_id, tile)`` for occupied tiles in ascending order."""
        for tile_id in self.occupied_tile_ids().tolist():
            yield tile_id, self.tile(tile_id)

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        dense = np.zeros(self._length, dtype=np.float64)
        dense[self._indices] = self._values
        return dense

    def to_bitvector(self) -> BitVector:
        """Flatten the tree into a single (long) bit-vector."""
        return BitVector._from_trusted(
            self._length, self._indices.copy(), self._values.copy()
        )

    def indices(self) -> np.ndarray:
        """All stored positions in ascending order."""
        return self._indices.copy()

    def values(self) -> np.ndarray:
        """Stored values aligned with :meth:`indices`."""
        return self._values.copy()

    def storage_bits(self) -> int:
        """Bits to store the top-level vector, occupied tiles, and values."""
        top = self.tile_count
        occupied = self.occupied_tile_ids()
        tiles = int(
            np.minimum(
                self._tile_bits, self._length - occupied * self._tile_bits
            ).sum()
        )
        values = 32 * self.nnz
        return top + tiles + values

    def __repr__(self) -> str:
        return (
            f"BitTree(length={self._length}, tile_bits={self._tile_bits}, "
            f"tiles={self.occupied_tiles}, nnz={self.nnz})"
        )


def align_trees(
    left: BitTree, right: BitTree, mode: str = "union"
) -> List[Tuple[int, BitVector, BitVector]]:
    """Realign two bit-trees' second-level tiles (the first streaming pass).

    The top-level combination is pure array arithmetic over the trees'
    occupied-tile id arrays; only the selected tiles are materialized.

    Args:
        left: First operand.
        right: Second operand.
        mode: ``"union"`` keeps tiles occupied in either tree, inserting
            zero tiles for the missing side; ``"intersect"`` keeps only tiles
            occupied in both trees.

    Returns:
        A list of ``(tile_id, left_tile, right_tile)`` triples ordered by
        tile id, ready for nested sparse-sparse iteration.
    """
    if left.length != right.length or left.tile_bits != right.tile_bits:
        raise FormatError("bit-trees must have matching length and tile size")
    if mode not in ("union", "intersect"):
        raise FormatError(f"unknown alignment mode {mode!r}")
    left_ids = left.occupied_tile_ids()
    right_ids = right.occupied_tile_ids()
    if mode == "union":
        selected = np.union1d(left_ids, right_ids)
    else:
        selected = np.intersect1d(left_ids, right_ids, assume_unique=True)
    return [
        (tile_id, left.tile(tile_id), right.tile(tile_id))
        for tile_id in selected.tolist()
    ]
