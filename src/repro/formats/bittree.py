"""Two-level bit-tree sparse vector format (Section 2.3, Figure 1).

Bit-vector sparsity breaks down for extremely sparse vectors (density well
below 1%): most scanned bits are zero, so vectorization gains nothing. The
bit-tree adds a top-level bit-vector whose set bits each point to a
fixed-size second-level bit-vector tile. A two-level tree with 512-bit tiles
can encode 262,144 positions in 512 top-level bits.

Streaming iteration over two bit-trees uses a two-pass algorithm: the first
pass intersects/unions the top-level vectors to realign the second-level
tiles (dropping unmatched tiles for intersection, inserting zero tiles for
union), then nested sparse-sparse loops process the aligned tiles.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import FormatError
from .bitvector import BitVector


class BitTree:
    """A two-level bit-tree over a logical vector of ``length`` positions."""

    def __init__(self, length: int, tile_bits: int = 512):
        if length < 0:
            raise FormatError("bit-tree length must be non-negative")
        if tile_bits <= 0:
            raise FormatError("tile_bits must be positive")
        self._length = int(length)
        self._tile_bits = int(tile_bits)
        self._tiles: Dict[int, BitVector] = {}

    @classmethod
    def from_dense(cls, dense: np.ndarray, tile_bits: int = 512) -> "BitTree":
        """Build a bit-tree from a dense 1-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 1:
            raise FormatError("from_dense requires a 1-D array")
        tree = cls(array.shape[0], tile_bits)
        for index in np.nonzero(array)[0].tolist():
            tree.set(index, float(array[index]))
        return tree

    @classmethod
    def from_indices(
        cls, length: int, indices: np.ndarray, values: np.ndarray, tile_bits: int = 512
    ) -> "BitTree":
        """Build a bit-tree from sorted index/value arrays."""
        tree = cls(length, tile_bits)
        for index, value in zip(np.asarray(indices).tolist(), np.asarray(values).tolist()):
            tree.set(int(index), float(value))
        return tree

    @property
    def length(self) -> int:
        """Logical number of positions."""
        return self._length

    @property
    def tile_bits(self) -> int:
        """Positions covered by each second-level tile."""
        return self._tile_bits

    @property
    def tile_count(self) -> int:
        """Number of tile slots covering the whole vector."""
        return (self._length + self._tile_bits - 1) // self._tile_bits

    @property
    def nnz(self) -> int:
        """Number of stored non-zero positions."""
        return sum(tile.nnz for tile in self._tiles.values())

    @property
    def occupied_tiles(self) -> int:
        """Number of second-level tiles with at least one set bit."""
        return len(self._tiles)

    def set(self, index: int, value: float) -> None:
        """Set position ``index`` to ``value`` (value must be non-zero)."""
        if index < 0 or index >= self._length:
            raise FormatError(f"index {index} out of range")
        if value == 0.0:
            raise FormatError("bit-tree entries must be non-zero")
        tile_id = index // self._tile_bits
        offset = index % self._tile_bits
        tile = self._tiles.get(tile_id)
        tile_len = min(self._tile_bits, self._length - tile_id * self._tile_bits)
        if tile is None:
            self._tiles[tile_id] = BitVector(tile_len, [offset], [value])
            return
        dense = tile.to_dense()
        dense[offset] = value
        self._tiles[tile_id] = BitVector.from_dense(dense)

    def top_level(self) -> BitVector:
        """The top-level bit-vector: one bit per occupied tile slot."""
        return BitVector(self.tile_count, sorted(self._tiles))

    def tile(self, tile_id: int) -> BitVector:
        """Return the second-level tile ``tile_id`` (empty if unoccupied)."""
        if tile_id < 0 or tile_id >= self.tile_count:
            raise FormatError(f"tile {tile_id} out of range")
        existing = self._tiles.get(tile_id)
        if existing is not None:
            return existing
        tile_len = min(self._tile_bits, self._length - tile_id * self._tile_bits)
        return BitVector.empty(tile_len)

    def iter_tiles(self) -> Iterator[Tuple[int, BitVector]]:
        """Yield ``(tile_id, tile)`` for occupied tiles in ascending order."""
        for tile_id in sorted(self._tiles):
            yield tile_id, self._tiles[tile_id]

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        dense = np.zeros(self._length, dtype=np.float64)
        for tile_id, tile in self._tiles.items():
            base = tile_id * self._tile_bits
            for offset, value in tile.iter_set_bits():
                dense[base + offset] = value
        return dense

    def to_bitvector(self) -> BitVector:
        """Flatten the tree into a single (long) bit-vector."""
        return BitVector.from_dense(self.to_dense())

    def indices(self) -> np.ndarray:
        """All stored positions in ascending order."""
        out: List[int] = []
        for tile_id, tile in self.iter_tiles():
            base = tile_id * self._tile_bits
            out.extend(base + i for i in tile.indices.tolist())
        return np.asarray(out, dtype=np.int64)

    def storage_bits(self) -> int:
        """Bits to store the top-level vector, occupied tiles, and values."""
        top = self.tile_count
        tiles = sum(tile.length for tile in self._tiles.values())
        values = 32 * self.nnz
        return top + tiles + values

    def __repr__(self) -> str:
        return (
            f"BitTree(length={self._length}, tile_bits={self._tile_bits}, "
            f"tiles={self.occupied_tiles}, nnz={self.nnz})"
        )


def align_trees(
    left: BitTree, right: BitTree, mode: str = "union"
) -> List[Tuple[int, BitVector, BitVector]]:
    """Realign two bit-trees' second-level tiles (the first streaming pass).

    Args:
        left: First operand.
        right: Second operand.
        mode: ``"union"`` keeps tiles occupied in either tree, inserting
            zero tiles for the missing side; ``"intersect"`` keeps only tiles
            occupied in both trees.

    Returns:
        A list of ``(tile_id, left_tile, right_tile)`` triples ordered by
        tile id, ready for nested sparse-sparse iteration.
    """
    if left.length != right.length or left.tile_bits != right.tile_bits:
        raise FormatError("bit-trees must have matching length and tile size")
    if mode not in ("union", "intersect"):
        raise FormatError(f"unknown alignment mode {mode!r}")
    left_ids = {tile_id for tile_id, _ in left.iter_tiles()}
    right_ids = {tile_id for tile_id, _ in right.iter_tiles()}
    if mode == "union":
        selected = sorted(left_ids | right_ids)
    else:
        selected = sorted(left_ids & right_ids)
    return [(tile_id, left.tile(tile_id), right.tile(tile_id)) for tile_id in selected]
