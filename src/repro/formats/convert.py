"""Conversions between sparse formats.

Capstan's format-conversion hardware (Section 3.4) turns compressed pointer
lists into bit-vectors so the scanner can compute intersections; this module
provides that conversion and the rest of the format lattice in software,
including scipy interoperability used by the baselines.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np
from scipy import sparse as sp

from ..errors import ConversionError
from .base import SparseMatrixFormat
from .bcsr import BCSRMatrix, BandedMatrix
from .bittree import BitTree
from .bitvector import BitVector
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dcsr import DCSCMatrix, DCSRMatrix
from .dense import DenseMatrix, DenseVector

AnyMatrix = Union[
    DenseMatrix, CSRMatrix, CSCMatrix, COOMatrix, DCSRMatrix, DCSCMatrix, BCSRMatrix, BandedMatrix
]


def to_csr(matrix: SparseMatrixFormat) -> CSRMatrix:
    """Convert any supported matrix format to CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    rows, cols, values = matrix.to_coo_arrays()
    return CSRMatrix.from_coo_arrays(matrix.shape, rows, cols, values)


def to_csc(matrix: SparseMatrixFormat) -> CSCMatrix:
    """Convert any supported matrix format to CSC."""
    if isinstance(matrix, CSCMatrix):
        return matrix
    rows, cols, values = matrix.to_coo_arrays()
    return CSCMatrix.from_coo_arrays(matrix.shape, rows, cols, values)


def to_coo(matrix: SparseMatrixFormat) -> COOMatrix:
    """Convert any supported matrix format to COO."""
    if isinstance(matrix, COOMatrix):
        return matrix
    rows, cols, values = matrix.to_coo_arrays()
    return COOMatrix(matrix.shape, rows, cols, values)


def to_dcsr(matrix: SparseMatrixFormat) -> DCSRMatrix:
    """Convert any supported matrix format to DCSR."""
    if isinstance(matrix, DCSRMatrix):
        return matrix
    return DCSRMatrix.from_csr(to_csr(matrix))


def to_dense_matrix(matrix: SparseMatrixFormat) -> DenseMatrix:
    """Convert any supported matrix format to a dense matrix."""
    if isinstance(matrix, DenseMatrix):
        return matrix
    return DenseMatrix(matrix.to_dense())


def to_scipy_csr(matrix: SparseMatrixFormat) -> sp.csr_matrix:
    """Convert any supported matrix format to a ``scipy.sparse.csr_matrix``."""
    rows, cols, values = matrix.to_coo_arrays()
    return sp.coo_matrix((values, (rows, cols)), shape=matrix.shape).tocsr()


def from_scipy(matrix: sp.spmatrix, fmt: str = "csr") -> AnyMatrix:
    """Build one of our formats from a scipy sparse matrix.

    Args:
        matrix: Any scipy sparse matrix.
        fmt: Target format name: ``csr``, ``csc``, ``coo``, ``dcsr`` or
            ``dense``.
    """
    coo = matrix.tocoo()
    shape = coo.shape
    rows = coo.row.astype(np.int64)
    cols = coo.col.astype(np.int64)
    values = coo.data.astype(np.float64)
    if fmt == "csr":
        return CSRMatrix.from_coo_arrays(shape, rows, cols, values)
    if fmt == "csc":
        return CSCMatrix.from_coo_arrays(shape, rows, cols, values)
    if fmt == "coo":
        return COOMatrix(shape, rows, cols, values)
    if fmt == "dcsr":
        return DCSRMatrix.from_csr(CSRMatrix.from_coo_arrays(shape, rows, cols, values))
    if fmt == "dense":
        return DenseMatrix(np.asarray(matrix.todense(), dtype=np.float64))
    raise ConversionError(f"unknown target format {fmt!r}")


def vector_to_bitvector(vector: Union[DenseVector, np.ndarray]) -> BitVector:
    """Convert a dense vector to the packed bit-vector format.

    This mirrors the pointer-to-bit-vector format-conversion hardware: the
    output occupies one bit per position plus compressed values.
    """
    if isinstance(vector, DenseVector):
        return BitVector.from_dense(vector.data)
    return BitVector.from_dense(np.asarray(vector, dtype=np.float64))


def pointers_to_bitvector(length: int, pointers: np.ndarray) -> BitVector:
    """Convert a compressed pointer list into an occupancy bit-vector.

    Args:
        length: Logical length of the resulting bit-vector.
        pointers: Sorted, unique indices of the non-zero positions.
    """
    pointers = np.asarray(pointers, dtype=np.int64)
    if pointers.size and (pointers.min() < 0 or pointers.max() >= length):
        raise ConversionError("pointer out of range for bit-vector length")
    return BitVector(length, pointers)


def bitvector_to_bittree(vector: BitVector, tile_bits: int = 512) -> BitTree:
    """Convert a bit-vector into the two-level bit-tree format."""
    return BitTree.from_indices(vector.length, vector.indices, vector.values, tile_bits)


def bittree_to_bitvector(tree: BitTree) -> BitVector:
    """Flatten a bit-tree back into a single bit-vector."""
    return tree.to_bitvector()


def csr_row_as_bitvector(matrix: CSRMatrix, row: int) -> BitVector:
    """Return one CSR row as a bit-vector (the scanner's operand format)."""
    return matrix.row_bitvector(row)


def csc_col_as_bitvector(matrix: CSCMatrix, col: int) -> BitVector:
    """Return one CSC column as a bit-vector (the scanner's operand format)."""
    return matrix.col_bitvector(col)


def _segments_as_bitvectors(
    length: int, pointers: np.ndarray, indices: np.ndarray, values: np.ndarray
) -> List[BitVector]:
    """Fan a compressed format's segments out into bit-vectors in one pass.

    The pointer/index/value arrays are already validated and per-segment
    sorted (the compressed formats enforce strictly increasing indices), so
    every vector is a zero-copy slice through the trusted construction path.
    """
    return [
        BitVector._from_trusted(length, indices[start:end], values[start:end])
        for start, end in zip(pointers[:-1].tolist(), pointers[1:].tolist())
    ]


def csr_rows_as_bitvectors(matrix: CSRMatrix) -> List[BitVector]:
    """All CSR rows as bit-vectors, without per-row validation or copies.

    Equivalent to ``[matrix.row_bitvector(r) for r in range(rows)]`` but
    built in one batched pass over the compressed arrays.
    """
    return _segments_as_bitvectors(
        matrix.shape[1], matrix.row_pointers, matrix.col_indices, matrix.values
    )


def csc_cols_as_bitvectors(matrix: CSCMatrix) -> List[BitVector]:
    """All CSC columns as bit-vectors, built in one batched pass."""
    return _segments_as_bitvectors(
        matrix.shape[0], matrix.col_pointers, matrix.row_indices, matrix.values
    )
