"""Dense matrix and vector wrappers.

Dense storage is the degenerate "format" in the sparse-iteration taxonomy:
every dimension is iterated with a counter. It exists so applications can
mix dense operands (e.g. the input vector of CSR SpMV, PageRank rank
vectors) with compressed ones through a uniform interface.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_shape


class DenseMatrix(SparseMatrixFormat):
    """A dense 2-D matrix stored as a contiguous float64 array."""

    def __init__(self, data: np.ndarray):
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError(f"DenseMatrix requires a 2-D array, got ndim={array.ndim}")
        self._data = np.ascontiguousarray(array)

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "DenseMatrix":
        """Create an all-zero dense matrix of the given shape."""
        rows, cols = check_shape(shape)
        return cls(np.zeros((rows, cols), dtype=np.float64))

    @property
    def shape(self) -> Tuple[int, int]:
        return self._data.shape  # type: ignore[return-value]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._data))

    @property
    def data(self) -> np.ndarray:
        """The underlying dense array (read-only view)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    def to_dense(self) -> np.ndarray:
        return self._data.copy()

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries."""
        rows, cols = np.nonzero(self._data)
        return (
            rows.astype(np.int64),
            cols.astype(np.int64),
            self._data[rows, cols],
        )

    def __repr__(self) -> str:
        return f"DenseMatrix(shape={self.shape}, nnz={self.nnz})"


class DenseVector:
    """A dense 1-D vector of float64 values."""

    def __init__(self, data: np.ndarray):
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 1:
            raise FormatError(f"DenseVector requires a 1-D array, got ndim={array.ndim}")
        self._data = np.ascontiguousarray(array)

    @classmethod
    def zeros(cls, length: int) -> "DenseVector":
        """Create an all-zero vector of ``length`` elements."""
        if length < 0:
            raise FormatError("vector length must be non-negative")
        return cls(np.zeros(length, dtype=np.float64))

    @property
    def length(self) -> int:
        """Number of elements in the vector."""
        return self._data.shape[0]

    @property
    def nnz(self) -> int:
        """Number of non-zero elements."""
        return int(np.count_nonzero(self._data))

    @property
    def density(self) -> float:
        """Fraction of elements that are non-zero."""
        return self.nnz / self.length if self.length else 0.0

    @property
    def data(self) -> np.ndarray:
        """The underlying dense array (read-only view)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    def to_numpy(self) -> np.ndarray:
        """Return a mutable copy of the vector contents."""
        return self._data.copy()

    def nonzero_indices(self) -> np.ndarray:
        """Indices of non-zero elements in ascending order."""
        return np.nonzero(self._data)[0].astype(np.int64)

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> float:
        return float(self._data[index])

    def __repr__(self) -> str:
        return f"DenseVector(length={self.length}, nnz={self.nnz})"
