"""Matrix-Market style I/O for sparse matrices.

The paper's datasets come from the SuiteSparse collection, which distributes
Matrix-Market (``.mtx``) files. This module reads and writes the coordinate
Matrix-Market subset so locally generated stand-in datasets can be saved and
reloaded, and real ``.mtx`` files can be used if available.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple, Union

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csr import CSRMatrix

PathLike = Union[str, pathlib.Path]


def write_matrix_market(matrix: Union[COOMatrix, CSRMatrix], path: PathLike) -> None:
    """Write a sparse matrix in Matrix-Market coordinate format.

    General (non-symmetric) real coordinate output with 1-based indices, as
    produced by the SuiteSparse collection.
    """
    rows, cols, values = matrix.to_coo_arrays()
    shape = matrix.shape
    lines: List[str] = [
        "%%MatrixMarket matrix coordinate real general",
        f"% written by repro.formats.io ({type(matrix).__name__})",
        f"{shape[0]} {shape[1]} {values.size}",
    ]
    for r, c, v in zip(rows.tolist(), cols.tolist(), values.tolist()):
        lines.append(f"{r + 1} {c + 1} {v:.17g}")
    pathlib.Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_matrix_market(path: PathLike) -> COOMatrix:
    """Read a Matrix-Market coordinate file into a COO matrix.

    Supports ``general`` and ``symmetric`` real/integer/pattern coordinate
    matrices, which covers the SuiteSparse matrices used in the paper.
    """
    text = pathlib.Path(path).read_text(encoding="ascii", errors="replace")
    lines = text.splitlines()
    if not lines:
        raise FormatError(f"{path}: empty Matrix-Market file")
    header = lines[0].strip().lower()
    if not header.startswith("%%matrixmarket"):
        raise FormatError(f"{path}: missing MatrixMarket header")
    tokens = header.split()
    if "coordinate" not in tokens:
        raise FormatError(f"{path}: only coordinate format is supported")
    symmetric = "symmetric" in tokens
    pattern = "pattern" in tokens

    body = [line for line in lines[1:] if line.strip() and not line.lstrip().startswith("%")]
    if not body:
        raise FormatError(f"{path}: missing size line")
    size_parts = body[0].split()
    if len(size_parts) != 3:
        raise FormatError(f"{path}: malformed size line {body[0]!r}")
    n_rows, n_cols, n_entries = (int(p) for p in size_parts)

    entry_lines = body[1:]
    if len(entry_lines) < n_entries:
        raise FormatError(
            f"{path}: expected {n_entries} entries, found {len(entry_lines)}"
        )

    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for line in entry_lines[:n_entries]:
        parts = line.split()
        if pattern:
            if len(parts) < 2:
                raise FormatError(f"{path}: malformed pattern entry {line!r}")
            r, c, v = int(parts[0]) - 1, int(parts[1]) - 1, 1.0
        else:
            if len(parts) < 3:
                raise FormatError(f"{path}: malformed entry {line!r}")
            r, c, v = int(parts[0]) - 1, int(parts[1]) - 1, float(parts[2])
        rows.append(r)
        cols.append(c)
        values.append(v)
        if symmetric and r != c:
            rows.append(c)
            cols.append(r)
            values.append(v)

    return COOMatrix(
        (n_rows, n_cols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def roundtrip_matches(matrix: Union[COOMatrix, CSRMatrix], path: PathLike) -> bool:
    """Write ``matrix`` to ``path``, read it back, and compare densely."""
    write_matrix_market(matrix, path)
    loaded = read_matrix_market(path)
    return bool(
        matrix.shape == loaded.shape and np.allclose(matrix.to_dense(), loaded.to_dense())
    )
