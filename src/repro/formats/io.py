"""Matrix-Market style I/O for sparse matrices.

The paper's datasets come from the SuiteSparse collection, which distributes
Matrix-Market (``.mtx``) files. This module reads and writes the coordinate
Matrix-Market subset so locally generated stand-in datasets can be saved and
reloaded, and real ``.mtx`` files can be used if available.

Both directions are array-native: writing formats the whole COO triplet
array in one pass, and reading parses the entry block with a single
vectorized tokenization (falling back to the retained line-at-a-time parser
for ragged or malformed files so error reporting is unchanged).
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csr import CSRMatrix

PathLike = Union[str, pathlib.Path]


def write_matrix_market(matrix: Union[COOMatrix, CSRMatrix], path: PathLike) -> None:
    """Write a sparse matrix in Matrix-Market coordinate format.

    General (non-symmetric) real coordinate output with 1-based indices, as
    produced by the SuiteSparse collection.
    """
    rows, cols, values = matrix.to_coo_arrays()
    shape = matrix.shape
    header = (
        "%%MatrixMarket matrix coordinate real general\n"
        f"% written by repro.formats.io ({type(matrix).__name__})\n"
        f"{shape[0]} {shape[1]} {values.size}\n"
    )
    entries = "".join(
        f"{r} {c} {v:.17g}\n"
        for r, c, v in zip((rows + 1).tolist(), (cols + 1).tolist(), values.tolist())
    )
    pathlib.Path(path).write_text(header + entries, encoding="ascii")


def _parse_entries_vectorized(
    entry_lines: Sequence[str], n_entries: int, pattern: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tokenize the whole entry block in one pass.

    Requires every line to carry exactly the expected column count and
    integral index fields; raises ``ValueError`` otherwise so the caller
    can fall back to the line-at-a-time parser (whose errors are the
    contract).
    """
    width = 2 if pattern else 3
    if n_entries == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    parts = [line.split() for line in entry_lines[:n_entries]]
    if any(len(p) != width for p in parts):
        raise ValueError("ragged entry lines")
    table = np.asarray(parts, dtype=np.float64)
    if table.shape != (n_entries, width):
        raise ValueError("ragged entry lines")
    rows = table[:, 0]
    cols = table[:, 1]
    if np.any(rows != np.floor(rows)) or np.any(cols != np.floor(cols)):
        raise ValueError("non-integral indices")
    values = (
        np.ones(n_entries, dtype=np.float64) if pattern else table[:, 2].copy()
    )
    return rows.astype(np.int64) - 1, cols.astype(np.int64) - 1, values


def _parse_entries_reference(
    path: PathLike, entry_lines: Sequence[str], n_entries: int, pattern: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The retained line-at-a-time parser (exact error reporting)."""
    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for line in entry_lines[:n_entries]:
        parts = line.split()
        if pattern:
            if len(parts) < 2:
                raise FormatError(f"{path}: malformed pattern entry {line!r}")
            r, c, v = int(parts[0]) - 1, int(parts[1]) - 1, 1.0
        else:
            if len(parts) < 3:
                raise FormatError(f"{path}: malformed entry {line!r}")
            r, c, v = int(parts[0]) - 1, int(parts[1]) - 1, float(parts[2])
        rows.append(r)
        cols.append(c)
        values.append(v)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def read_matrix_market(path: PathLike) -> COOMatrix:
    """Read a Matrix-Market coordinate file into a COO matrix.

    Supports ``general`` and ``symmetric`` real/integer/pattern coordinate
    matrices, which covers the SuiteSparse matrices used in the paper.
    """
    text = pathlib.Path(path).read_text(encoding="ascii", errors="replace")
    lines = text.splitlines()
    if not lines:
        raise FormatError(f"{path}: empty Matrix-Market file")
    header = lines[0].strip().lower()
    if not header.startswith("%%matrixmarket"):
        raise FormatError(f"{path}: missing MatrixMarket header")
    tokens = header.split()
    if "coordinate" not in tokens:
        raise FormatError(f"{path}: only coordinate format is supported")
    symmetric = "symmetric" in tokens
    pattern = "pattern" in tokens

    body = [line for line in lines[1:] if line.strip() and not line.lstrip().startswith("%")]
    if not body:
        raise FormatError(f"{path}: missing size line")
    size_parts = body[0].split()
    if len(size_parts) != 3:
        raise FormatError(f"{path}: malformed size line {body[0]!r}")
    n_rows, n_cols, n_entries = (int(p) for p in size_parts)

    entry_lines = body[1:]
    if len(entry_lines) < n_entries:
        raise FormatError(
            f"{path}: expected {n_entries} entries, found {len(entry_lines)}"
        )

    try:
        rows, cols, values = _parse_entries_vectorized(entry_lines, n_entries, pattern)
    except ValueError:
        rows, cols, values = _parse_entries_reference(
            path, entry_lines, n_entries, pattern
        )

    if symmetric:
        mirror = rows != cols
        rows, cols, values = (
            np.concatenate((rows, cols[mirror])),
            np.concatenate((cols, rows[mirror])),
            np.concatenate((values, values[mirror])),
        )

    return COOMatrix((n_rows, n_cols), rows, cols, values)


def roundtrip_matches(matrix: Union[COOMatrix, CSRMatrix], path: PathLike) -> bool:
    """Write ``matrix`` to ``path``, read it back, and compare densely."""
    write_matrix_market(matrix, path)
    loaded = read_matrix_market(path)
    return bool(
        matrix.shape == loaded.shape and np.allclose(matrix.to_dense(), loaded.to_dense())
    )
