"""Coordinate (COO) matrix format (Table 1).

COO stores one ``(row, col, value)`` triplet per non-zero, which permits
iteration only over non-zero values -- not rows or columns -- and is the most
storage-efficient choice for extremely sparse matrices. It is the input
format for COO SpMV and PageRank-edge in Table 2, both of which rely on
random-access (atomic) updates to the output vector.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .base import SparseMatrixFormat, check_indices, check_shape


class COOMatrix(SparseMatrixFormat):
    """A COO matrix: parallel row, column, and value arrays.

    Entries are stored sorted by ``(row, col)`` and duplicates are summed at
    construction so the representation is canonical.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = check_shape(shape)
        rows = check_indices(rows, self._shape[0], "rows")
        cols = check_indices(cols, self._shape[1], "cols")
        values = np.asarray(values, dtype=np.float64)
        if not (rows.size == cols.size == values.size):
            raise FormatError("rows, cols, and values must have matching length")
        if rows.size:
            order = np.lexsort((cols, rows))
            rows, cols, values = rows[order], cols[order], values[order]
            keys = rows * self._shape[1] + cols
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            if unique_keys.size != keys.size:
                summed = np.zeros(unique_keys.size, dtype=np.float64)
                np.add.at(summed, inverse, values)
                rows = (unique_keys // self._shape[1]).astype(np.int64)
                cols = (unique_keys % self._shape[1]).astype(np.int64)
                values = summed
        self._rows = rows
        self._cols = cols
        self._values = values

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping zeros."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise FormatError("from_dense requires a 2-D array")
        rows, cols = np.nonzero(array)
        return cls(array.shape, rows, cols, array[rows, cols])

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._values.size)

    @property
    def rows(self) -> np.ndarray:
        """Row indices of stored entries, sorted by ``(row, col)``."""
        return self._rows.copy()

    @property
    def cols(self) -> np.ndarray:
        """Column indices of stored entries, sorted by ``(row, col)``."""
        return self._cols.copy()

    @property
    def values(self) -> np.ndarray:
        """Values of stored entries, sorted by ``(row, col)``."""
        return self._values.copy()

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        dense[self._rows, self._cols] = self._values
        return dense

    def to_coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` arrays of all stored entries."""
        return self._rows.copy(), self._cols.copy(), self._values.copy()

    def storage_bytes(self) -> int:
        """Bytes to store row pointers, column pointers, and values (32-bit)."""
        return 4 * 3 * self.nnz

    def row_pointer_bytes(self) -> int:
        """Bytes of pointer (index) traffic per non-zero: two 32-bit pointers."""
        return 8 * self.nnz

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self._shape}, nnz={self.nnz})"
