"""Sparse tensor storage formats (Table 1, Figure 1 of the paper).

This subpackage implements the storage formats Capstan is designed around:
dense matrices/vectors, CSR, CSC, COO, DCSR/DCSC, BCSR, banded, packed
bit-vectors, and two-level bit-trees, plus conversions and Matrix-Market I/O.
"""

from . import packed
from .base import SparseMatrixFormat
from .bcsr import BCSRMatrix, BandedMatrix
from .bittree import BitTree, align_trees
from .bitvector import BitVector
from .convert import (
    bittree_to_bitvector,
    bitvector_to_bittree,
    csc_col_as_bitvector,
    csc_cols_as_bitvectors,
    csr_row_as_bitvector,
    csr_rows_as_bitvectors,
    from_scipy,
    pointers_to_bitvector,
    to_coo,
    to_csc,
    to_csr,
    to_dcsr,
    to_dense_matrix,
    to_scipy_csr,
    vector_to_bitvector,
)
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dcsr import DCSCMatrix, DCSRMatrix
from .dense import DenseMatrix, DenseVector
from .io import read_matrix_market, roundtrip_matches, write_matrix_market

__all__ = [
    "SparseMatrixFormat",
    "DenseMatrix",
    "DenseVector",
    "CSRMatrix",
    "CSCMatrix",
    "COOMatrix",
    "DCSRMatrix",
    "DCSCMatrix",
    "BCSRMatrix",
    "BandedMatrix",
    "BitVector",
    "BitTree",
    "align_trees",
    "to_csr",
    "to_csc",
    "to_coo",
    "to_dcsr",
    "to_dense_matrix",
    "to_scipy_csr",
    "from_scipy",
    "vector_to_bitvector",
    "pointers_to_bitvector",
    "bitvector_to_bittree",
    "bittree_to_bitvector",
    "csr_row_as_bitvector",
    "csc_col_as_bitvector",
    "csr_rows_as_bitvectors",
    "csc_cols_as_bitvectors",
    "packed",
    "read_matrix_market",
    "write_matrix_market",
    "roundtrip_matches",
]
