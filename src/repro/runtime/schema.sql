-- Experiment run store schema, version 3.
--
-- One row per bench run in `runs` (the full record is kept verbatim in
-- `record_json`); each record section -- the implicit top-level "runner"
-- timings plus costing / spmu / formats / chunked -- lands in `sections`
-- with its identity flag and traced peak broken out, and every numeric
-- metric is additionally flattened into `section_metrics` so history and
-- trend queries are single indexed scans instead of JSON decoding.
-- Baselines are frozen snapshots of one recorded run under a name.
--
-- Version 2 adds the job layer: `jobs` holds one row per submitted sweep
-- (content-addressed by spec key, so re-submitting the same grid resumes
-- the existing job instead of duplicating it) and `work_units` holds its
-- shards -- one content-addressed unit per row with its state machine
-- (pending/running/done/failed/dead), attempt count, and result. A
-- killed sweep resumes by resetting stale `running` rows to `pending`;
-- `done` rows are never re-executed.
--
-- Version 3 makes claims lease-based: a claimant stamps `lease_owner`
-- (hostname:pid:token) and `lease_expires_at` (unix seconds, heartbeat-
-- refreshed) on the `running` rows it holds, so concurrent run_job
-- processes cannot double-claim a unit and only *stale* leases (expired,
-- or a dead same-host pid) are reclaimed on resume. `dead` is the
-- dead-letter state for units that exhausted max_attempts or failed
-- permanently; they are not claimable. Existing v2 databases gain the
-- two columns via ALTER TABLE in RunStore._apply_schema.
--
-- The version lives in `PRAGMA user_version`, written by RunStore when it
-- applies this file; bump RunStore.SCHEMA_VERSION on incompatible change.

CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY,
    created_at       TEXT NOT NULL,
    benchmark        TEXT NOT NULL,
    code_fingerprint TEXT NOT NULL,
    scale            REAL,
    workers          INTEGER,
    cpu_count        INTEGER,
    label            TEXT,
    record_json      TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS runs_by_fingerprint ON runs (code_fingerprint);
CREATE INDEX IF NOT EXISTS runs_by_created_at ON runs (created_at);

CREATE TABLE IF NOT EXISTS sections (
    run_id       INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name         TEXT NOT NULL,
    identical    INTEGER,
    peak_mb      REAL,
    metrics_json TEXT NOT NULL,
    PRIMARY KEY (run_id, name)
);

CREATE TABLE IF NOT EXISTS section_metrics (
    run_id  INTEGER NOT NULL,
    section TEXT NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL,
    PRIMARY KEY (run_id, section, metric),
    FOREIGN KEY (run_id, section)
        REFERENCES sections (run_id, name) ON DELETE CASCADE
);

CREATE INDEX IF NOT EXISTS section_metrics_by_metric
    ON section_metrics (section, metric, run_id);

CREATE TABLE IF NOT EXISTS baselines (
    name             TEXT PRIMARY KEY,
    run_id           INTEGER NOT NULL REFERENCES runs (id),
    created_at       TEXT NOT NULL,
    scale            REAL,
    code_fingerprint TEXT NOT NULL,
    snapshot_json    TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS jobs (
    id         INTEGER PRIMARY KEY,
    key        TEXT NOT NULL UNIQUE,
    name       TEXT NOT NULL,
    created_at TEXT NOT NULL,
    updated_at TEXT NOT NULL,
    state      TEXT NOT NULL DEFAULT 'pending',
    executor   TEXT,
    workers    INTEGER
);

CREATE TABLE IF NOT EXISTS work_units (
    job_id           INTEGER NOT NULL REFERENCES jobs (id) ON DELETE CASCADE,
    seq              INTEGER NOT NULL,
    key              TEXT NOT NULL,
    kind             TEXT NOT NULL,
    payload_json     TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'pending',
    attempts         INTEGER NOT NULL DEFAULT 0,
    duration_s       REAL,
    error            TEXT,
    result_json      TEXT,
    lease_owner      TEXT,
    lease_expires_at REAL,
    PRIMARY KEY (job_id, seq)
);

CREATE INDEX IF NOT EXISTS work_units_by_key ON work_units (key);
CREATE INDEX IF NOT EXISTS work_units_by_state ON work_units (job_id, state);
