-- Experiment run store schema, version 1.
--
-- One row per bench run in `runs` (the full record is kept verbatim in
-- `record_json`); each record section -- the implicit top-level "runner"
-- timings plus costing / spmu / formats / chunked -- lands in `sections`
-- with its identity flag and traced peak broken out, and every numeric
-- metric is additionally flattened into `section_metrics` so history and
-- trend queries are single indexed scans instead of JSON decoding.
-- Baselines are frozen snapshots of one recorded run under a name.
--
-- The version lives in `PRAGMA user_version`, written by RunStore when it
-- applies this file; bump RunStore.SCHEMA_VERSION on incompatible change.

CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY,
    created_at       TEXT NOT NULL,
    benchmark        TEXT NOT NULL,
    code_fingerprint TEXT NOT NULL,
    scale            REAL,
    workers          INTEGER,
    cpu_count        INTEGER,
    label            TEXT,
    record_json      TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS runs_by_fingerprint ON runs (code_fingerprint);
CREATE INDEX IF NOT EXISTS runs_by_created_at ON runs (created_at);

CREATE TABLE IF NOT EXISTS sections (
    run_id       INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name         TEXT NOT NULL,
    identical    INTEGER,
    peak_mb      REAL,
    metrics_json TEXT NOT NULL,
    PRIMARY KEY (run_id, name)
);

CREATE TABLE IF NOT EXISTS section_metrics (
    run_id  INTEGER NOT NULL,
    section TEXT NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL,
    PRIMARY KEY (run_id, section, metric),
    FOREIGN KEY (run_id, section)
        REFERENCES sections (run_id, name) ON DELETE CASCADE
);

CREATE INDEX IF NOT EXISTS section_metrics_by_metric
    ON section_metrics (section, metric, run_id);

CREATE TABLE IF NOT EXISTS baselines (
    name             TEXT PRIMARY KEY,
    run_id           INTEGER NOT NULL REFERENCES runs (id),
    created_at       TEXT NOT NULL,
    scale            REAL,
    code_fingerprint TEXT NOT NULL,
    snapshot_json    TEXT NOT NULL
);
