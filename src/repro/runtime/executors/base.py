"""The executor protocol: batched work-unit execution with a shared contract.

Every executor takes a list of work-unit payloads (see
:mod:`repro.runtime.jobs`) and returns one :class:`UnitOutcome` per
payload **in input order**, regardless of completion order. The base
class owns the policy knobs so every backend behaves identically:

* ``timeout_s`` -- per-unit wall-clock cap; an expired unit reports
  ``"timeout"`` (and, where the backend owns a process, the worker is
  killed and respawned);
* ``retries`` -- extra attempts after a failed or timed-out attempt, with
  exponentially-growing full-jitter backoff: attempt ``n`` waits a uniform
  draw from ``[cap*(1-jitter), cap]`` where ``cap = backoff_s * 2**(n-1)``
  and ``jitter`` defaults to 1.0 (full jitter). Jitter keeps the retry
  storm after a killed wave from hammering the job store in lockstep;
  ``seed`` pins the draws for deterministic tests. Failures classified
  *permanent* by :func:`repro.runtime.health.classify_error` (bad spec,
  import errors) skip the retry loop entirely -- no backoff, no extra
  attempts -- and every final outcome carries its ``classification``;
* ``cancel()`` -- callable from any thread; units not yet finished report
  ``"cancelled"`` and are left claimable by the job store;
* ``stop_on_error`` -- per-run flag: after the first unit exhausts its
  retries, outstanding units are cancelled instead of executed.

Backends: :class:`~repro.runtime.executors.local.LocalExecutor` (serial,
in process), :class:`~repro.runtime.executors.pool.PoolExecutor` (the
process pool extracted from the old ``ExperimentRunner._run_parallel``),
and :class:`~repro.runtime.executors.subprocess.SubprocessExecutor`
(persistent ``repro-eval worker`` children behind an arbitrary command
prefix -- the SSH-shaped seam).
"""

from __future__ import annotations

import random
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ...errors import CapstanError
from ..health import PERMANENT, classify_error

#: Unit-outcome statuses.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_CANCELLED = "cancelled"


class WorkerError(CapstanError):
    """A unit failed in a worker whose exception object is unavailable.

    Carries the worker-side formatted traceback so the failure site stays
    visible across the process (or machine) boundary.
    """

    def __init__(self, message: str, traceback_text: Optional[str] = None):
        super().__init__(message)
        self.traceback_text = traceback_text

    def __str__(self) -> str:
        base = super().__str__()
        if self.traceback_text:
            return f"{base}\n{self.traceback_text}"
        return base


@dataclass
class UnitOutcome:
    """What happened to one work unit.

    Attributes:
        status: ``"ok"``, ``"error"``, ``"timeout"``, or ``"cancelled"``.
        result: The unit's native result (``None`` unless ok).
        error: One-line failure summary (``None`` when ok/cancelled).
        traceback: Full traceback text of the failing attempt, when known.
        exception: The exception object itself, when it exists in this
            process (in-process executors; pool failures that unpickle).
        duration_s: Wall time of the last attempt.
        attempts: Attempts consumed (0 for units cancelled before starting).
        classification: ``"transient"`` or ``"permanent"`` for failed
            outcomes (see :mod:`repro.runtime.health`); ``None`` when ok
            or cancelled.
    """

    status: str
    result: Any = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    exception: Optional[BaseException] = None
    duration_s: float = 0.0
    attempts: int = 0
    classification: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK


def outcome_from_exception(
    exc: BaseException, duration_s: float, traceback_text: Optional[str] = None
) -> UnitOutcome:
    """Build an error outcome from a caught exception."""
    summary = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return UnitOutcome(
        status=OUTCOME_ERROR,
        error=summary,
        traceback=traceback_text,
        exception=exc,
        duration_s=duration_s,
    )


class Executor:
    """Base class implementing the shared retry/backoff/cancel contract.

    Subclasses implement :meth:`run_units`; the helpers here keep the
    retry arithmetic and cancellation semantics identical across backends
    (the conformance suite in ``tests/test_executors.py`` asserts this).

    Args:
        workers: Degree of parallelism the backend may use.
        timeout_s: Per-unit attempt cap in seconds (``None`` = unlimited).
        retries: Extra attempts after a failed/timed-out attempt.
        backoff_s: Base of the exponential inter-attempt backoff cap.
        jitter: Jittered fraction of each backoff, clamped to [0, 1]:
            0 = the old deterministic exponential sleep, 1 (default) =
            full jitter (uniform over ``[0, cap]``).
        seed: Seed for the backoff RNG; ``None`` draws entropy (tests pin
            a seed to make retry schedules reproducible).
    """

    name = "base"

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        jitter: float = 1.0,
        seed: Optional[int] = None,
    ):
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.jitter = min(1.0, max(0.0, float(jitter)))
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._cancel_event = threading.Event()

    # ----------------------------------------------------------- control

    def cancel(self) -> None:
        """Request cancellation (thread-safe; unfinished units report it)."""
        self._cancel_event.set()

    def cancelled(self) -> bool:
        return self._cancel_event.is_set()

    def _begin_run(self) -> None:
        """Reset per-run state (a fresh run starts uncancelled)."""
        self._cancel_event.clear()

    # ----------------------------------------------------------- helpers

    def _backoff_delay(self, attempt: int) -> float:
        """The jittered backoff delay after failed ``attempt`` (1-based)."""
        cap = self.backoff_s * (2 ** (attempt - 1))
        if cap <= 0 or self.jitter <= 0:
            return cap
        with self._rng_lock:
            return cap * (1.0 - self.jitter) + self._rng.uniform(0.0, cap * self.jitter)

    def _backoff(self, attempt: int) -> None:
        """Sleep the jittered backoff after failed ``attempt`` (1-based)."""
        delay = self._backoff_delay(attempt)
        if delay > 0:
            # Wake early on cancel instead of sleeping through it.
            self._cancel_event.wait(delay)

    def classify_outcome(self, outcome: UnitOutcome) -> Optional[str]:
        """Classification for a failed outcome (None when ok/cancelled)."""
        if outcome.status in (OUTCOME_OK, OUTCOME_CANCELLED):
            return None
        if outcome.status == OUTCOME_TIMEOUT:
            # A timeout says nothing about the spec; always worth a retry.
            return classify_error(None)
        return classify_error(
            outcome.exception if outcome.exception is not None else outcome.error
        )

    def _run_with_retries(self, attempt_once: Callable[[], UnitOutcome]) -> UnitOutcome:
        """Drive one unit's attempt/retry loop to a final outcome.

        Permanent failures (see :mod:`repro.runtime.health`) return after
        the first attempt -- retrying a bad spec or a missing import burns
        the budget without changing the answer.
        """
        attempts = 0
        while True:
            if self.cancelled():
                return UnitOutcome(status=OUTCOME_CANCELLED, attempts=attempts)
            attempts += 1
            outcome = attempt_once()
            outcome.attempts = attempts
            outcome.classification = self.classify_outcome(outcome)
            if outcome.status in (OUTCOME_OK, OUTCOME_CANCELLED):
                return outcome
            if outcome.classification == PERMANENT or attempts > self.retries:
                return outcome
            self._backoff(attempts)

    def run_units(
        self, payloads: List[Dict[str, Any]], *, stop_on_error: bool = False
    ) -> List[UnitOutcome]:
        """Execute the payloads; one outcome per payload, in input order."""
        raise NotImplementedError
