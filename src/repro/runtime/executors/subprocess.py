"""Subprocess executor: persistent ``repro-eval worker`` children.

Each of ``workers`` driver threads owns one long-lived worker process and
speaks a JSON-lines protocol over its stdin/stdout::

    -> {"id": 7, "payload": {"kind": "profile", ...}}
    <- {"id": 7, "ok": true, "result": {...}, "duration_s": 0.42}
    <- {"id": 8, "ok": false, "error": "...", "traceback": "...", ...}

The worker command is an arbitrary prefix (default: this interpreter
running ``repro.runtime.cli``) with ``worker`` appended -- the SSH-shaped
seam: point ``command`` at ``["ssh", "host", "repro-eval"]`` and the same
executor drives remote workers, because everything a unit needs travels
in its payload and results come back as JSON.

Unlike the pool, a timed-out unit here is *actually* killed (the worker
process is terminated and respawned), so ``timeout_s`` is a hard cap.
Results are deserialized per unit kind, so callers see the same native
objects the in-process executors return.

Worker health is tracked per slot (see :mod:`repro.runtime.health`): a
worker that emits a malformed or truncated protocol line is killed and
respawned immediately -- one corrupted line must not fail every unit
subsequently routed to that worker -- and each slot's rolling
failure/latency window feeds a circuit breaker. An open breaker
quarantines the slot for ``breaker_cooldown_s`` before the next (re)spawn,
so a broken worker command degrades into spaced respawn probes instead of
a tight crash loop.
"""

from __future__ import annotations

import json
import os
import selectors
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from ...errors import CapstanError
from ..health import HealthRegistry, WorkerHealth
from ..jobs import deserialize_result
from .base import (
    OUTCOME_CANCELLED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    Executor,
    UnitOutcome,
    WorkerError,
)


def default_worker_command() -> List[str]:
    """The local worker command: this interpreter running the CLI module."""
    return [sys.executable, "-m", "repro.runtime.cli"]


#: Generous cap on worker startup (interpreter + imports), separate from the
#: per-unit ``timeout_s`` so slow spawns never masquerade as unit timeouts.
WARMUP_TIMEOUT_S = 120.0


def _worker_env() -> Dict[str, str]:
    """Child environment with this package importable.

    Tests (and editable checkouts) run via ``PYTHONPATH=src`` without an
    installed distribution; prepending the package parent keeps
    ``python -m repro.runtime.cli`` resolvable in the child regardless.
    """
    import repro

    env = dict(os.environ)
    package_parent = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    if existing:
        if package_parent not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_parent + os.pathsep + existing
    else:
        env["PYTHONPATH"] = package_parent
    return env


class _WorkerDied(CapstanError):
    """The worker process exited (or its pipe closed) mid-conversation."""


class _ProtocolError(CapstanError):
    """The worker corrupted the JSON-lines protocol (malformed line).

    A worker that garbles its protocol channel cannot be trusted with the
    next unit either -- the caller kills and respawns it.
    """


class _Worker:
    """One persistent worker process and its line-framed conversation."""

    def __init__(self, command: List[str]):
        self.proc = subprocess.Popen(
            list(command) + ["worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_worker_env(),
        )
        self._buffer = bytearray()
        self._next_id = 0
        stdout = self.proc.stdout
        assert stdout is not None
        os.set_blocking(stdout.fileno(), False)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        # Reap and close pipes; idempotent.
        try:
            self.proc.wait(timeout=5)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass

    def request(self, payload: Dict[str, Any], timeout_s: Optional[float]) -> Dict[str, Any]:
        """Send one unit, block for its response line.

        Raises :class:`TimeoutError` past ``timeout_s`` (caller kills the
        worker) and :class:`_WorkerDied` if the process goes away.
        """
        self._next_id += 1
        request_id = self._next_id
        line = json.dumps({"id": request_id, "payload": payload}) + "\n"
        stdin = self.proc.stdin
        assert stdin is not None
        try:
            stdin.write(line.encode())
            stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(f"worker stdin closed: {exc}") from None
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        while True:
            raw = self._read_line(deadline)
            try:
                response = json.loads(raw)
            except ValueError:
                # A corrupted protocol channel means lost responses and
                # misattributed results; surface it so the caller replaces
                # the worker (skipping the line would silently poison
                # every later unit routed here).
                snippet = raw[:80].decode("utf-8", errors="replace")
                raise _ProtocolError(
                    f"worker emitted a malformed protocol line: {snippet!r}"
                ) from None
            if not isinstance(response, dict):
                raise _ProtocolError(
                    f"worker emitted a non-object protocol line: {raw[:80]!r}"
                )
            if response.get("id") == request_id:
                return response

    def _read_line(self, deadline: Optional[float]) -> bytes:
        stdout = self.proc.stdout
        assert stdout is not None
        fd = stdout.fileno()
        with selectors.DefaultSelector() as selector:
            selector.register(fd, selectors.EVENT_READ)
            while True:
                newline = self._buffer.find(b"\n")
                if newline >= 0:
                    line = bytes(self._buffer[:newline])
                    del self._buffer[: newline + 1]
                    return line
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise TimeoutError("worker response deadline exceeded")
                if not selector.select(remaining):
                    continue  # timed out or spurious wakeup; re-check deadline
                try:
                    chunk = os.read(fd, 65536)
                except BlockingIOError:
                    continue
                except OSError as exc:
                    raise _WorkerDied(f"worker stdout error: {exc}") from None
                if not chunk:
                    raise _WorkerDied(
                        f"worker exited (code {self.proc.poll()}) before responding"
                    )
                self._buffer.extend(chunk)


class SubprocessExecutor(Executor):
    """Executor fanning units out over persistent worker subprocesses.

    Args:
        workers: Worker process count (one driver thread each).
        command: Worker command prefix; ``worker`` is appended. Defaults
            to :func:`default_worker_command`.
        breaker_threshold: Consecutive worker-level failures (died, timed
            out, corrupted protocol) that open a slot's circuit breaker.
        breaker_cooldown_s: Quarantine before an open slot may respawn a
            replacement worker. The default 0 replaces immediately; raise
            it to space out respawns of a persistently-broken command.
        health_window: Observations kept in each slot's rolling window.
        (plus the shared ``timeout_s``/``retries``/``backoff_s``/
        ``jitter``/``seed``.)
    """

    name = "subprocess"

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        jitter: float = 1.0,
        seed: Optional[int] = None,
        command: Optional[List[str]] = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.0,
        health_window: int = 16,
    ):
        super().__init__(
            workers,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            jitter=jitter,
            seed=seed,
        )
        self.command = list(command) if command is not None else default_worker_command()
        self.health = HealthRegistry(
            window=health_window,
            failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        self._live_workers: List[_Worker] = []
        self._workers_lock = threading.Lock()

    def health_report(self) -> Dict[int, Dict[str, object]]:
        """Per-slot health snapshots (spawns, replacements, windows)."""
        return self.health.report()

    def cancel(self) -> None:
        """Cancel the run and kill live workers (interrupts blocked reads)."""
        super().cancel()
        with self._workers_lock:
            workers = list(self._live_workers)
        for worker in workers:
            worker.kill()

    def run_units(
        self, payloads: List[Dict[str, Any]], *, stop_on_error: bool = False
    ) -> List[UnitOutcome]:
        self._begin_run()
        total = len(payloads)
        outcomes: List[Optional[UnitOutcome]] = [None] * total
        queue = deque(range(total))
        state = {"failed": False}
        lock = threading.Lock()

        def drain(slot: int) -> None:
            holder: Dict[str, Any] = {"worker": None, "slot": slot}
            try:
                while True:
                    with lock:
                        stop = (
                            self.cancelled()
                            or (state["failed"] and stop_on_error)
                            or not queue
                        )
                        index = None if stop else queue.popleft()
                    if index is None:
                        return
                    outcome = self._run_with_retries(
                        lambda: self._attempt(holder, payloads[index])
                    )
                    outcomes[index] = outcome
                    if outcome.status not in (OUTCOME_OK, OUTCOME_CANCELLED):
                        with lock:
                            state["failed"] = True
            finally:
                self._retire(holder)

        threads = [
            threading.Thread(target=drain, args=(i,), daemon=True, name=f"repro-exec-{i}")
            for i in range(min(self.workers, max(1, total)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(total):
            if outcomes[index] is None:
                outcomes[index] = UnitOutcome(status=OUTCOME_CANCELLED)
        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------ worker mgmt

    def _slot_health(self, holder: Dict[str, Any]) -> WorkerHealth:
        return self.health.slot(int(holder.get("slot", 0)))

    def _obtain(self, holder: Dict[str, Any]) -> _Worker:
        worker = holder.get("worker")
        if worker is None or worker.proc.poll() is not None:
            if worker is not None:
                self._retire(holder)
            self._slot_health(holder).note_spawn()
            worker = _Worker(self.command)
            holder["worker"] = worker
            with self._workers_lock:
                self._live_workers.append(worker)
            # Warm the fresh worker with a no-op probe so its startup cost
            # (interpreter + imports) is paid here, not inside the first
            # real unit's timeout window.
            worker.request({"kind": "probe"}, WARMUP_TIMEOUT_S)
        return worker

    def _retire(self, holder: Dict[str, Any]) -> None:
        worker = holder.get("worker")
        holder["worker"] = None
        if worker is None:
            return
        with self._workers_lock:
            if worker in self._live_workers:
                self._live_workers.remove(worker)
        worker.kill()

    def _attempt(self, holder: Dict[str, Any], payload: Dict[str, Any]) -> UnitOutcome:
        health = self._slot_health(holder)
        # An open breaker quarantines the slot: hold (cancellably) until
        # the cooldown admits the next half-open probe spawn.
        while not health.breaker.allow():
            if self.cancelled():
                return UnitOutcome(status=OUTCOME_CANCELLED)
            self._cancel_event.wait(0.01)
        start = time.perf_counter()
        try:
            worker = self._obtain(holder)
            response = worker.request(payload, self.timeout_s)
        except TimeoutError:
            self._retire(holder)  # the overrunning unit dies with its worker
            health.record(False, time.perf_counter() - start)
            return UnitOutcome(
                status=OUTCOME_TIMEOUT,
                error=f"unit exceeded {self.timeout_s:g}s timeout",
                duration_s=time.perf_counter() - start,
            )
        except _ProtocolError as exc:
            # Satellite fix: one corrupted line kills (and replaces) the
            # worker instead of poisoning every unit routed to it next.
            self._retire(holder)
            health.record(False, time.perf_counter() - start)
            if self.cancelled():
                return UnitOutcome(status=OUTCOME_CANCELLED)
            return UnitOutcome(
                status=OUTCOME_ERROR,
                error=str(exc),
                duration_s=time.perf_counter() - start,
            )
        except (_WorkerDied, OSError) as exc:
            self._retire(holder)
            health.record(False, time.perf_counter() - start)
            if self.cancelled():
                return UnitOutcome(status=OUTCOME_CANCELLED)
            return UnitOutcome(
                status=OUTCOME_ERROR,
                error=str(exc),
                duration_s=time.perf_counter() - start,
            )
        duration = float(response.get("duration_s", time.perf_counter() - start))
        # Worker health tracks the worker's ability to hold a conversation
        # (spawn, respond in time, speak JSON) -- a unit-level failure the
        # worker reported correctly is the unit's problem, not the slot's.
        health.record(True, duration)
        if response.get("ok"):
            result = deserialize_result(payload["kind"], response.get("result"))
            return UnitOutcome(status=OUTCOME_OK, result=result, duration_s=duration)
        error = response.get("error") or "worker reported failure"
        traceback_text = response.get("traceback")
        return UnitOutcome(
            status=OUTCOME_ERROR,
            error=error,
            traceback=traceback_text,
            exception=WorkerError(error, traceback_text),
            duration_s=duration,
        )
