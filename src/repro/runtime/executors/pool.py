"""Process-pool executor.

The fan-out previously hard-wired into ``ExperimentRunner._run_parallel``,
generalized to arbitrary work units and the shared executor contract.
Outcomes are processed as futures complete (not in submission order), so
a slow first unit no longer delays recording of finished ones, and
``stop_on_error`` cancels outstanding futures on the first failure --
the returned list is still in input order.

Units are submitted in waves of at most ``workers`` so that, when a
``timeout_s`` is set, every outstanding future is actually executing and
its deadline is meaningful. A pool cannot preempt a running task, so an
expired deadline tears the pool down (``shutdown(cancel_futures=True)``)
and a fresh pool resumes the remaining units.

A worker that dies mid-task (``os._exit``, OOM kill, injected crash
fault) breaks the whole ``ProcessPoolExecutor``: every in-flight future
fails with ``BrokenProcessPool`` and the pool refuses further submits.
That is recovered here the same way expired deadlines are -- the broken
pool is torn down, in-flight units are charged one attempt each (the
crasher is indistinguishable from its wave-mates) and re-queued within
their retry budget, and a fresh pool resumes.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from ..health import PERMANENT
from ..jobs import execute_unit
from .base import (
    OUTCOME_CANCELLED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    Executor,
    UnitOutcome,
    outcome_from_exception,
)


def _pool_execute(payload: Dict[str, Any]) -> Tuple[str, Any, Optional[str], float]:
    """Run one unit; top-level so pool workers can unpickle it.

    Returns ``(tag, result_or_exception, traceback_text, duration)`` so the
    parent gets worker-measured durations and full tracebacks for failures
    (a raised exception would only carry the parent's wait time, and
    pickling strips ``__traceback__``).
    """
    start = time.perf_counter()
    try:
        result = execute_unit(payload)
    except Exception as exc:  # noqa: BLE001 - reported per unit
        return (
            OUTCOME_ERROR,
            exc,
            traceback_module.format_exc(),
            time.perf_counter() - start,
        )
    return OUTCOME_OK, result, None, time.perf_counter() - start


class PoolExecutor(Executor):
    """Executor backed by :class:`concurrent.futures.ProcessPoolExecutor`."""

    name = "pool"

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        # Module-attribute lookup on purpose: tests monkeypatch
        # pool.ProcessPoolExecutor to assert the pool is (not) spawned.
        return ProcessPoolExecutor(max_workers=max_workers)

    def run_units(
        self, payloads: List[Dict[str, Any]], *, stop_on_error: bool = False
    ) -> List[UnitOutcome]:
        self._begin_run()
        total = len(payloads)
        outcomes: List[Optional[UnitOutcome]] = [None] * total
        attempts = [0] * total
        queue = deque(range(total))
        failed = False
        pool = self._make_pool(min(self.workers, max(1, total)))
        running: Dict[Any, Tuple[int, float]] = {}
        try:
            while queue or running:
                if self.cancelled() or (failed and stop_on_error):
                    break
                while queue and len(running) < self.workers:
                    index = queue.popleft()
                    future = pool.submit(_pool_execute, payloads[index])
                    running[future] = (index, time.perf_counter())
                wait_timeout = None
                if self.timeout_s is not None:
                    now = time.perf_counter()
                    wait_timeout = max(
                        0.0,
                        min(
                            submitted + self.timeout_s - now
                            for _, submitted in running.values()
                        ),
                    )
                done, _ = wait(set(running), timeout=wait_timeout, return_when=FIRST_COMPLETED)
                if not done:
                    pool, failed = self._expire(pool, running, queue, attempts, outcomes, failed)
                    continue
                broken: List[Tuple[int, BaseException]] = []
                for future in done:
                    index, _submitted = running.pop(future)
                    try:
                        tag, value, tb_text, duration = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died and took the pool with it; settle
                        # the whole wave together below.
                        broken.append((index, exc))
                        continue
                    except Exception as exc:  # noqa: BLE001 - pool/pickling failure
                        tag, value, tb_text, duration = OUTCOME_ERROR, exc, None, 0.0
                    attempts[index] += 1
                    if tag == OUTCOME_OK:
                        outcomes[index] = UnitOutcome(
                            status=OUTCOME_OK,
                            result=value,
                            duration_s=duration,
                            attempts=attempts[index],
                        )
                        continue
                    outcome = outcome_from_exception(value, duration, tb_text)
                    outcome.classification = self.classify_outcome(outcome)
                    if outcome.classification != PERMANENT and attempts[index] <= self.retries:
                        self._backoff(attempts[index])
                        queue.append(index)
                    else:
                        outcome.attempts = attempts[index]
                        outcomes[index] = outcome
                        failed = True
                if broken:
                    pool, failed = self._recover_broken(
                        pool, broken, running, queue, attempts, outcomes, failed
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        for index in range(total):
            if outcomes[index] is None:
                outcomes[index] = UnitOutcome(
                    status=OUTCOME_CANCELLED, attempts=attempts[index]
                )
        return [outcome for outcome in outcomes if outcome is not None]

    def _expire(
        self,
        pool: ProcessPoolExecutor,
        running: Dict[Any, Tuple[int, float]],
        queue: "deque[int]",
        attempts: List[int],
        outcomes: List[Optional[UnitOutcome]],
        failed: bool,
    ) -> Tuple[ProcessPoolExecutor, bool]:
        """Handle expired deadlines: record timeouts, respawn the pool.

        Non-expired in-flight units lose their (partial) attempt without it
        counting against their retry budget and are re-queued first.
        """
        now = time.perf_counter()
        requeue: List[int] = []
        keep: Dict[Any, Tuple[int, float]] = {}
        assert self.timeout_s is not None
        for future, (index, submitted) in running.items():
            if future.done():
                # Finished in the race window; its result survives the pool
                # teardown, so the next wait() round processes it normally.
                keep[future] = (index, submitted)
            elif now - submitted >= self.timeout_s:
                attempts[index] += 1
                if attempts[index] <= self.retries:
                    requeue.append(index)
                else:
                    outcomes[index] = UnitOutcome(
                        status=OUTCOME_TIMEOUT,
                        error=f"unit exceeded {self.timeout_s:g}s timeout",
                        duration_s=now - submitted,
                        attempts=attempts[index],
                    )
                    failed = True
            else:
                # In flight but within deadline: its pool is going away, so
                # the partial attempt is lost -- without charging the retry
                # budget -- and the unit runs again on the fresh pool.
                requeue.append(index)
        pool.shutdown(wait=False, cancel_futures=True)
        for index in sorted(requeue, reverse=True):
            queue.appendleft(index)
        running.clear()
        running.update(keep)
        return self._make_pool(self.workers), failed

    def _recover_broken(
        self,
        pool: ProcessPoolExecutor,
        broken: List[Tuple[int, BaseException]],
        running: Dict[Any, Tuple[int, float]],
        queue: "deque[int]",
        attempts: List[int],
        outcomes: List[Optional[UnitOutcome]],
        failed: bool,
    ) -> Tuple[ProcessPoolExecutor, bool]:
        """Replace a broken pool and settle the wave that died with it.

        Every unit whose future raised ``BrokenProcessPool`` is charged
        one attempt (the actual crasher cannot be told apart from its
        wave-mates) and re-queued within its retry budget; still-running
        futures of the dead pool are re-queued without charge. One
        backoff covers the whole wave -- per-unit sleeps would stack.
        """
        for future, (index, _submitted) in list(running.items()):
            if not future.done():
                queue.appendleft(index)
                continue
            try:
                tag, value, _tb, duration = future.result()
            except Exception as exc:  # noqa: BLE001 - the pool took it down
                broken.append((index, exc))
                continue
            if tag == OUTCOME_OK:
                # Finished in the race window before the pool broke.
                attempts[index] += 1
                outcomes[index] = UnitOutcome(
                    status=OUTCOME_OK,
                    result=value,
                    duration_s=duration,
                    attempts=attempts[index],
                )
            else:
                broken.append((index, value))
        running.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        backed_off = False
        for index, exc in broken:
            attempts[index] += 1
            if attempts[index] <= self.retries:
                if not backed_off:
                    self._backoff(attempts[index])
                    backed_off = True
                queue.append(index)
            else:
                outcome = outcome_from_exception(exc, 0.0, None)
                outcome.attempts = attempts[index]
                outcome.classification = self.classify_outcome(outcome)
                outcomes[index] = outcome
                failed = True
        return self._make_pool(self.workers), failed
