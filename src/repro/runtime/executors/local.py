"""Serial in-process executor.

Runs units one at a time in the calling process -- the baseline backend
every other executor must match result-for-result. With no ``timeout_s``
each unit executes inline (so monkeypatched registries and in-memory
caches behave exactly as in direct calls); with a timeout each attempt
runs on a daemon thread so an overrunning unit can be abandoned.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List

from ..jobs import execute_unit
from .base import (
    OUTCOME_CANCELLED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    Executor,
    UnitOutcome,
    outcome_from_exception,
)


class LocalExecutor(Executor):
    """Serial executor (``workers`` is accepted but always effectively 1)."""

    name = "local"

    def run_units(
        self, payloads: List[Dict[str, Any]], *, stop_on_error: bool = False
    ) -> List[UnitOutcome]:
        self._begin_run()
        outcomes: List[UnitOutcome] = []
        failed = False
        for payload in payloads:
            if self.cancelled() or (failed and stop_on_error):
                outcomes.append(UnitOutcome(status=OUTCOME_CANCELLED))
                continue
            outcome = self._run_with_retries(lambda p=payload: self._attempt(p))
            if outcome.status not in (OUTCOME_OK, OUTCOME_CANCELLED):
                failed = True
            outcomes.append(outcome)
        return outcomes

    def _attempt(self, payload: Dict[str, Any]) -> UnitOutcome:
        if self.timeout_s is None:
            return self._attempt_inline(payload)
        return self._attempt_with_timeout(payload)

    @staticmethod
    def _attempt_inline(payload: Dict[str, Any]) -> UnitOutcome:
        start = time.perf_counter()
        try:
            result = execute_unit(payload)
        except Exception as exc:  # noqa: BLE001 - reported per unit
            import traceback

            return outcome_from_exception(
                exc, time.perf_counter() - start, traceback.format_exc()
            )
        return UnitOutcome(
            status=OUTCOME_OK, result=result, duration_s=time.perf_counter() - start
        )

    def _attempt_with_timeout(self, payload: Dict[str, Any]) -> UnitOutcome:
        box: Dict[str, UnitOutcome] = {}

        def target() -> None:
            box["outcome"] = self._attempt_inline(payload)

        start = time.perf_counter()
        deadline = start + self.timeout_s
        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        while thread.is_alive():
            if self.cancelled():
                # Abandon the attempt thread rather than riding out the
                # full timeout: cancel() arriving mid-unit must return
                # promptly so the job store can release the wave.
                return UnitOutcome(status=OUTCOME_CANCELLED)
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # The attempt thread is abandoned (daemon); in-process
                # Python offers no safe preemption, which is why
                # timeout-sensitive runs belong on the subprocess executor.
                return UnitOutcome(
                    status=OUTCOME_TIMEOUT,
                    error=f"unit exceeded {self.timeout_s:g}s timeout",
                    duration_s=time.perf_counter() - start,
                )
            thread.join(min(0.02, remaining))
        return box["outcome"]
