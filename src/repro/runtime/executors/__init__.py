"""Pluggable execution backends for work units and the experiment grid.

Every backend implements the same contract (see
:class:`~repro.runtime.executors.base.Executor`): take a list of
work-unit payloads, return one outcome per payload in input order, with
shared per-unit timeout, bounded retries with backoff, and cancellation.

* ``local`` -- serial, in process (the reference backend);
* ``pool`` -- a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out;
* ``subprocess`` -- persistent ``repro-eval worker`` child processes
  behind an arbitrary command prefix (the SSH-shaped seam).

:func:`create_executor` is the factory the runner, DSE, CLI, and serve
layers use to resolve an executor name. Any backend can be wrapped in a
:class:`~repro.runtime.faults.FaultyExecutor` to run under a declarative
:class:`~repro.runtime.faults.FaultPlan`; worker health tracking and
error classification live in :mod:`repro.runtime.health`.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from ...errors import ConfigurationError
from .base import (
    OUTCOME_CANCELLED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    Executor,
    UnitOutcome,
    WorkerError,
)
from .local import LocalExecutor
from .pool import PoolExecutor
from .subprocess import SubprocessExecutor

#: Executor classes by CLI/serve-facing name.
EXECUTORS: Dict[str, Type[Executor]] = {
    LocalExecutor.name: LocalExecutor,
    PoolExecutor.name: PoolExecutor,
    SubprocessExecutor.name: SubprocessExecutor,
}


def create_executor(name: str, **options: Any) -> Executor:
    """Instantiate the named executor (``local``/``pool``/``subprocess``).

    Keyword options are forwarded to the constructor (``workers``,
    ``timeout_s``, ``retries``, ``backoff_s``, ``jitter``, ``seed``, and
    for ``subprocess`` also ``command`` and the breaker/health knobs).
    """
    try:
        factory = EXECUTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; known: {', '.join(sorted(EXECUTORS))}"
        ) from None
    return factory(**options)


__all__ = [
    "EXECUTORS",
    "Executor",
    "LocalExecutor",
    "OUTCOME_CANCELLED",
    "OUTCOME_ERROR",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "PoolExecutor",
    "SubprocessExecutor",
    "UnitOutcome",
    "WorkerError",
    "create_executor",
]
