"""Adaptive multi-objective design-space search over kilovariant spaces.

:func:`~repro.runtime.dse.explore` enumerates a configuration grid
exhaustively, which caps practical sweeps at 10^3-10^4 variants even with
the batched costing engines. This module searches instead of enumerating:
an :class:`AdaptiveSearch` proposes whole variant *batches* per
generation and evaluates them through the existing fast substrate --
:func:`~repro.apps.timing.estimate_cycles_batch` for costing (with the
energy model attached), ``effective_bank_throughput_batch`` plus the
``ThroughputStore`` as the shared cross-generation microbenchmark cache,
and the memory-budget planner so generations stream flat-memory -- and
drives the proposals from multi-objective costs over (cycles gmean, area,
energy gmean).

Two strategies ship behind one :class:`SearchStrategy` protocol:

* :class:`SuccessiveHalving` -- evaluate a wide rung on a cheap profile
  subset, promote the Pareto-best survivors to progressively fuller
  costing, finishing on the full profile set;
* :class:`Evolutionary` -- a seeded population (default design point plus
  axis extremes) evolved by tournament selection, uniform crossover, and
  per-axis mutation, always at full fidelity.

Every generation is committed to a :class:`SearchStore` (JSON state files
keyed by the search's content hash), so a killed search -- whether driven
directly from ``repro-eval dse --search`` or through the job layer's
``dse_search`` units -- resumes mid-frontier with zero re-evaluation of
committed generations. ``GET /frontier`` on the serve layer answers from
the store's latest persisted result.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._budget import resolve_memory_budget
from ..apps.profile import WorkloadProfile
from ..apps.timing import CapstanPlatform, iter_cycles_batches
from ..core.area import capstan_area
from ..errors import ConfigurationError
from ..sim.stats import geometric_mean
from .cache import code_fingerprint
from .dse import pareto_frontier
from .sweep import _apply_axis, axis_value_to_json, parse_axis_value

#: Objectives the search can minimize, in canonical order.
OBJECTIVES = ("cycles", "area", "energy")

#: A design point: one value index per search-space axis.
Combo = Tuple[int, ...]

#: Default kilovariant search space (110,592 points): every structural
#: axis the SpMU/CU models expose plus the platform-policy axes. Lanes and
#: banks stay powers of two (``CapstanConfig.validate`` requires it).
DEFAULT_SEARCH_AXES: Dict[str, Tuple[Any, ...]] = {
    "lanes": (4, 8, 16, 32),
    "banks": (8, 16, 32, 64),
    "compute_units": (64, 100, 144, 196, 256, 324, 400, 484),
    "queue_depth": (4, 8, 16, 32),
    "crossbar_inputs": (8, 16, 32, 64),
    "memory": ("ddr4", "hbm2", "hbm2e"),
    "ordering": ("unordered", "address-ordered", "fully-ordered"),
    "bank_mapping": ("hash", "linear"),
    "allocator": ("separable", "greedy", "arbitrated"),
}


def _value_label(value: Any) -> str:
    return str(getattr(value, "value", value))


@dataclass(frozen=True)
class SearchSpace:
    """A discrete design space: an ordered list of axes with candidate
    values, addressed by per-axis value indices (a :data:`Combo`)."""

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]

    @classmethod
    def from_axes(cls, axes: Mapping[str, Iterable[Any]]) -> "SearchSpace":
        """Build a space from ``{axis: values}``, parsing CLI/JSON values
        through the shared sweep parsers."""
        parsed: List[Tuple[str, Tuple[Any, ...]]] = []
        for axis, values in axes.items():
            seen: List[Any] = []
            for value in values:
                native = parse_axis_value(axis, value)
                if native not in seen:
                    seen.append(native)
            if not seen:
                raise ConfigurationError(f"search axis {axis!r} has no values")
            parsed.append((axis, tuple(seen)))
        if not parsed:
            raise ConfigurationError("a search space needs at least one axis")
        return cls(axes=tuple(parsed))

    @property
    def names(self) -> List[str]:
        """Axis names in declaration order."""
        return [axis for axis, _ in self.axes]

    @property
    def size(self) -> int:
        """Number of points in the cartesian space."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def combo_values(self, combo: Combo) -> Dict[str, Any]:
        """The native axis values of one design point."""
        return {axis: values[i] for (axis, values), i in zip(self.axes, combo)}

    def variant_name(self, combo: Combo) -> str:
        """The sweep-style variant label of one design point."""
        return "-".join(
            _value_label(values[i]) for (_, values), i in zip(self.axes, combo)
        )

    def platform(
        self, combo: Combo, base: Optional[CapstanPlatform] = None
    ) -> CapstanPlatform:
        """Materialize one design point as a validated platform."""
        platform = base if base is not None else CapstanPlatform()
        for (axis, values), i in zip(self.axes, combo):
            platform = _apply_axis(platform, axis, values[i])
        from dataclasses import replace

        platform = replace(platform, name=self.variant_name(combo))
        platform.config.validate()
        return platform

    def random_combo(self, rng: np.random.Generator) -> Combo:
        """A uniformly random design point."""
        return tuple(int(rng.integers(len(values))) for _, values in self.axes)

    def mutate(self, combo: Combo, rng: np.random.Generator, rate: float) -> Combo:
        """Resample each gene with probability ``rate`` (at least one)."""
        genes = list(combo)
        mutable = [k for k, (_, values) in enumerate(self.axes) if len(values) > 1]
        if not mutable:
            return combo
        changed = False
        for k in mutable:
            if rng.random() < rate:
                options = len(self.axes[k][1])
                shift = 1 + int(rng.integers(options - 1))
                genes[k] = (genes[k] + shift) % options
                changed = True
        if not changed:
            k = mutable[int(rng.integers(len(mutable)))]
            options = len(self.axes[k][1])
            shift = 1 + int(rng.integers(options - 1))
            genes[k] = (genes[k] + shift) % options
        return tuple(genes)

    def crossover(self, a: Combo, b: Combo, rng: np.random.Generator) -> Combo:
        """Uniform per-gene crossover of two design points."""
        return tuple(
            a[k] if rng.random() < 0.5 else b[k] for k in range(len(self.axes))
        )

    def default_combo(self, base: Optional[CapstanPlatform] = None) -> Combo:
        """The point closest to ``base`` (the paper's design point by
        default): per axis, the index of the base's current value when it
        is a candidate, else the middle candidate."""
        platform = base if base is not None else CapstanPlatform()
        current: Dict[str, Any] = {
            "ordering": platform.ordering,
            "bank_mapping": platform.bank_mapping,
            "allocator": platform.allocator,
            "ideal_sram": platform.ideal_sram,
            "memory": platform.config.memory,
            "shuffle": platform.config.shuffle.mode,
            "lanes": platform.config.lanes,
            "compute_units": platform.config.compute_units,
            "banks": platform.config.spmu.banks,
            "queue_depth": platform.config.spmu.queue_depth,
            "crossbar_inputs": platform.config.spmu.crossbar_inputs,
        }
        combo = []
        for axis, values in self.axes:
            value = current.get(axis)
            combo.append(
                values.index(value) if value in values else len(values) // 2
            )
        return tuple(combo)

    def seed_combos(self, base: Optional[CapstanPlatform] = None) -> List[Combo]:
        """Deterministic seed points: the default design point plus, per
        axis, the default with that axis pushed to each extreme."""
        default = self.default_combo(base)
        seeds = [default]
        for k, (_, values) in enumerate(self.axes):
            for extreme in (0, len(values) - 1):
                candidate = default[:k] + (extreme,) + default[k + 1 :]
                if candidate not in seeds:
                    seeds.append(candidate)
        return seeds

    def to_json(self) -> Dict[str, List[Any]]:
        """JSON form of the axes (enums collapse to their values)."""
        return {
            axis: [axis_value_to_json(v) for v in values] for axis, values in self.axes
        }


# --------------------------------------------------------------------------- #
# Multi-objective utilities
# --------------------------------------------------------------------------- #


def scalarize(
    costs: np.ndarray, weights: Optional[Sequence[float]] = None
) -> np.ndarray:
    """Log-normalized weighted sum of a (points x objectives) cost matrix.

    Each objective is normalized by the population's best value before the
    log, so the scalar is scale-free: a point one "doubling" worse than
    the per-objective best in every objective scores ``log(2)`` regardless
    of the objectives' units. Used to rank points *within* a Pareto rank;
    frontier membership itself stays scalarization-free.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 2:
        raise ConfigurationError("costs must be a 2-D (points x objectives) array")
    if costs.shape[0] == 0:
        return np.zeros(0)
    w = (
        np.ones(costs.shape[1])
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if w.shape != (costs.shape[1],) or np.any(w < 0) or w.sum() <= 0:
        raise ConfigurationError("weights must be non-negative, one per objective")
    floor = np.maximum(costs, 1e-12)
    best = floor.min(axis=0)
    return np.log(floor / best) @ (w / w.sum())


def pareto_ranks(costs: np.ndarray) -> np.ndarray:
    """Non-dominated sorting ranks (0 = Pareto frontier, peeled layers)."""
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.shape[0]
    ranks = np.zeros(n, dtype=np.int64)
    remaining = np.arange(n)
    layer = 0
    while remaining.size:
        front = pareto_frontier(costs[remaining])
        ranks[remaining[front]] = layer
        remaining = np.delete(remaining, front)
        layer += 1
    return ranks


def rank_order(costs: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Indices of ``costs`` from best to worst: by Pareto rank, scalarized
    score within a rank, and input order as the final (stable) tie-break."""
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    ranks = pareto_ranks(costs)
    scores = scalarize(costs, weights)
    return np.lexsort((np.arange(costs.shape[0]), scores, ranks))


def hypervolume(costs: np.ndarray, reference: Sequence[float]) -> float:
    """Exact hypervolume dominated by ``costs`` up to ``reference``.

    All objectives are minimized; points not strictly better than the
    reference in every objective contribute nothing. Exact for any
    dimension via slab decomposition on the last objective (intended for
    frontier-sized point sets, not thousands of points).
    """
    costs = np.asarray(costs, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if costs.ndim != 2 or reference.shape != (costs.shape[1],):
        raise ConfigurationError(
            "hypervolume needs (points x objectives) costs and a matching reference"
        )
    points = costs[np.all(costs < reference, axis=1)]
    if points.shape[0] == 0:
        return 0.0
    points = points[pareto_frontier(points)]
    return _hypervolume(points, reference)


def _hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume of mutually non-dominated points below ``reference``."""
    d = points.shape[1]
    if d == 1:
        return float(reference[0] - points[:, 0].min())
    if d == 2:
        order = np.lexsort((points[:, 1], points[:, 0]))
        pts = points[order]
        volume = 0.0
        for i in range(len(pts)):
            right = pts[i + 1, 0] if i + 1 < len(pts) else reference[0]
            volume += (right - pts[i, 0]) * (reference[1] - pts[i, 1])
        return float(volume)
    volume = 0.0
    zs = np.unique(points[:, -1])
    uppers = np.append(zs[1:], reference[-1])
    for z, upper in zip(zs, uppers):
        slab = points[points[:, -1] <= z][:, :-1]
        slab = slab[pareto_frontier(slab)]
        volume += _hypervolume(slab, reference[:-1]) * (upper - z)
    return float(volume)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Generation:
    """One proposed batch: design points plus the evaluation fidelity
    (fraction of the profile set to cost them on)."""

    combos: Tuple[Combo, ...]
    fidelity: float = 1.0


class SearchStrategy:
    """Protocol for generation-based strategies.

    A strategy proposes one :class:`Generation` at a time and observes the
    evaluated costs; all randomness comes from the engine's RNG and all
    cross-generation memory must round-trip through ``state_dict`` /
    ``load_state`` so a search resumes exactly where it stopped.
    """

    name: str = "strategy"

    def total_generations(self) -> int:
        raise NotImplementedError

    def propose(
        self, generation: int, rng: np.random.Generator, engine: "AdaptiveSearch"
    ) -> Generation:
        raise NotImplementedError

    def observe(self, generation: int, combos: Sequence[Combo], costs: np.ndarray) -> None:
        """Record one generation's evaluated costs (optional)."""

    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state(self, state: Dict[str, Any]) -> None:
        pass


def _fill_random(
    space: SearchSpace,
    rng: np.random.Generator,
    target: int,
    taken: set,
    combos: List[Combo],
) -> None:
    """Top ``combos`` up to ``target`` distinct points (best effort)."""
    attempts = 0
    limit = max(64, 20 * target)
    while len(combos) < target and attempts < limit:
        candidate = space.random_combo(rng)
        attempts += 1
        if candidate in taken:
            continue
        taken.add(candidate)
        combos.append(candidate)


class SuccessiveHalving(SearchStrategy):
    """Wide-to-narrow rungs with cheap-to-full costing.

    Rung 0 evaluates ``population`` points (seeds plus random samples) on
    a small profile subset; each following rung keeps the Pareto-best
    ``1/eta`` of the previous rung and costs them on a geometrically
    growing subset, ending with full-grid costing on the final rung. Only
    final-rung (full-fidelity) points enter the result archive.
    """

    name = "halving"

    def __init__(
        self,
        population: int = 256,
        generations: int = 4,
        eta: int = 4,
        min_fidelity: float = 0.1,
        min_rung: int = 4,
    ) -> None:
        if population < 1 or generations < 1 or eta < 2:
            raise ConfigurationError("halving needs population/generations >= 1, eta >= 2")
        self.population = population
        self.generations = generations
        self.eta = eta
        self.min_rung = min_rung
        if generations == 1:
            self.fidelities = [1.0]
        else:
            ratio = (1.0 / min_fidelity) ** (1.0 / (generations - 1))
            self.fidelities = [
                min(1.0, min_fidelity * ratio**r) for r in range(generations)
            ]
            self.fidelities[-1] = 1.0
        self._ranked: List[Combo] = []

    def total_generations(self) -> int:
        return self.generations

    def rung_width(self, generation: int) -> int:
        return max(self.min_rung, self.population // (self.eta**generation))

    def propose(
        self, generation: int, rng: np.random.Generator, engine: "AdaptiveSearch"
    ) -> Generation:
        width = min(self.rung_width(generation), engine.space.size)
        if generation == 0:
            combos = list(engine.space.seed_combos(engine.base))[:width]
            _fill_random(engine.space, rng, width, set(combos), combos)
        else:
            if not self._ranked:
                raise ConfigurationError(
                    "halving cannot promote: no observed rung to draw from"
                )
            combos = self._ranked[:width]
        return Generation(combos=tuple(combos), fidelity=self.fidelities[generation])

    def observe(self, generation: int, combos: Sequence[Combo], costs: np.ndarray) -> None:
        order = rank_order(costs)
        self._ranked = [combos[i] for i in order]

    def state_dict(self) -> Dict[str, Any]:
        return {"ranked": [list(c) for c in self._ranked]}

    def load_state(self, state: Dict[str, Any]) -> None:
        self._ranked = [tuple(c) for c in state.get("ranked", [])]


class Evolutionary(SearchStrategy):
    """Seeded evolutionary loop at full costing fidelity.

    Generation 0 is the seed set (default design point plus axis
    extremes) topped up with random points; later generations breed
    ``population`` children from the full archive by tournament selection,
    uniform crossover over the structural and platform axes, and per-axis
    mutation. Children duplicating an already-evaluated point are
    discarded before costing, so every archive entry is evaluated once.
    """

    name = "evolve"

    def __init__(
        self,
        population: int = 64,
        generations: int = 8,
        mutation: float = 0.25,
        crossover: float = 0.6,
        tournament: int = 3,
    ) -> None:
        if population < 2 or generations < 1:
            raise ConfigurationError("evolve needs population >= 2, generations >= 1")
        if not 0.0 < mutation <= 1.0:
            raise ConfigurationError("mutation rate must be in (0, 1]")
        self.population = population
        self.generations = generations
        self.mutation = mutation
        self.crossover = crossover
        self.tournament = max(2, tournament)

    def total_generations(self) -> int:
        return self.generations

    def propose(
        self, generation: int, rng: np.random.Generator, engine: "AdaptiveSearch"
    ) -> Generation:
        target = min(self.population, max(0, engine.space.size - len(engine.archive_combos())))
        taken = set(engine.archive_combos())
        combos: List[Combo] = []
        if generation == 0:
            for seed in engine.space.seed_combos(engine.base):
                if len(combos) >= target:
                    break
                if seed not in taken:
                    taken.add(seed)
                    combos.append(seed)
        else:
            parents, costs = engine.archive()
            order = rank_order(costs)
            # order maps best->worst; invert to a rank per archive index.
            rank_of = np.empty(len(parents), dtype=np.int64)
            rank_of[order] = np.arange(len(parents))

            def select() -> Combo:
                picks = rng.integers(len(parents), size=self.tournament)
                return parents[int(picks[int(np.argmin(rank_of[picks]))])]

            attempts = 0
            limit = 20 * max(1, target)
            while len(combos) < target and attempts < limit:
                attempts += 1
                if len(parents) >= 2 and rng.random() < self.crossover:
                    child = engine.space.crossover(select(), select(), rng)
                else:
                    child = select()
                child = engine.space.mutate(child, rng, self.mutation)
                if child in taken:
                    continue
                taken.add(child)
                combos.append(child)
        _fill_random(engine.space, rng, target, taken, combos)
        return Generation(combos=tuple(combos), fidelity=1.0)


def make_strategy(
    name: str,
    *,
    population: Optional[int] = None,
    generations: Optional[int] = None,
    **kwargs: Any,
) -> SearchStrategy:
    """Build a strategy by CLI name (``halving`` or ``evolve``)."""
    options: Dict[str, Any] = dict(kwargs)
    if population is not None:
        options["population"] = population
    if generations is not None:
        options["generations"] = generations
    if name == "halving":
        return SuccessiveHalving(**options)
    if name == "evolve":
        return Evolutionary(**options)
    raise ConfigurationError(f"unknown search strategy {name!r}; known: halving, evolve")


# --------------------------------------------------------------------------- #
# Persistent store
# --------------------------------------------------------------------------- #


def _default_store_root() -> Path:
    override = os.environ.get("REPRO_SEARCH_STORE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "search"


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, indent=2)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SearchStore:
    """Durable per-generation search states plus the latest final result.

    Layout under the root (``REPRO_SEARCH_STORE`` or
    ``~/.cache/repro/search``)::

        <key>/gen-0007.json   # engine state after generation 7 committed
        <key>/result.json     # final SearchResult.to_dict()
        latest.json           # copy of the most recent result.json

    States are written atomically (write + rename), so a SIGKILL between
    generations leaves the last committed state intact and a resumed
    search replays nothing that was committed.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else _default_store_root()

    def _search_dir(self, key: str) -> Path:
        return self.root / key

    def state_path(self, key: str, generation: int) -> Path:
        return self._search_dir(key) / f"gen-{generation:04d}.json"

    def committed_generations(self, key: str) -> List[int]:
        """Generations with a committed state, ascending."""
        directory = self._search_dir(key)
        if not directory.is_dir():
            return []
        out = []
        for path in directory.glob("gen-*.json"):
            try:
                out.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def save_state(self, key: str, generation: int, state: Dict[str, Any]) -> Path:
        path = self.state_path(key, generation)
        _atomic_write_json(path, state)
        return path

    def load_state(self, key: str, generation: int) -> Optional[Dict[str, Any]]:
        path = self.state_path(key, generation)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def load_latest_state(
        self, key: str
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest committed (generation, state), or ``None``."""
        for generation in reversed(self.committed_generations(key)):
            state = self.load_state(key, generation)
            if state is not None:
                return generation, state
        return None

    def save_result(self, key: str, result: Dict[str, Any]) -> Path:
        payload = dict(result)
        payload["search_key"] = key
        _atomic_write_json(self._search_dir(key) / "result.json", payload)
        _atomic_write_json(self.root / "latest.json", payload)
        return self.root / "latest.json"

    def load_result(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._search_dir(key) / "result.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def load_latest_result(self) -> Optional[Dict[str, Any]]:
        path = self.root / "latest.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None


def search_key(
    *,
    axes: Mapping[str, Iterable[Any]],
    strategy: str,
    params: Mapping[str, Any],
    seed: int,
    objectives: Sequence[str],
    tasks: Sequence[Tuple[str, str]],
) -> str:
    """Content hash identifying one search: space, strategy, parameters,
    seed, objectives, profile coordinates, and the code fingerprint."""
    material = {
        # A list of pairs, not a mapping: axis order shapes the space
        # (gene order, variant names), so it must shape the key.
        "axes": [[k, [axis_value_to_json(v) for v in vs]] for k, vs in axes.items()],
        "strategy": strategy,
        "params": {k: params[k] for k in sorted(params)},
        "seed": seed,
        "objectives": list(objectives),
        "tasks": [list(t) for t in tasks],
        "code": code_fingerprint(),
    }
    digest = hashlib.sha256(
        json.dumps(material, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest[:16]


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #


@dataclass
class SearchResult:
    """Outcome of one adaptive search: the full-fidelity archive with its
    Pareto frontier and the evaluation budget that produced it."""

    strategy: str
    seed: int
    objectives: Tuple[str, ...]
    axes: Dict[str, List[Any]]
    space_size: int
    generations: int
    evaluations: float
    tasks: List[Tuple[str, str]]
    combos: List[Combo]
    names: List[str]
    costs: np.ndarray
    axis_values: List[Dict[str, Any]]
    frontier_indices: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=np.float64).reshape(
            len(self.combos), len(self.objectives)
        )
        if self.frontier_indices is None:
            self.frontier_indices = (
                pareto_frontier(self.costs)
                if len(self.combos)
                else np.zeros(0, dtype=np.int64)
            )

    def frontier(self) -> Tuple[str, ...]:
        """Variant names on the Pareto frontier, in archive order."""
        return tuple(self.names[i] for i in self.frontier_indices)

    def rows(self) -> List[Dict[str, Any]]:
        """One report row per evaluated (full-fidelity) point."""
        on_frontier = set(int(i) for i in self.frontier_indices)
        rows = []
        for i, name in enumerate(self.names):
            row: Dict[str, Any] = {"name": name}
            for j, objective in enumerate(self.objectives):
                row[objective] = float(self.costs[i, j])
            row["pareto"] = i in on_frontier
            rows.append(row)
        return rows

    def frontier_rows(self) -> List[Dict[str, Any]]:
        """Report rows for the frontier only, sorted by the first objective."""
        rows = [r for r in self.rows() if r["pareto"]]
        rows.sort(key=lambda r: r[self.objectives[0]])
        return rows

    def hypervolume(self, reference: Sequence[float]) -> float:
        """Frontier hypervolume against a reference point."""
        return hypervolume(self.costs, reference)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (byte-identical for identical searches)."""
        points = []
        on_frontier = set(int(i) for i in self.frontier_indices)
        for i, combo in enumerate(self.combos):
            points.append(
                {
                    "name": self.names[i],
                    "axes": {
                        axis: axis_value_to_json(value)
                        for axis, value in self.axis_values[i].items()
                    },
                    "costs": {
                        objective: float(self.costs[i, j])
                        for j, objective in enumerate(self.objectives)
                    },
                    "pareto": i in on_frontier,
                }
            )
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "axes": self.axes,
            "space_size": self.space_size,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "tasks": [list(t) for t in self.tasks],
            "points": points,
            "frontier": [self.names[i] for i in self.frontier_indices],
        }


class AdaptiveSearch:
    """Generation-stepped multi-objective search over a :class:`SearchSpace`.

    The engine owns the RNG, the evaluation caches, and the persistence;
    the strategy only proposes batches and ranks survivors. Evaluation
    counts are tracked in *full-grid equivalents*: costing a batch on a
    profile subset charges ``len(batch) * subset / total`` evaluations, so
    budgets compare one-to-one with exhaustive enumeration.

    When a :class:`SearchStore` is attached, every committed generation is
    persisted and a new engine constructed with the same parameters
    resumes from the newest committed state -- re-evaluating nothing.
    """

    def __init__(
        self,
        space: SearchSpace,
        strategy: SearchStrategy,
        profiles: Sequence[WorkloadProfile],
        *,
        base: Optional[CapstanPlatform] = None,
        objectives: Sequence[str] = OBJECTIVES,
        seed: int = 0,
        memory_budget: Optional[int] = None,
        store: Optional[SearchStore] = None,
        key: Optional[str] = None,
    ) -> None:
        if not profiles:
            raise ConfigurationError("adaptive search needs at least one profile")
        for objective in objectives:
            if objective not in OBJECTIVES:
                raise ConfigurationError(
                    f"unknown objective {objective!r}; known: {', '.join(OBJECTIVES)}"
                )
        if not objectives:
            raise ConfigurationError("adaptive search needs at least one objective")
        self.space = space
        self.strategy = strategy
        self.profiles = list(profiles)
        self.tasks = [(p.app, p.dataset) for p in self.profiles]
        self.base = base
        self.objectives = tuple(objectives)
        self.seed = seed
        self.memory_budget = resolve_memory_budget(memory_budget)
        self.store = store
        self.rng = np.random.default_rng(seed)
        self.generation = 0
        self.evaluations = 0.0
        self._full: Dict[Combo, Tuple[float, ...]] = {}
        self._partial: Dict[float, Dict[Combo, Tuple[float, ...]]] = {}
        self._area_cache: Dict[Combo, float] = {}
        if key is None:
            key = search_key(
                axes=dict(space.to_json()),
                strategy=strategy.name,
                params=_strategy_params(strategy),
                seed=seed,
                objectives=self.objectives,
                tasks=self.tasks,
            )
        self.key = key
        if self.store is not None:
            latest = self.store.load_latest_state(self.key)
            if latest is not None:
                generation, state = latest
                if generation <= self.strategy.total_generations():
                    self._load_state(state)

    # -- persistence -------------------------------------------------------- #

    def state_dict(self) -> Dict[str, Any]:
        """The engine's full resumable state (JSON-safe)."""
        return {
            "generation": self.generation,
            "evaluations": self.evaluations,
            "rng_state": self.rng.bit_generator.state,
            "full": [[list(c), list(v)] for c, v in self._full.items()],
            "partial": {
                repr(fraction): [[list(c), list(v)] for c, v in cache.items()]
                for fraction, cache in self._partial.items()
            },
            "strategy": self.strategy.state_dict(),
            "objectives": list(self.objectives),
            "seed": self.seed,
        }

    def _load_state(self, state: Dict[str, Any]) -> None:
        self.generation = int(state["generation"])
        self.evaluations = float(state["evaluations"])
        self.rng.bit_generator.state = state["rng_state"]
        self._full = {
            tuple(combo): tuple(costs) for combo, costs in state.get("full", [])
        }
        self._partial = {
            float(fraction): {
                tuple(combo): tuple(costs) for combo, costs in entries
            }
            for fraction, entries in state.get("partial", {}).items()
        }
        self.strategy.load_state(state.get("strategy", {}))

    # -- archive access (used by strategies) -------------------------------- #

    def archive_combos(self) -> List[Combo]:
        """Full-fidelity evaluated points, in evaluation order."""
        return list(self._full)

    def archive(self) -> Tuple[List[Combo], np.ndarray]:
        """The full-fidelity archive as (combos, costs)."""
        combos = list(self._full)
        costs = np.array([self._full[c] for c in combos], dtype=np.float64).reshape(
            len(combos), len(self.objectives)
        )
        return combos, costs

    # -- evaluation --------------------------------------------------------- #

    def _subset_indices(self, fraction: float) -> List[int]:
        total = len(self.profiles)
        count = max(1, int(math.ceil(total * fraction)))
        if count >= total:
            return list(range(total))
        if count == 1:
            return [0]
        picked = sorted({int(round(i * (total - 1) / (count - 1))) for i in range(count)})
        return picked

    def _evaluate(self, combos: Sequence[Combo], fraction: float) -> np.ndarray:
        """Costs of a batch at one fidelity, through the caches."""
        fraction = min(max(fraction, 0.0), 1.0)
        full = fraction >= 1.0
        cache = self._full if full else self._partial.setdefault(fraction, {})
        fresh = [c for c in combos if c not in cache]
        if fresh:
            indices = self._subset_indices(fraction)
            subset = [self.profiles[i] for i in indices]
            platforms = [self.space.platform(c, self.base) for c in fresh]
            need_energy = "energy" in self.objectives
            need_cycles = need_energy or "cycles" in self.objectives
            cycle_gmeans: List[float] = []
            energy_gmeans: List[float] = []
            if need_cycles:
                for _chunk, batch in iter_cycles_batches(
                    subset,
                    platforms,
                    memory_budget=self.memory_budget,
                    energy=need_energy,
                ):
                    for j in range(batch.cycles.shape[1]):
                        cycle_gmeans.append(
                            geometric_mean([float(c) for c in batch.cycles[:, j]])
                        )
                        if need_energy:
                            energy_gmeans.append(
                                geometric_mean(
                                    [float(e) for e in batch.energy_mj[:, j]]
                                )
                            )
            for i, combo in enumerate(fresh):
                costs = []
                for objective in self.objectives:
                    if objective == "cycles":
                        costs.append(cycle_gmeans[i])
                    elif objective == "energy":
                        costs.append(energy_gmeans[i])
                    else:
                        area = self._area_cache.get(combo)
                        if area is None:
                            area = capstan_area(platforms[i].config).total_mm2
                            self._area_cache[combo] = area
                        costs.append(area)
                cache[combo] = tuple(costs)
            self.evaluations += len(fresh) * len(indices) / len(self.profiles)
        return np.array([cache[c] for c in combos], dtype=np.float64).reshape(
            len(combos), len(self.objectives)
        )

    # -- stepping ----------------------------------------------------------- #

    @property
    def done(self) -> bool:
        """Whether every generation has been committed."""
        return self.generation >= self.strategy.total_generations()

    def step(self) -> Dict[str, Any]:
        """Run and commit one generation; returns a progress summary."""
        if self.done:
            raise ConfigurationError("search already finished; nothing to step")
        current = self.generation
        proposal = self.strategy.propose(current, self.rng, self)
        costs = self._evaluate(proposal.combos, proposal.fidelity)
        self.strategy.observe(current, proposal.combos, costs)
        self.generation = current + 1
        if self.store is not None:
            self.store.save_state(self.key, self.generation, self.state_dict())
        _, archive_costs = self.archive()
        frontier_size = (
            len(pareto_frontier(archive_costs)) if len(archive_costs) else 0
        )
        return {
            "generation": current,
            "proposed": len(proposal.combos),
            "fidelity": proposal.fidelity,
            "evaluations": self.evaluations,
            "archive": len(self._full),
            "frontier": frontier_size,
        }

    def result(self) -> SearchResult:
        """The current full-fidelity archive as a :class:`SearchResult`."""
        combos, costs = self.archive()
        return SearchResult(
            strategy=self.strategy.name,
            seed=self.seed,
            objectives=self.objectives,
            axes=dict(self.space.to_json()),
            space_size=self.space.size,
            generations=self.generation,
            evaluations=self.evaluations,
            tasks=list(self.tasks),
            combos=combos,
            names=[self.space.variant_name(c) for c in combos],
            costs=costs,
            axis_values=[self.space.combo_values(c) for c in combos],
        )

    def run(self) -> SearchResult:
        """Step to completion, persist the final result, and return it."""
        while not self.done:
            self.step()
        result = self.result()
        if self.store is not None:
            self.store.save_result(self.key, result.to_dict())
        return result


def _strategy_params(strategy: SearchStrategy) -> Dict[str, Any]:
    """The strategy's identifying parameters (for the search key)."""
    if isinstance(strategy, SuccessiveHalving):
        return {
            "population": strategy.population,
            "generations": strategy.generations,
            "eta": strategy.eta,
            "min_rung": strategy.min_rung,
            "fidelities": [round(f, 6) for f in strategy.fidelities],
        }
    if isinstance(strategy, Evolutionary):
        return {
            "population": strategy.population,
            "generations": strategy.generations,
            "mutation": strategy.mutation,
            "crossover": strategy.crossover,
            "tournament": strategy.tournament,
        }
    return {"name": strategy.name}
