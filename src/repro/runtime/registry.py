"""Decorator-based application registry.

Every application module in :mod:`repro.apps` registers an :class:`AppSpec`
describing how to evaluate one application variant: its Table 12 name, the
Table 6 datasets it runs on, an input-preparation callable, and the
functional run callable. The registry replaces the three hand-maintained
structures the eval layer used to carry (``APP_ORDER``, ``APP_DATASETS``,
and a chain of per-app input helpers), so adding a new application or
dataset is a single registration:

    @register_app("spmv-csr", datasets=LINEAR_ALGEBRA_DATASETS,
                  run=spmv_csr, order=10)
    def _prepare(dataset: str, context: RunContext) -> dict:
        ...
        return {"matrix": csr, "vector": vector, "dataset": name}

This module deliberately imports nothing from :mod:`repro.apps` at import
time: the app modules import the registry (to register themselves), not the
other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..apps.profile import WorkloadProfile
    from ..config import ScannerConfig


class RegistryError(ValueError):
    """Raised for unknown applications or conflicting registrations."""


#: All tunable RunContext parameter names (scanner overrides are separate).
CONTEXT_PARAMETERS = ("scale", "pagerank_iterations", "conv_scale")


@dataclass(frozen=True)
class RunContext:
    """Everything that parameterizes one functional evaluation run.

    The context, together with the application name, the dataset name, and
    the code fingerprint, fully determines a
    :class:`~repro.apps.profile.WorkloadProfile`; it is therefore also the
    cache-key material for :class:`~repro.runtime.cache.ProfileCache`.

    Attributes:
        scale: Dataset scale factor for the Table 6 stand-ins.
        pagerank_iterations: Power iterations per PageRank run.
        conv_scale: Channel scale for the ResNet layers.
        scanner: Optional scanner-configuration override; when set, the
            application is profiled as if the default scanner had this
            configuration (used by the Figure 6 sweep).
        backend: Profiling-kernel backend every application runs with:
            ``"vectorized"`` (default, batch numpy kernels) or
            ``"reference"`` (the per-element loop implementations the
            vectorized kernels are validated against).
    """

    scale: float = 1.0 / 64.0
    pagerank_iterations: int = 2
    conv_scale: float = 0.125
    scanner: Optional["ScannerConfig"] = None
    backend: str = "vectorized"

    def fingerprint(self, fields: Optional[Tuple[str, ...]] = None) -> Dict[str, Any]:
        """A JSON-serializable dict identifying this context for caching.

        Args:
            fields: The parameter names to include (an application's
                :attr:`AppSpec.context_fields`); ``None`` includes all of
                them. A scanner override is always included -- it changes
                every application's scan-cost profile -- and so is the
                kernel backend: the two backends must produce identical
                profiles, but cached entries still record which kernels
                computed them so an equivalence regression can never be
                masked (or caused) by a stale cache hit.
        """
        import dataclasses

        selected = CONTEXT_PARAMETERS if fields is None else fields
        material: Dict[str, Any] = {name: getattr(self, name) for name in selected}
        material["backend"] = self.backend
        if self.scanner is not None:
            material["scanner"] = dataclasses.asdict(self.scanner)
        return material


@dataclass(frozen=True)
class AppSpec:
    """One registered application variant.

    Attributes:
        name: Application name as reported in the tables (e.g. ``"spmv-csr"``).
        datasets: Dataset names the application is evaluated on (Table 6).
        prepare: ``prepare(dataset, context) -> kwargs`` building the inputs
            of one functional run.
        run: The application entry point, called as ``run(**kwargs)``;
            returns an :class:`~repro.apps.common.AppRun` (or anything with a
            ``profile`` attribute, or a bare profile).
        order: Sort key giving the Table 12 application order.
        context_fields: The :class:`RunContext` parameters this application's
            profile actually depends on; the profile cache fingerprints only
            these, so changing e.g. ``pagerank_iterations`` does not
            invalidate non-PageRank entries. ``None`` means all of them.
    """

    name: str
    datasets: Tuple[str, ...]
    prepare: Callable[[str, RunContext], Mapping[str, Any]]
    run: Callable[..., Any]
    order: int = 1000
    context_fields: Optional[Tuple[str, ...]] = CONTEXT_PARAMETERS

    def execute(self, dataset: str, context: Optional[RunContext] = None) -> "WorkloadProfile":
        """Prepare inputs and run this application once on ``dataset``."""
        context = context or RunContext()
        inputs = dict(self.prepare(dataset, context))
        if _accepts_backend(self.run):
            inputs.setdefault("backend", context.backend)
        if context.scanner is None:
            result = self.run(**inputs)
        else:
            result = _run_with_scanner(self.run, inputs, context.scanner)
        profile = getattr(result, "profile", result)
        return profile


def _accepts_backend(run: Callable[..., Any]) -> bool:
    """Whether a run callable takes the ``backend`` keyword.

    Every application in :mod:`repro.apps` does; ad-hoc callables registered
    by tests or notebooks may not, and keep working without it.
    """
    import inspect

    try:
        parameters = inspect.signature(run).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if "backend" in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())


def _run_with_scanner(run: Callable[..., Any], inputs: Mapping[str, Any], scanner) -> Any:
    """Run an application with the default scanner configuration overridden.

    The scan-cost helpers construct their default configuration at call
    time, so substituting the constructor re-profiles the application as if
    the hardware had the swept scanner (Figure 6).
    """
    from ..apps import scan_model

    original = scan_model.ScannerConfig
    scan_model.ScannerConfig = lambda: scanner  # type: ignore[assignment]
    try:
        return run(**inputs)
    finally:
        scan_model.ScannerConfig = original  # type: ignore[assignment]


#: All registered specs by name (populated by the app modules on import).
_REGISTRY: Dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    """Register one spec; conflicting re-registration of a name is an error.

    Re-registering a logically identical spec (same name, datasets, order,
    and context fields -- the callables are allowed to differ so module
    reloads in notebooks/REPLs stay idempotent) replaces the old entry.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        same_shape = (
            existing.datasets == spec.datasets
            and existing.order == spec.order
            and existing.context_fields == spec.context_fields
        )
        if not same_shape:
            raise RegistryError(
                f"application {spec.name!r} is already registered with a different spec"
            )
    _REGISTRY[spec.name] = spec
    return spec


def register_app(
    name: str,
    *,
    datasets: Tuple[str, ...],
    run: Callable[..., Any],
    order: int = 1000,
    context_fields: Optional[Tuple[str, ...]] = CONTEXT_PARAMETERS,
) -> Callable[[Callable[[str, RunContext], Mapping[str, Any]]], Callable]:
    """Decorator registering ``prepare`` as the input builder of one app."""

    def decorate(prepare: Callable[[str, RunContext], Mapping[str, Any]]):
        register(
            AppSpec(
                name=name,
                datasets=tuple(datasets),
                prepare=prepare,
                run=run,
                order=order,
                context_fields=context_fields,
            )
        )
        return prepare

    return decorate


def get_spec(name: str) -> AppSpec:
    """Look up one registered application (raises :class:`RegistryError`)."""
    _ensure_apps_imported()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise RegistryError(f"unknown application {name!r}; registered: {known}") from None


def registered_specs() -> List[AppSpec]:
    """All registered specs in Table 12 order."""
    _ensure_apps_imported()
    return sorted(_REGISTRY.values(), key=lambda spec: (spec.order, spec.name))


def app_order() -> Tuple[str, ...]:
    """Registered application names in Table 12 order."""
    return tuple(spec.name for spec in registered_specs())


def app_datasets() -> Dict[str, List[str]]:
    """Datasets evaluated per application (Table 6), in registry order."""
    return {spec.name: list(spec.datasets) for spec in registered_specs()}


def execute(name: str, dataset: str, context: Optional[RunContext] = None) -> "WorkloadProfile":
    """Run one registered application functionally and return its profile.

    This is pure execution -- no caching; callers that want the on-disk
    profile cache should go through
    :class:`~repro.runtime.runner.ExperimentRunner`.
    """
    return get_spec(name).execute(dataset, context)


def _ensure_apps_imported() -> None:
    """Import :mod:`repro.apps` so its modules have registered their specs.

    Lookups may happen before anything imported the apps package (e.g. in a
    freshly spawned worker process); importing it here makes the registry
    self-populating without creating an import cycle at module load.
    """
    if not _REGISTRY:
        from .. import apps  # noqa: F401
