"""Content-addressed on-disk caches for profiles and SpMU throughputs.

Collecting the evaluation's profiles means functionally executing eleven
application variants on three datasets each -- by far the most expensive
part of regenerating any table or figure. Profiles are deterministic given
(application, dataset, run context, code), so :class:`ProfileCache` caches
them on disk keyed by exactly that content:

* the application and dataset names,
* the :class:`~repro.runtime.registry.RunContext` fingerprint (scale,
  iteration counts, scanner override), and
* a fingerprint of the package source that produces profiles (everything
  under ``repro`` except the eval/runtime harness layers), so editing any
  model or application invalidates stale entries automatically.

:class:`ThroughputStore` applies the same machinery to the stochastic SpMU
random-access microbenchmark behind
:func:`~repro.core.spmu.effective_bank_throughput`: the measured
throughput is deterministic given the full SpMU configuration and the
simulator code, so persisting it keyed by that content lets design-space
sweeps skip re-simulating every (ordering, mapping, allocator, structure,
lanes) point in every fresh process.

Entries are JSON files (one per record) written atomically; a corrupt,
truncated, or version-skewed entry reads as a miss, never as an error.

Set ``REPRO_PROFILE_CACHE`` / ``REPRO_THROUGHPUT_CACHE`` to relocate the
cache directories and ``REPRO_PROFILE_CACHE_DISABLE=1`` /
``REPRO_THROUGHPUT_CACHE_DISABLE=1`` to turn either cache off entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from ..apps.profile import WorkloadProfile
from .registry import RunContext

#: Bump when the serialized profile layout changes incompatibly.
CACHE_VERSION = 1

#: Bump when the serialized throughput layout changes incompatibly.
THROUGHPUT_CACHE_VERSION = 1

#: Package subdirectories excluded from the code fingerprint: they consume
#: profiles but cannot change what a functional run produces.
_FINGERPRINT_EXCLUDED = ("eval", "runtime", "__pycache__")


def cache_enabled() -> bool:
    """Whether the on-disk profile cache is enabled (kill switch honored)."""
    return os.environ.get("REPRO_PROFILE_CACHE_DISABLE", "") not in ("1", "true", "yes")


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_PROFILE_CACHE`` or ``~/.cache/repro/profiles``."""
    override = os.environ.get("REPRO_PROFILE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "profiles"


def throughput_store_enabled() -> bool:
    """Whether the on-disk throughput store is enabled (kill switch honored)."""
    return os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE", "") not in ("1", "true", "yes")


def default_throughput_dir() -> Path:
    """The store root: ``$REPRO_THROUGHPUT_CACHE`` or ``~/.cache/repro/throughput``."""
    override = os.environ.get("REPRO_THROUGHPUT_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "throughput"


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """Hash of all profile-producing package sources (memoized per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is not None and not refresh:
        return _CODE_FINGERPRINT
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if any(part in _FINGERPRINT_EXCLUDED for part in relative.parts):
            continue
        digest.update(str(relative).encode())
        digest.update(path.read_bytes())
    _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _write_json_atomic(root: Path, path: Path, payload: Dict[str, Any]) -> None:
    """Write one JSON entry atomically (write-to-temp, then rename)."""
    root.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _json_default(value: Any):
    """Serialize numpy scalars/arrays the profiles may carry."""
    item = getattr(value, "item", None)
    if callable(item):
        return value.item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return value.tolist()
    raise TypeError(f"unserializable profile value: {value!r}")


def profile_to_dict(profile: WorkloadProfile) -> Dict[str, Any]:
    """Serialize one profile to a JSON-compatible dict."""
    raw = dataclasses.asdict(profile)
    # Round-trip through JSON so numpy scalars are normalized identically
    # whether a profile was computed or loaded from cache.
    return json.loads(json.dumps(raw, default=_json_default))


def profile_from_dict(data: Dict[str, Any]) -> WorkloadProfile:
    """Rebuild a profile, ignoring unknown fields from newer layouts."""
    known = {f.name for f in dataclasses.fields(WorkloadProfile)}
    return WorkloadProfile(**{k: v for k, v in data.items() if k in known})


class ProfileCache:
    """Content-addressed :class:`WorkloadProfile` store.

    Attributes:
        root: Directory holding one ``<key>.json`` file per profile.
        hits / misses / stores: Per-instance access statistics.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(
        self,
        app: str,
        dataset: str,
        context: RunContext,
        fingerprint: Optional[str] = None,
        context_fields: Optional[tuple] = None,
    ) -> str:
        """Cache key for one (app, dataset, context, code) combination.

        Args:
            app / dataset / context: Task coordinates.
            fingerprint: Code-fingerprint override (testing).
            context_fields: Which context parameters the application reads
                (its :attr:`~repro.runtime.registry.AppSpec.context_fields`);
                ``None`` fingerprints all of them.
        """
        material = {
            "version": CACHE_VERSION,
            "app": app,
            "dataset": dataset,
            "context": context.fingerprint(context_fields),
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        }
        encoded = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[WorkloadProfile]:
        """Read one cached profile; any malformed entry is a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        try:
            profile = profile_from_dict(payload["profile"])
        except (KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return profile

    def store(self, key: str, profile: WorkloadProfile) -> None:
        """Write one profile atomically (write-to-temp, then rename)."""
        payload = {
            "version": CACHE_VERSION,
            "code": code_fingerprint(),
            "profile": profile_to_dict(profile),
        }
        _write_json_atomic(self.root, self._path(key), payload)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry (and stray temp files); returns the count."""
        removed = 0
        if self.root.is_dir():
            for path in list(self.root.glob("*.json")) + list(self.root.glob("*.tmp")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(self) -> int:
        """Remove entries written by other code versions, and stray temps.

        Every source edit changes the code fingerprint and orphans the
        previous entries; pruning keeps only profiles the current code
        could still serve. Returns the number of files removed.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        current = code_fingerprint()
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
                stale = payload.get("code") != current or payload.get("version") != CACHE_VERSION
            except (OSError, ValueError, AttributeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


class ThroughputStore:
    """Content-addressed store for SpMU microbenchmark throughputs.

    One entry per (ordering, bank mapping, allocator, SpMU structure,
    lanes, code) combination; the code fingerprint shares
    :func:`code_fingerprint`, so any edit to the simulator (or anything
    else that could change a measurement) orphans stale entries.

    Attributes:
        root: Directory holding one ``<key>.json`` file per measurement.
        hits / misses / stores: Per-instance access statistics.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_throughput_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(
        self,
        *,
        ordering: Any,
        bank_mapping: str,
        allocator_kind: str,
        config: Any,
        lanes: int,
        fingerprint: Optional[str] = None,
    ) -> str:
        """Store key for one microbenchmark configuration.

        Args:
            ordering: :class:`~repro.core.ordering.OrderingMode` (or any
                enum with a ``value``).
            bank_mapping / allocator_kind / lanes: Remaining SpMU knobs.
            config: The :class:`~repro.config.SpMUConfig` dataclass.
            fingerprint: Code-fingerprint override (testing).
        """
        material = {
            "version": THROUGHPUT_CACHE_VERSION,
            "ordering": getattr(ordering, "value", str(ordering)),
            "bank_mapping": bank_mapping,
            "allocator_kind": allocator_kind,
            "config": dataclasses.asdict(config),
            "lanes": lanes,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        }
        encoded = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[float]:
        """Read one persisted throughput; any malformed entry is a miss."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != THROUGHPUT_CACHE_VERSION:
            self.misses += 1
            return None
        value = payload.get("throughput")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            self.misses += 1
            return None
        self.hits += 1
        return float(value)

    def store(self, key: str, throughput: float) -> None:
        """Persist one measurement atomically."""
        payload = {"version": THROUGHPUT_CACHE_VERSION, "throughput": float(throughput)}
        _write_json_atomic(self.root, self._path(key), payload)
        self.stores += 1

    def load_many(self, keys: Sequence[str]) -> Dict[str, float]:
        """Load a batch of measurements (one entry file read per key).

        Returns only the keys that hit; absent or malformed entries are
        simply missing from the result (and counted as misses). This is a
        convenience batch over :meth:`load` -- the store is one JSON file
        per entry, so the batch shape buys a single call site, not fewer
        I/O operations.
        """
        found: Dict[str, float] = {}
        for key in keys:
            value = self.load(key)
            if value is not None:
                found[key] = value
        return found

    def store_many(self, measurements: Dict[str, float]) -> None:
        """Persist a batch of measurements (one atomic write per entry).

        Each entry is written atomically (write-to-temp then rename), so a
        concurrent sweep prefilling the same keys can only ever race to
        identical content.
        """
        for key, value in measurements.items():
            self.store(key, value)

    def clear(self) -> int:
        """Delete every entry (and stray temp files); returns the count."""
        removed = 0
        if self.root.is_dir():
            for path in list(self.root.glob("*.json")) + list(self.root.glob("*.tmp")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
