"""Content-addressed on-disk cache for workload profiles.

Collecting the evaluation's profiles means functionally executing eleven
application variants on three datasets each -- by far the most expensive
part of regenerating any table or figure. Profiles are deterministic given
(application, dataset, run context, code), so this module caches them on
disk keyed by exactly that content:

* the application and dataset names,
* the :class:`~repro.runtime.registry.RunContext` fingerprint (scale,
  iteration counts, scanner override), and
* a fingerprint of the package source that produces profiles (everything
  under ``repro`` except the eval/runtime harness layers), so editing any
  model or application invalidates stale entries automatically.

Entries are JSON files (one per profile) written atomically; a corrupt,
truncated, or version-skewed entry reads as a miss, never as an error.

Set ``REPRO_PROFILE_CACHE`` to relocate the cache directory and
``REPRO_PROFILE_CACHE_DISABLE=1`` to turn caching off entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..apps.profile import WorkloadProfile
from .registry import RunContext

#: Bump when the serialized profile layout changes incompatibly.
CACHE_VERSION = 1

#: Package subdirectories excluded from the code fingerprint: they consume
#: profiles but cannot change what a functional run produces.
_FINGERPRINT_EXCLUDED = ("eval", "runtime", "__pycache__")


def cache_enabled() -> bool:
    """Whether the on-disk profile cache is enabled (kill switch honored)."""
    return os.environ.get("REPRO_PROFILE_CACHE_DISABLE", "") not in ("1", "true", "yes")


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_PROFILE_CACHE`` or ``~/.cache/repro/profiles``."""
    override = os.environ.get("REPRO_PROFILE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "profiles"


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """Hash of all profile-producing package sources (memoized per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is not None and not refresh:
        return _CODE_FINGERPRINT
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if any(part in _FINGERPRINT_EXCLUDED for part in relative.parts):
            continue
        digest.update(str(relative).encode())
        digest.update(path.read_bytes())
    _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _json_default(value: Any):
    """Serialize numpy scalars/arrays the profiles may carry."""
    item = getattr(value, "item", None)
    if callable(item):
        return value.item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return value.tolist()
    raise TypeError(f"unserializable profile value: {value!r}")


def profile_to_dict(profile: WorkloadProfile) -> Dict[str, Any]:
    """Serialize one profile to a JSON-compatible dict."""
    raw = dataclasses.asdict(profile)
    # Round-trip through JSON so numpy scalars are normalized identically
    # whether a profile was computed or loaded from cache.
    return json.loads(json.dumps(raw, default=_json_default))


def profile_from_dict(data: Dict[str, Any]) -> WorkloadProfile:
    """Rebuild a profile, ignoring unknown fields from newer layouts."""
    known = {f.name for f in dataclasses.fields(WorkloadProfile)}
    return WorkloadProfile(**{k: v for k, v in data.items() if k in known})


class ProfileCache:
    """Content-addressed :class:`WorkloadProfile` store.

    Attributes:
        root: Directory holding one ``<key>.json`` file per profile.
        hits / misses / stores: Per-instance access statistics.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(
        self,
        app: str,
        dataset: str,
        context: RunContext,
        fingerprint: Optional[str] = None,
        context_fields: Optional[tuple] = None,
    ) -> str:
        """Cache key for one (app, dataset, context, code) combination.

        Args:
            app / dataset / context: Task coordinates.
            fingerprint: Code-fingerprint override (testing).
            context_fields: Which context parameters the application reads
                (its :attr:`~repro.runtime.registry.AppSpec.context_fields`);
                ``None`` fingerprints all of them.
        """
        material = {
            "version": CACHE_VERSION,
            "app": app,
            "dataset": dataset,
            "context": context.fingerprint(context_fields),
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        }
        encoded = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[WorkloadProfile]:
        """Read one cached profile; any malformed entry is a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        try:
            profile = profile_from_dict(payload["profile"])
        except (KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return profile

    def store(self, key: str, profile: WorkloadProfile) -> None:
        """Write one profile atomically (write-to-temp, then rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "code": code_fingerprint(),
            "profile": profile_to_dict(profile),
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry (and stray temp files); returns the count."""
        removed = 0
        if self.root.is_dir():
            for path in list(self.root.glob("*.json")) + list(self.root.glob("*.tmp")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(self) -> int:
        """Remove entries written by other code versions, and stray temps.

        Every source edit changes the code fingerprint and orphans the
        previous entries; pruning keeps only profiles the current code
        could still serve. Returns the number of files removed.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        current = code_fingerprint()
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
                stale = payload.get("code") != current or payload.get("version") != CACHE_VERSION
            except (OSError, ValueError, AttributeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
