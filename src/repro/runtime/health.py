"""Worker health tracking: error classification, windows, circuit breakers.

The retry loop treats every failure the same; fleets cannot afford to. A
unit that raises ``ModuleNotFoundError`` will raise it on every worker in
the fleet -- retrying it burns the attempt budget and the wall clock for
nothing. A worker that times out three units in a row is sick in a way its
next unit will not fix -- routing more work at it converts one bad process
into a stream of failed units. This module supplies the two discriminators
(after the provider health/fallback split in openharness):

* :func:`classify_error` -- *transient* failures (timeouts, crashed
  workers, flaky probes) earn retries with backoff; *permanent* failures
  (bad spec, unknown unit kind, import errors) skip the retry loop
  entirely and surface immediately.
* :class:`CircuitBreaker` + :class:`WorkerHealth` -- per-worker-slot
  rolling failure/latency windows feeding a closed -> open -> half-open
  breaker. The subprocess executor consults it before reusing a slot:
  an open breaker quarantines the slot (cooldown), then half-open lets
  one probe worker through; success closes the breaker, failure re-opens
  it. Sick workers get killed and replaced instead of poisoning every
  unit routed to them.

Classification must work across process boundaries, where the exception
object is gone and only a summary string (``"ExcName: message"``) or a
:class:`~repro.runtime.executors.base.WorkerError` with that summary
survives -- so classification is by exception *type name*, checked
against the full MRO in-process and against the summary's leading name
otherwise.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Tuple

#: Classification labels carried on ``UnitOutcome.classification``.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Exception type names whose failures no amount of retrying will fix:
#: the unit spec itself is bad, the code it names is missing, or the
#: fault plan explicitly asked for a permanent error.
PERMANENT_ERROR_NAMES = frozenset(
    {
        "UnitSpecError",
        "ConfigurationError",
        "FormatError",
        "ProgramError",
        "ImportError",
        "ModuleNotFoundError",
        "AttributeError",
        "TypeError",
        "PermanentFaultInjected",
    }
)


def _names_from_summary(summary: str) -> Tuple[str, ...]:
    """The exception type name leading an ``"ExcName: message"`` summary."""
    head = summary.split(":", 1)[0].strip()
    # A bare type name is a single identifier; anything with spaces is
    # prose (e.g. "unit exceeded 5s timeout"), not a type name.
    if head and " " not in head:
        return (head.rsplit(".", 1)[-1],)
    return ()


def classify_error(error: object) -> str:
    """Classify an exception (or its summary string) as transient/permanent.

    Accepts a live exception (classified by its MRO, so subclasses of a
    permanent type inherit permanence), a ``WorkerError`` whose message
    leads with the original type name, or a bare summary string.
    """
    names: Tuple[str, ...]
    if isinstance(error, BaseException):
        names = tuple(klass.__name__ for klass in type(error).__mro__)
        # Worker-side failures come back as WorkerError("ExcName: ..."):
        # the interesting name is inside the message, not the MRO.
        message_names = _names_from_summary(str(error))
        names = names + message_names
    elif isinstance(error, str):
        names = _names_from_summary(error)
    else:
        names = ()
    if any(name in PERMANENT_ERROR_NAMES for name in names):
        return PERMANENT
    return TRANSIENT


# --------------------------------------------------------------- windows


class RollingWindow:
    """The last ``size`` (ok, duration_s) observations for one worker."""

    def __init__(self, size: int = 16):
        self.size = max(1, int(size))
        self._events: Deque[Tuple[bool, float]] = deque(maxlen=self.size)

    def record(self, ok: bool, duration_s: float) -> None:
        self._events.append((bool(ok), float(duration_s)))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def failures(self) -> int:
        return sum(1 for ok, _ in self._events if not ok)

    @property
    def failure_rate(self) -> float:
        if not self._events:
            return 0.0
        return self.failures / len(self._events)

    @property
    def mean_duration_s(self) -> float:
        if not self._events:
            return 0.0
        return sum(duration for _, duration in self._events) / len(self._events)

    def clear(self) -> None:
        self._events.clear()


# -------------------------------------------------------- circuit breaker

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A closed -> open -> half-open breaker over consecutive failures.

    Closed admits everything. ``failure_threshold`` consecutive failures
    open it; while open, :meth:`allow` refuses until ``cooldown_s`` has
    elapsed, then admits exactly one probe (half-open). The probe's
    success closes the breaker; its failure re-opens it for another
    cooldown.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown_s: Quarantine length while open. The subprocess executor
            defaults this to 0 so a sick worker is *replaced* immediately
            rather than stalling the wave; a positive value spaces out
            respawns when the worker command itself is broken.
        clock: Injectable time source for tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0  # lifetime open transitions, for reporting

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = self._clock()

    def allow(self) -> bool:
        """Whether a request may proceed now (may transition to half-open)."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                # One probe is already in flight; hold further requests.
                return False
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                return True
            return False


# ------------------------------------------------------- per-slot health


@dataclass
class WorkerHealth:
    """Rolling stats and breaker for one worker slot."""

    slot: int
    window: RollingWindow = field(default_factory=RollingWindow)
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    launched: int = 0
    replaced: int = 0

    def record(self, ok: bool, duration_s: float) -> None:
        self.window.record(ok, duration_s)
        if ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def note_spawn(self) -> None:
        self.launched += 1
        if self.breaker.state != CLOSED:
            # Spawning while not closed replaces a quarantined worker.
            self.replaced += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "slot": self.slot,
            "state": self.breaker.state,
            "launched": self.launched,
            "replaced": self.replaced,
            "trips": self.breaker.trips,
            "window": len(self.window),
            "failures": self.window.failures,
            "failure_rate": round(self.window.failure_rate, 4),
            "mean_duration_s": round(self.window.mean_duration_s, 6),
        }


class HealthRegistry:
    """Thread-safe map of worker slot -> :class:`WorkerHealth`."""

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: int = 3,
        cooldown_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._window = window
        self._failure_threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._slots: Dict[int, WorkerHealth] = {}
        self._lock = threading.Lock()

    def slot(self, index: int) -> WorkerHealth:
        with self._lock:
            health = self._slots.get(index)
            if health is None:
                health = WorkerHealth(
                    slot=index,
                    window=RollingWindow(self._window),
                    breaker=CircuitBreaker(
                        failure_threshold=self._failure_threshold,
                        cooldown_s=self._cooldown_s,
                        clock=self._clock,
                    ),
                )
                self._slots[index] = health
            return health

    def report(self) -> Dict[int, Dict[str, object]]:
        with self._lock:
            return {index: health.snapshot() for index, health in sorted(self._slots.items())}
