"""Deterministic fault injection for the executor/job/serve stack.

Fleets fail in ways unit tests rarely exercise: workers crash mid-unit,
hang forever, emit garbage on the protocol channel, or come up slowly.
This module makes those failures *injectable, declarative, and seeded* so
the chaos suite (``tests/test_chaos.py``) and CI's ``chaos-smoke`` job can
assert the stack's invariants -- no lost or double-committed work units,
byte-identical cache output versus a fault-free run, bounded attempt
counts -- under every failure mode the hardening claims to survive.

A :class:`FaultPlan` is a list of :class:`Fault` entries plus a seed and a
``state_dir``. Each fault names a *kind*, what it matches (a payload
subset and/or the ordinal of the matched unit), and how many ``times`` it
may fire. Firings are recorded as marker files under ``state_dir`` so a
fault stays bounded across worker respawns and process boundaries -- the
same idiom the probe unit uses for attempt accounting. Kinds:

=================  ==========================================================
``crash``          ``os._exit(exit_code)`` at unit start (process-isolated
                   backends only: a crash in the local executor kills the
                   caller).
``hang``           Sleep ``delay_s`` (default far past any timeout) at unit
                   start; the subprocess executor's hard timeout kills it.
``error``          Raise :class:`FaultInjected` (transient) or
                   :class:`PermanentFaultInjected` (``permanent=true``).
``slow``           Sleep ``delay_s`` at unit start, then run normally.
``malformed_line``  The ``repro-eval worker`` loop answers with a non-JSON
                   line instead of the response.
``truncated_line``  The worker writes half the response bytes, no newline,
                   and exits -- a torn write from a dying process.
``slow_start``     The worker sleeps ``delay_s`` before its first request
                   (exercises the warmup-vs-unit-timeout split).
``exit_mid_wave``  :class:`FaultyExecutor` calls ``os._exit`` after a wave
                   executes but *before* the job store commits it -- the
                   driver dying mid-wave (``unit_index`` = wave ordinal).
=================  ==========================================================

Injection reaches any backend through two seams: in-process,
:func:`install_plan` (or :class:`FaultyExecutor`, which installs around
each ``run_units`` call); across process boundaries, the
``REPRO_FAULT_PLAN`` environment variable carrying ``plan.to_json()``,
which pool children inherit and ``repro-eval worker`` subprocesses read.
:func:`inject_unit_fault` is called by
:func:`repro.runtime.jobs.execute_unit` -- the single entry point every
executor drives -- so unit-level faults hit all backends identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import CapstanError

#: Environment variable carrying ``FaultPlan.to_json()`` across processes.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Kinds injected at unit-execution time (reaches every backend).
UNIT_FAULT_KINDS = ("crash", "hang", "error", "slow")
#: Kinds injected into the worker's JSON-lines protocol (subprocess backend).
PROTOCOL_FAULT_KINDS = ("malformed_line", "truncated_line")
#: Kinds applied at worker-process startup.
STARTUP_FAULT_KINDS = ("slow_start",)
#: Kinds applied by :class:`FaultyExecutor` around whole waves.
WAVE_FAULT_KINDS = ("exit_mid_wave",)

FAULT_KINDS = (
    UNIT_FAULT_KINDS + PROTOCOL_FAULT_KINDS + STARTUP_FAULT_KINDS + WAVE_FAULT_KINDS
)

#: A ``hang`` sleeps this long when the fault gives no ``delay_s`` -- far
#: past any sane unit timeout, well short of forever (suites must end).
DEFAULT_HANG_S = 3600.0


class FaultPlanError(CapstanError):
    """Raised for malformed fault plans (unknown kinds, bad JSON)."""


class FaultInjected(CapstanError):
    """The error an ``error`` fault raises; classified *transient*."""


class PermanentFaultInjected(FaultInjected):
    """An ``error`` fault with ``permanent=true``; classified *permanent*."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One declarative fault.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        match: Payload subset that must match for the fault to arm (e.g.
            ``{"value": 3}`` or ``{"dataset": "wikipedia"}``); empty
            matches every payload.
        unit_index: Arm only on the Nth (0-based) *matched* unit seen by
            this process -- "crash on unit 2". For ``exit_mid_wave`` this
            counts waves instead of units.
        times: Total firings allowed (bounded across respawns via the
            plan's ``state_dir`` markers).
        probability: Chance of firing once armed, decided by a hash of
            ``(seed, fault, ordinal)`` -- deterministic in every process.
        delay_s: Sleep length for ``hang``/``slow``/``slow_start``.
        exit_code: Process exit code for ``crash``/``truncated_line``/
            ``exit_mid_wave``.
        permanent: For ``error``: raise the permanently-classified
            exception, exercising the skip-retries path.
    """

    kind: str
    match: Dict[str, Any] = dataclasses.field(default_factory=dict)
    unit_index: Optional[int] = None
    times: int = 1
    probability: float = 1.0
    delay_s: float = 0.0
    exit_code: int = 17
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )

    def matches(self, payload: Dict[str, Any]) -> bool:
        """Whether every ``match`` item equals the payload's value."""
        return all(payload.get(key) == value for key, value in self.match.items())

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FaultPlan:
    """A seeded, declarative set of faults with persistent firing accounting.

    Args:
        faults: The :class:`Fault` entries, checked in order.
        seed: Drives the deterministic ``probability`` draws.
        state_dir: Directory for firing markers; without one, accounting is
            in-memory only (fine for single-process injection, required for
            bounded faults across worker respawns).
    """

    def __init__(
        self,
        faults: List[Fault],
        *,
        seed: int = 0,
        state_dir: Optional[str] = None,
    ):
        self.faults = list(faults)
        self.seed = int(seed)
        self.state_dir = str(state_dir) if state_dir else None
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": self.state_dir,
                "faults": [fault.to_dict() for fault in self.faults],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
            faults = [Fault(**entry) for entry in data.get("faults", [])]
            return cls(
                faults,
                seed=data.get("seed", 0),
                state_dir=data.get("state_dir"),
            )
        except (ValueError, TypeError) as exc:
            raise FaultPlanError(f"bad fault plan JSON: {exc}") from None

    # ------------------------------------------------------------- firing

    def _chance(self, fault_index: int, ordinal: int) -> float:
        material = f"{self.seed}:{fault_index}:{ordinal}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _record_firing(self, fault_index: int, fault: Fault) -> bool:
        """Try to consume one firing of ``fault``; False when exhausted."""
        if self.state_dir is None:
            count = self._fired.get(fault_index, 0)
            if count >= fault.times:
                return False
            self._fired[fault_index] = count + 1
            return True
        root = Path(self.state_dir) / f"fault-{fault_index}"
        root.mkdir(parents=True, exist_ok=True)
        if len(list(root.glob("fired-*"))) >= fault.times:
            return False
        (root / f"fired-{os.getpid()}-{time.monotonic_ns()}").write_text("")
        return True

    def take(
        self, kinds: Tuple[str, ...], payload: Optional[Dict[str, Any]] = None
    ) -> Optional[Fault]:
        """The first armed fault of ``kinds`` matching ``payload``, consumed.

        Matching a fault advances its per-process ordinal even when it does
        not fire, so ``unit_index`` means "the Nth matched unit this
        process executes" regardless of how many earlier units missed.
        """
        with self._lock:
            for index, fault in enumerate(self.faults):
                if fault.kind not in kinds:
                    continue
                if payload is not None and not fault.matches(payload):
                    continue
                ordinal = self._seen.get(index, 0)
                self._seen[index] = ordinal + 1
                if fault.unit_index is not None and ordinal != fault.unit_index:
                    continue
                if fault.probability < 1.0 and self._chance(index, ordinal) >= fault.probability:
                    continue
                if not self._record_firing(index, fault):
                    continue
                return fault
        return None

    @contextmanager
    def installed(self) -> Iterator["FaultPlan"]:
        """Install this plan in-process *and* in the environment seam."""
        global _INSTALLED
        previous_plan = _INSTALLED
        previous_env = os.environ.get(ENV_FAULT_PLAN)
        _INSTALLED = self
        os.environ[ENV_FAULT_PLAN] = self.to_json()
        try:
            yield self
        finally:
            _INSTALLED = previous_plan
            if previous_env is None:
                os.environ.pop(ENV_FAULT_PLAN, None)
            else:
                os.environ[ENV_FAULT_PLAN] = previous_env


# --------------------------------------------------------- the active plan

_INSTALLED: Optional[FaultPlan] = None
#: (raw env text, parsed plan) -- the parse is cached per raw string so the
#: plan object (and its in-memory ordinal state) survives across calls.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Set (or with ``None`` clear) the in-process active plan."""
    global _INSTALLED
    _INSTALLED = plan


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULT_PLAN``."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get(ENV_FAULT_PLAN)
    if not raw:
        return None
    cached_raw, cached_plan = _ENV_CACHE
    if raw != cached_raw:
        _ENV_CACHE = (raw, FaultPlan.from_json(raw))
    return _ENV_CACHE[1]


# ------------------------------------------------------- injection points


def inject_unit_fault(payload: Dict[str, Any]) -> None:
    """Apply any armed unit-level fault; called by ``execute_unit``."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.take(UNIT_FAULT_KINDS, payload)
    if fault is None:
        return
    if fault.kind == "crash":
        os._exit(fault.exit_code)
    if fault.kind == "hang":
        time.sleep(fault.delay_s or DEFAULT_HANG_S)
        return
    if fault.kind == "slow":
        time.sleep(fault.delay_s)
        return
    description = f"injected {fault.kind} fault for payload kind {payload.get('kind')!r}"
    if fault.permanent:
        raise PermanentFaultInjected(description)
    raise FaultInjected(description)


def take_protocol_fault(payload: Dict[str, Any]) -> Optional[Fault]:
    """An armed protocol fault for the worker loop to act on, if any."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.take(PROTOCOL_FAULT_KINDS, payload)


def inject_startup_fault() -> None:
    """Apply any armed ``slow_start`` fault; called at worker startup."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.take(STARTUP_FAULT_KINDS, {})
    if fault is not None:
        time.sleep(fault.delay_s)


class FaultyExecutor:
    """Wrap any executor so its runs execute under a :class:`FaultPlan`.

    The plan is installed (in-process and via ``REPRO_FAULT_PLAN``) around
    every ``run_units`` call, so in-process units, pool children, and
    freshly spawned ``repro-eval worker`` subprocesses all see it. After a
    wave returns -- and before the caller (``JobStore.run_job``) can commit
    it -- an armed ``exit_mid_wave`` fault kills this process, simulating a
    driver dying with executed-but-uncommitted work.

    Everything else (``workers``, ``timeout_s``, ``cancel`` ...) delegates
    to the wrapped executor, so a ``FaultyExecutor`` drops into any seam an
    :class:`~repro.runtime.executors.base.Executor` fits.
    """

    def __init__(self, inner: Any, plan: FaultPlan):
        self._inner = inner
        self.plan = plan

    @property
    def name(self) -> str:
        return f"faulty-{self._inner.name}"

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self._inner, attribute)

    def run_units(
        self, payloads: List[Dict[str, Any]], *, stop_on_error: bool = False
    ) -> List[Any]:
        with self.plan.installed():
            outcomes = self._inner.run_units(payloads, stop_on_error=stop_on_error)
        fault = self.plan.take(WAVE_FAULT_KINDS)
        if fault is not None:
            os._exit(fault.exit_code)
        return outcomes
