"""Memory-budget planner: chunk shapes and streaming drivers for the engines.

Every batch engine materializes a grid -- (profile x platform) costing
matrices, lock-step SpMU state across a variant grid, tile batches in the
format converter, position ranges in the scanner. Given an explicit byte
budget, this module picks chunk shapes from per-engine cost models and the
engines stream chunk by chunk with results aggregated bit-identically to
the unchunked pass:

* :func:`~repro.apps.timing.estimate_cycles_batch` chunks the platform
  axis -- every cost-model term is column-independent, so concatenating
  chunk columns reproduces the full matrix exactly.
* :func:`~repro.core.spmu_array.simulate_variants` /
  :func:`~repro.core.spmu.effective_bank_throughput_batch` chunk the
  variant grid -- each variant's lock-step state is independent (the batch
  dimension only amortizes per-operation overhead), so per-chunk
  simulation is exact.
* :meth:`~repro.core.format_conversion.FormatConverter.convert_many`
  chunks tiles -- conversion state restarts at tile boundaries and the
  statistics are per-tile sums.
* :meth:`~repro.core.scanner.Scanner.scan_batch` chunks dense-position
  ranges -- chunk outputs are position-disjoint and ordered, so
  concatenation is exact.
* :func:`~repro.runtime.dse.explore` streams the (profile x platform)
  cross-product, folding each chunk into the running geometric-mean /
  Pareto state instead of materializing the grid.

The low-level primitives (:func:`parse_memory_budget`,
:func:`resolve_memory_budget`, :class:`ChunkPlan`, :func:`plan_chunks`,
:func:`iter_chunked`, ``ENV_MEMORY_BUDGET``) live in :mod:`repro._budget`
so the core engines can import them without a layering cycle; this module
re-exports them as the public API next to the per-engine cost models.
"""

from __future__ import annotations

from typing import Optional

from .._budget import (
    ENV_MEMORY_BUDGET,
    ChunkPlan,
    iter_chunked,
    parse_memory_budget,
    plan_chunks,
    resolve_memory_budget,
)
from ..apps.timing import COSTING_BYTES_PER_CELL
from ..core.spmu_array import SpMUVariant, _PreparedTrace, _variant_footprint

__all__ = [
    "ENV_MEMORY_BUDGET",
    "COSTING_BYTES_PER_CELL",
    "ChunkPlan",
    "costing_chunk_platforms",
    "iter_chunked",
    "parse_memory_budget",
    "plan_chunks",
    "resolve_memory_budget",
    "variant_state_bytes",
]


def costing_chunk_platforms(n_profiles: int, memory_budget: Optional[int]) -> Optional[int]:
    """Platform-axis chunk width for the batched costing model.

    The costing model's working set is a handful of ``float64`` temporaries
    per (profile, platform) cell (:data:`COSTING_BYTES_PER_CELL`), so a
    budget divided by the per-platform column cost bounds the chunk width.
    Returns ``None`` (no chunking) when no budget is given.
    """
    if memory_budget is None:
        return None
    per_platform = max(n_profiles, 1) * COSTING_BYTES_PER_CELL
    return plan_chunks(0, per_platform, memory_budget).chunk_items


def variant_state_bytes(variant: SpMUVariant, prep: _PreparedTrace) -> int:
    """Lock-step working-set estimate for one SpMU variant (cost model)."""
    return _variant_footprint(variant, prep)
