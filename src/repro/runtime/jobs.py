"""Sharded, resumable jobs over the experiment store.

A *job* is any task grid -- the (application x dataset) profile grid, a
design-space cross-product, or the table suite -- sharded into
content-addressed *work units* whose states persist in the SQLite run
store (:mod:`repro.runtime.runstore`, schema version 3). Each unit is a
self-contained JSON payload any worker can execute: in process, in a pool
worker, or in a ``repro-eval worker`` subprocess on another machine (see
:mod:`repro.runtime.executors`). The lifecycle::

    spec = JobSpec.profile_grid(apps=["spmv-csr", "bfs"], context=context)
    with JobStore() as store:
        job = store.submit(spec)            # idempotent: same spec -> same job
        store.run_job(job.id, executor)     # executes only non-done units

Because both the job spec key and every unit key hash the task
coordinates *and* the code fingerprint, a killed sweep resumes exactly:
``submit`` finds the existing job, ``run_job`` resets stale ``running``
units to ``pending`` and skips every ``done`` unit, so completed work is
never re-executed and the outputs (profile-cache entries written by the
workers) are byte-identical to a single-process run.

Claims are *leases* (schema v3): ``run_job`` claims each wave inside a
``BEGIN IMMEDIATE`` transaction, stamping ``lease_owner``
(``hostname:pid:token``) and ``lease_expires_at``, and a heartbeat
thread refreshes the stamp while the wave executes -- so two concurrent
``run_job`` processes on one job serialize at the claim and never
double-run a unit, while a dead claimant's leases are reclaimed on
resume (same-host pid liveness, or lease expiry for remote owners).
With ``max_attempts`` set, a unit that exhausts its budget -- or fails
*permanently* (see :mod:`repro.runtime.health`) -- is dead-lettered
(state ``dead``) instead of being re-claimed forever.

Unit kinds are pluggable via :func:`register_unit_kind`; the built-in
kinds are ``profile`` (one registry cell, served from / stored to the
content-addressed profile cache), ``throughput`` (one SpMU calibration
microbenchmark, persisted in the throughput store), ``dse_chunk`` (a
budget-planned slice of a sweep cross-product costed to gmean cycles and
area), ``table`` (one paper-table harness), and ``probe`` (a synthetic
unit used by the executor conformance tests and smoke sweeps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CapstanError
from . import faults, registry
from .health import PERMANENT
from .cache import (
    ProfileCache,
    cache_enabled,
    code_fingerprint,
    profile_from_dict,
    profile_to_dict,
)
from .registry import RunContext
from .runstore import RunStore, _utc_now
from .sweep import axis_value_to_json, parse_axis_value

#: Work-unit states persisted in the ``work_units`` table. ``dead`` is the
#: dead-letter state: the unit exhausted ``max_attempts`` (or failed
#: permanently) and is no longer claimable on resume.
UNIT_PENDING = "pending"
UNIT_RUNNING = "running"
UNIT_DONE = "done"
UNIT_FAILED = "failed"
UNIT_DEAD = "dead"

#: Job states persisted in the ``jobs`` table.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Default ceiling on variants per DSE work unit (resumability granularity
#: when no memory budget imposes a smaller chunk).
DEFAULT_DSE_CHUNK = 64

#: Default lease length for claimed units. A claimant heartbeats at a
#: third of this, so only a process dead (or frozen) for the full lease
#: loses its claim to another claimant.
DEFAULT_LEASE_S = 60.0


class JobError(CapstanError):
    """Raised for malformed job specs, unknown kinds, or missing jobs."""


class UnitSpecError(JobError):
    """A work unit that can never execute: unknown kind, malformed payload.

    Classified *permanent* by :func:`repro.runtime.health.classify_error`,
    so executors surface it immediately instead of burning retries.
    """


# --------------------------------------------------------------- contexts


def context_to_dict(context: RunContext) -> Dict[str, Any]:
    """Serialize a :class:`RunContext` to a JSON-able dict (lossless)."""
    material: Dict[str, Any] = {
        "scale": context.scale,
        "pagerank_iterations": context.pagerank_iterations,
        "conv_scale": context.conv_scale,
        "backend": context.backend,
    }
    if context.scanner is not None:
        material["scanner"] = dataclasses.asdict(context.scanner)
    return material


def context_from_dict(data: Optional[Dict[str, Any]]) -> RunContext:
    """Rebuild a :class:`RunContext` from :func:`context_to_dict` output."""
    data = dict(data or {})
    scanner = data.pop("scanner", None)
    if scanner is not None:
        from ..config import ScannerConfig

        scanner = ScannerConfig(**scanner)
    known = {f.name for f in dataclasses.fields(RunContext)}
    unknown = set(data) - known
    if unknown:
        raise UnitSpecError(f"unknown RunContext fields in payload: {sorted(unknown)}")
    return RunContext(scanner=scanner, **data)


# ------------------------------------------------------------- unit kinds


@dataclasses.dataclass(frozen=True)
class UnitKind:
    """One executable unit kind: how to run it and (de)serialize results."""

    name: str
    execute: Callable[[Dict[str, Any]], Any]
    serialize: Callable[[Any], Any]
    deserialize: Callable[[Any], Any]


_KINDS: Dict[str, UnitKind] = {}


def register_unit_kind(
    name: str,
    execute: Callable[[Dict[str, Any]], Any],
    *,
    serialize: Optional[Callable[[Any], Any]] = None,
    deserialize: Optional[Callable[[Any], Any]] = None,
) -> UnitKind:
    """Register one unit kind (``serialize``/``deserialize`` default to identity).

    Note that subprocess workers only know the kinds registered at import
    time of :mod:`repro.runtime.jobs`; ad-hoc kinds registered by tests
    run on the in-process executors.
    """
    kind = UnitKind(
        name=name,
        execute=execute,
        serialize=serialize or (lambda result: result),
        deserialize=deserialize or (lambda result: result),
    )
    _KINDS[name] = kind
    return kind


def unit_kind(name: str) -> UnitKind:
    """Look up one registered kind (raises :class:`UnitSpecError`)."""
    try:
        return _KINDS[name]
    except KeyError:
        known = ", ".join(sorted(_KINDS)) or "<none>"
        raise UnitSpecError(
            f"unknown work-unit kind {name!r}; registered: {known}"
        ) from None


def execute_unit(payload: Dict[str, Any]) -> Any:
    """Execute one work-unit payload and return its (native) result.

    This is the single entry point every executor drives -- in process,
    from a pool worker, or behind ``repro-eval worker`` -- which also
    makes it the seam where an active fault plan (see
    :mod:`repro.runtime.faults`) injects unit-level faults into every
    backend identically.
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise UnitSpecError(f"work-unit payload needs a 'kind' field, got {payload!r}")
    faults.inject_unit_fault(payload)
    return unit_kind(payload["kind"]).execute(payload)


def serialize_result(kind: str, result: Any) -> Any:
    """The JSON form of one unit result (for ``result_json`` / the wire)."""
    return unit_kind(kind).serialize(result)


def deserialize_result(kind: str, data: Any) -> Any:
    """Rebuild one unit result from its JSON form."""
    return unit_kind(kind).deserialize(data)


# ------------------------------------------------------- built-in kinds


def _execute_profile(payload: Dict[str, Any]) -> Any:
    """Run one (app, dataset) cell, served from / stored to the profile cache."""
    app = payload["app"]
    dataset = payload["dataset"]
    context = context_from_dict(payload.get("context"))
    cache: Optional[ProfileCache] = None
    key: Optional[str] = None
    if payload.get("cache", True) and cache_enabled():
        root = payload.get("cache_root")
        cache = ProfileCache(root=Path(root)) if root else ProfileCache()
        fields = registry.get_spec(app).context_fields
        key = cache.key(app, dataset, context, context_fields=fields)
        hit = cache.load(key)
        if hit is not None:
            return hit
    profile = registry.execute(app, dataset, context)
    if cache is not None and key is not None:
        cache.store(key, profile)
    return profile


def _execute_throughput(payload: Dict[str, Any]) -> float:
    """Run one SpMU calibration microbenchmark (persists to its store)."""
    from ..config import SpMUConfig
    from ..core.ordering import OrderingMode
    from ..core.spmu import effective_bank_throughput

    config = SpMUConfig(**payload.get("config", {}))
    return float(
        effective_bank_throughput(
            ordering=OrderingMode(payload.get("ordering", "unordered")),
            bank_mapping=payload.get("bank_mapping", "hash"),
            allocator_kind=payload.get("allocator", "separable"),
            config=config,
            lanes=int(payload.get("lanes", 16)),
        )
    )


def _execute_dse_chunk(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Cost one contiguous slice of a sweep cross-product.

    Profiles come through the cached :class:`ExperimentRunner` (serial --
    the parallelism axis of a DSE job is its units, not a nested pool), so
    every chunk of the same job reuses the same cached profile set.
    """
    from ..apps.timing import estimate_cycles_batch
    from ..core.area import capstan_area
    from ..sim.stats import geometric_mean
    from .runner import ExperimentRunner
    from .sweep import sweep

    axes = {
        axis: [parse_axis_value(axis, value) for value in values]
        for axis, values in payload["axes"].items()
    }
    variants = sweep(**axes)
    names = list(variants)
    chunk_names = names[payload["start"] : payload["stop"]]
    platforms = [variants[name] for name in chunk_names]
    for platform in platforms:
        platform.config.validate()
    context = context_from_dict(payload.get("context"))
    runner = ExperimentRunner(context=context, workers=1, cache=payload.get("cache", True))
    report = runner.run(apps=payload.get("apps"))
    profiles = [r.profile for r in report.results if r.profile is not None]
    batch = estimate_cycles_batch(profiles, platforms)
    gmeans = [
        geometric_mean([float(c) for c in batch.cycles[:, j]])
        for j in range(len(platforms))
    ]
    return {
        "names": list(chunk_names),
        "gmean_cycles": [float(g) for g in gmeans],
        "area_mm2": [float(capstan_area(p.config).total_mm2) for p in platforms],
    }


def _execute_dse_search(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Advance one adaptive search through one committed generation.

    Unit ``generation`` g means "generation g is committed when this unit
    is done". The engine resumes from the newest state the
    :class:`~repro.runtime.search.SearchStore` holds -- its evaluation
    caches ride along in the state -- so re-running a unit whose
    generation is already committed does no work, and a SIGKILL mid-unit
    replays only the uncommitted generation. Generations are serially
    dependent: run these jobs with one worker (the parallelism lives
    inside a generation's batched costing). A unit claimed ahead of its
    predecessors steps the engine through every missing generation itself,
    which stays correct but duplicates work across workers.
    """
    from .runner import ExperimentRunner
    from .search import AdaptiveSearch, SearchSpace, SearchStore, make_strategy

    target = int(payload["generation"]) + 1
    space = SearchSpace.from_axes({axis: values for axis, values in payload["axes"]})
    strategy = make_strategy(payload["strategy"], **payload.get("params", {}))
    context = context_from_dict(payload.get("context"))
    runner = ExperimentRunner(context=context, workers=1, cache=payload.get("cache", True))
    report = runner.run(apps=payload.get("apps"))
    profiles = [r.profile for r in report.results if r.profile is not None]
    store_root = payload.get("store_root")
    store = SearchStore(Path(store_root)) if store_root else SearchStore()
    engine = AdaptiveSearch(
        space,
        strategy,
        profiles,
        objectives=tuple(payload.get("objectives") or ("cycles", "area", "energy")),
        seed=int(payload.get("seed", 0)),
        memory_budget=payload.get("memory_budget"),
        store=store,
    )
    while engine.generation < target and not engine.done:
        engine.step()
    frontier_size = None
    if engine.done:
        result = engine.result()
        store.save_result(engine.key, result.to_dict())
        frontier_size = len(result.frontier())
    return {
        "search_key": engine.key,
        "target_generation": target - 1,
        "committed_generations": engine.generation,
        "evaluations": float(engine.evaluations),
        "archive": len(engine.archive_combos()),
        "done": engine.done,
        "frontier_size": frontier_size,
    }


def _table_functions() -> Dict[str, Callable[..., Any]]:
    """The paper-table harness callables by short name (``table4`` ...)."""
    from ..eval import tables as tables_module

    found: Dict[str, Callable[..., Any]] = {}
    for attr in dir(tables_module):
        if attr.startswith("table"):
            short = attr.split("_", 1)[0]
            found[short] = getattr(tables_module, attr)
    return found


def _execute_table(payload: Dict[str, Any]) -> Any:
    """Render one paper table (profiles collected through the cache)."""
    import inspect

    from .cache import _json_default

    functions = _table_functions()
    name = payload["table"]
    if name not in functions:
        raise UnitSpecError(
            f"unknown table {name!r}; known: {', '.join(sorted(functions))}"
        )
    fn = functions[name]
    kwargs: Dict[str, Any] = {}
    if "profiles" in inspect.signature(fn).parameters and payload.get("scale") is not None:
        from ..eval.experiments import collect_profiles

        kwargs["profiles"] = collect_profiles(scale=float(payload["scale"]))
    result = fn(**kwargs)
    # Normalize numpy scalars so the result is JSON-able for result_json.
    return json.loads(json.dumps(result, default=_json_default))


def _execute_probe(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Synthetic unit for conformance tests and executor smoke runs.

    Payload fields: ``value`` (echoed back doubled), ``sleep_s`` (work
    stand-in, exercises timeouts), ``fail_times`` + ``scratch`` (raise
    until the scratch directory shows that many prior attempts, exercising
    retries across process boundaries -- each execution drops one marker
    file), ``boom`` (always raise).
    """
    attempt = 0
    scratch = payload.get("scratch")
    if scratch:
        root = Path(scratch)
        root.mkdir(parents=True, exist_ok=True)
        marker = root / f"attempt-{os.getpid()}-{time.monotonic_ns()}"
        marker.write_text("")
        attempt = len(list(root.glob("attempt-*")))
    sleep_s = float(payload.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    if payload.get("boom"):
        raise JobError(str(payload.get("boom")))
    fail_times = int(payload.get("fail_times", 0))
    if fail_times and attempt <= fail_times:
        raise JobError(f"probe failing on attempt {attempt} of {fail_times}")
    value = payload.get("value")
    return {
        "value": None if value is None else value * 2,
        "attempt": attempt,
        "pid": os.getpid(),
    }


register_unit_kind(
    "profile",
    _execute_profile,
    serialize=profile_to_dict,
    deserialize=profile_from_dict,
)
register_unit_kind("throughput", _execute_throughput)
register_unit_kind("dse_chunk", _execute_dse_chunk)
register_unit_kind("dse_search", _execute_dse_search)
register_unit_kind("table", _execute_table)
register_unit_kind("probe", _execute_probe)


# ------------------------------------------------------------- job specs


def _unit_key(material: Dict[str, Any]) -> str:
    """Content address of one unit: its material plus the code fingerprint."""
    material = dict(material)
    material["code"] = code_fingerprint()
    return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One shard of a job: a content-addressed, executable payload."""

    key: str
    kind: str
    payload: Dict[str, Any]


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """A named, ordered collection of work units.

    The spec ``key`` hashes the name and every unit key, so the same grid
    at the same code version resolves to the same job row -- submitting it
    twice resumes rather than duplicates.
    """

    name: str
    units: Tuple[WorkUnit, ...]

    @property
    def key(self) -> str:
        material = {"name": self.name, "units": [unit.key for unit in self.units]}
        return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()

    @staticmethod
    def profile_grid(
        apps: Optional[Sequence[str]] = None,
        context: Optional[RunContext] = None,
        *,
        cache_root: Optional[Union[str, Path]] = None,
        name: str = "profile-grid",
    ) -> "JobSpec":
        """Shard the (application x dataset) grid, one cell per unit.

        Workers write straight into the content-addressed profile cache
        (``cache_root`` overrides its location), so a completed job's
        output is exactly the warm cache a single-process run would leave.
        """
        context = context or RunContext()
        names = list(apps) if apps is not None else list(registry.app_order())
        context_dict = context_to_dict(context)
        keyer = ProfileCache(root=Path(cache_root)) if cache_root else ProfileCache()
        units: List[WorkUnit] = []
        for app in names:
            spec = registry.get_spec(app)
            for dataset in spec.datasets:
                payload: Dict[str, Any] = {
                    "kind": "profile",
                    "app": app,
                    "dataset": dataset,
                    "context": context_dict,
                }
                if cache_root:
                    payload["cache_root"] = str(cache_root)
                # The profile-cache key *is* the unit's content address:
                # done unit <=> its output exists in the cache.
                key = keyer.key(app, dataset, context, context_fields=spec.context_fields)
                units.append(WorkUnit(key=key, kind="profile", payload=payload))
        if not units:
            raise JobError("profile grid resolved to zero units")
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def dse_grid(
        axes: Dict[str, Sequence[Any]],
        *,
        apps: Optional[Sequence[str]] = None,
        context: Optional[RunContext] = None,
        memory_budget: Optional[int] = None,
        max_chunk: int = DEFAULT_DSE_CHUNK,
        name: str = "dse-grid",
    ) -> "JobSpec":
        """Shard a sweep cross-product into budget-planned variant chunks.

        The chunk size comes from the PR 6 budget planner: one chunk's
        (profile x variant) costing working set fits ``memory_budget``
        (``REPRO_MEMORY_BUDGET`` honored), capped at ``max_chunk`` variants
        so even unbudgeted jobs stay resumable at useful granularity.
        """
        from .._budget import plan_chunks, resolve_memory_budget
        from ..apps.timing import COSTING_BYTES_PER_CELL
        from .sweep import sweep

        parsed = {
            axis: [parse_axis_value(axis, value) for value in values]
            for axis, values in axes.items()
        }
        variants = sweep(**parsed)
        for platform in variants.values():
            platform.config.validate()
        context = context or RunContext()
        app_names = list(apps) if apps is not None else list(registry.app_order())
        cells = sum(len(registry.get_spec(app).datasets) for app in app_names)
        plan = plan_chunks(
            len(variants),
            cells * COSTING_BYTES_PER_CELL,
            resolve_memory_budget(memory_budget),
            max_items=max_chunk,
        )
        axes_json = {
            axis: [axis_value_to_json(value) for value in values]
            for axis, values in parsed.items()
        }
        context_dict = context_to_dict(context)
        units: List[WorkUnit] = []
        for start, stop in plan.bounds():
            payload = {
                "kind": "dse_chunk",
                "axes": axes_json,
                "start": int(start),
                "stop": int(stop),
                "apps": None if apps is None else list(apps),
                "context": context_dict,
            }
            key = _unit_key(payload)
            units.append(WorkUnit(key=key, kind="dse_chunk", payload=payload))
        if not units:
            raise JobError("DSE grid resolved to zero units")
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def dse_search(
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        *,
        strategy: str = "evolve",
        params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        objectives: Sequence[str] = ("cycles", "area", "energy"),
        apps: Optional[Sequence[str]] = None,
        context: Optional[RunContext] = None,
        memory_budget: Optional[int] = None,
        store_root: Optional[Union[str, Path]] = None,
        name: str = "dse-search",
    ) -> "JobSpec":
        """Shard an adaptive search into one resumable unit per generation.

        Each unit commits one generation to the
        :class:`~repro.runtime.search.SearchStore`; done units never
        re-run, and a killed unit's partial generation is replayed from
        the last committed state, so the search as a whole resumes
        mid-frontier with zero re-evaluation of committed generations.
        Generations depend on each other serially -- run the job with one
        worker.
        """
        from .search import DEFAULT_SEARCH_AXES, make_strategy

        if axes is None:
            axes = {axis: list(values) for axis, values in DEFAULT_SEARCH_AXES.items()}
        params = dict(params or {})
        built = make_strategy(strategy, **params)
        # A list of pairs: the payload is persisted with sorted keys, and
        # axis order shapes the space (gene order, variant names).
        axes_json = [
            [axis, [axis_value_to_json(parse_axis_value(axis, value)) for value in values]]
            for axis, values in axes.items()
        ]
        context_dict = context_to_dict(context or RunContext())
        units: List[WorkUnit] = []
        for generation in range(built.total_generations()):
            payload: Dict[str, Any] = {
                "kind": "dse_search",
                "axes": axes_json,
                "strategy": strategy,
                "params": params,
                "seed": int(seed),
                "objectives": list(objectives),
                "generation": generation,
                "apps": None if apps is None else list(apps),
                "context": context_dict,
            }
            if memory_budget is not None:
                payload["memory_budget"] = int(memory_budget)
            if store_root:
                payload["store_root"] = str(store_root)
            units.append(WorkUnit(key=_unit_key(payload), kind="dse_search", payload=payload))
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def table_suite(
        tables: Optional[Sequence[str]] = None,
        *,
        scale: Optional[float] = None,
        name: str = "table-suite",
    ) -> "JobSpec":
        """Shard the paper-table suite, one table harness per unit."""
        known = sorted(_table_functions())
        chosen = list(tables) if tables is not None else known
        unknown = set(chosen) - set(known)
        if unknown:
            raise JobError(f"unknown tables: {', '.join(sorted(unknown))}")
        units = []
        for table in chosen:
            payload: Dict[str, Any] = {"kind": "table", "table": table}
            if scale is not None:
                payload["scale"] = float(scale)
            units.append(WorkUnit(key=_unit_key(payload), kind="table", payload=payload))
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def probes(
        count: int,
        *,
        sleep_s: float = 0.0,
        scratch: Optional[Union[str, Path]] = None,
        name: str = "probe",
    ) -> "JobSpec":
        """A synthetic job of ``count`` probe units (smoke tests, demos)."""
        units = []
        for i in range(count):
            payload: Dict[str, Any] = {"kind": "probe", "value": i}
            if sleep_s:
                payload["sleep_s"] = sleep_s
            if scratch:
                payload["scratch"] = str(Path(scratch) / f"unit-{i}")
            units.append(WorkUnit(key=_unit_key(payload), kind="probe", payload=payload))
        return JobSpec(name=name, units=tuple(units))


# -------------------------------------------------------------- job store


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One persisted job row."""

    id: int
    key: str
    name: str
    created_at: str
    updated_at: str
    state: str
    executor: Optional[str]
    workers: Optional[int]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class UnitRecord:
    """One persisted work-unit row."""

    job_id: int
    seq: int
    key: str
    kind: str
    payload: Dict[str, Any]
    state: str
    attempts: int
    duration_s: Optional[float]
    error: Optional[str]
    result_json: Optional[str]
    lease_owner: Optional[str] = None
    lease_expires_at: Optional[float] = None

    def result(self) -> Any:
        """The deserialized unit result (``None`` unless done)."""
        if self.result_json is None:
            return None
        return deserialize_result(self.kind, json.loads(self.result_json))


@dataclasses.dataclass(frozen=True)
class JobRunSummary:
    """What one :meth:`JobStore.run_job` call did."""

    job_id: int
    state: str
    executed: int
    completed: int
    failed: int
    cancelled: int
    remaining: int
    counts: Dict[str, int]
    wall_time_s: float
    dead: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def default_claim_owner() -> str:
    """A lease-owner id for this process: ``hostname:pid:token``.

    The host and pid let a resuming process on the same machine detect
    that an owner died (pid no longer alive) without waiting out the
    lease; the random token distinguishes successive runs in one pid.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def _owner_alive(owner: str) -> Optional[bool]:
    """Whether the lease owner's process is alive; ``None`` if unknowable.

    Only decidable for owners on this host; remote owners return ``None``
    and their leases are trusted until expiry.
    """
    host, _, rest = owner.partition(":")
    pid_text = rest.partition(":")[0]
    if host != socket.gethostname() or not pid_text.isdigit():
        return None
    try:
        os.kill(int(pid_text), 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class _LeaseHeartbeat(threading.Thread):
    """Daemon refreshing the current wave's leases while units execute.

    Runs on its own connection (SQLite connections are not thread-safe)
    against the same database file; refresh failures (e.g. a busy writer)
    are skipped -- the next beat retries, and a missed lease merely makes
    the unit reclaimable a little sooner.
    """

    def __init__(self, path: Path, job_id: int, owner: str, lease_s: float):
        super().__init__(daemon=True, name="repro-lease-heartbeat")
        self._path = path
        self._job_id = job_id
        self._owner = owner
        self._lease_s = lease_s
        self._interval = max(0.05, lease_s / 3.0)
        self._seqs: List[int] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def watch(self, seqs: List[int]) -> None:
        with self._lock:
            self._seqs = list(seqs)

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        store = RunStore(self._path)
        try:
            while not self._stop.wait(self._interval):
                with self._lock:
                    seqs = list(self._seqs)
                if not seqs:
                    continue
                expires = time.time() + self._lease_s
                try:
                    with store.connection:
                        store.connection.executemany(
                            "UPDATE work_units SET lease_expires_at=?"
                            " WHERE job_id=? AND seq=? AND lease_owner=? AND state=?",
                            [
                                (expires, self._job_id, seq, self._owner, UNIT_RUNNING)
                                for seq in seqs
                            ],
                        )
                except Exception:  # noqa: BLE001 - next beat retries
                    continue
        finally:
            store.close()


class JobStore:
    """Job and work-unit persistence over the run-store database.

    Shares the :class:`~repro.runtime.runstore.RunStore` connection (WAL,
    versioned schema); pass an existing store to compose, or a path to own
    one. All unit selections are ordered by ``seq``, so execution and
    reporting follow deterministic grid order.
    """

    def __init__(self, path: Optional[Path] = None, *, store: Optional[RunStore] = None):
        if store is not None:
            self._store = store
            self._owns_store = False
        else:
            self._store = RunStore(path)
            self._owns_store = True
        self._connection = self._store.connection

    @property
    def path(self) -> Path:
        return self._store.path

    def close(self) -> None:
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ writes

    def submit(self, spec: JobSpec) -> JobRecord:
        """Insert a job for ``spec``, or return the existing one (resume)."""
        existing = self.job_by_key(spec.key)
        if existing is not None:
            return existing
        now = _utc_now()
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO jobs (key, name, created_at, updated_at, state)"
                " VALUES (?,?,?,?,?)",
                (spec.key, spec.name, now, now, JOB_PENDING),
            )
            job_id = int(cursor.lastrowid)
            self._connection.executemany(
                "INSERT INTO work_units (job_id, seq, key, kind, payload_json, state)"
                " VALUES (?,?,?,?,?,?)",
                [
                    (
                        job_id,
                        seq,
                        unit.key,
                        unit.kind,
                        json.dumps(unit.payload, sort_keys=True),
                        UNIT_PENDING,
                    )
                    for seq, unit in enumerate(spec.units)
                ],
            )
        job = self.job(job_id)
        assert job is not None
        return job

    def reset_stale_running(self, job_id: int) -> int:
        """Reset *stale* ``running`` units to ``pending`` (kill recovery).

        A ``running`` unit is stale -- an orphan of a dead sweep -- when it
        has no lease (pre-lease rows, or a claimant that died inside the
        claim transaction), its lease has expired, or its owner is a
        process on this host that no longer exists (so a SIGKILLed sweep
        is reclaimable immediately, without waiting out the lease).
        Units validly leased by a *live* concurrent claimant are left
        alone -- that is what makes two concurrent ``run_job`` calls safe.
        """
        now = time.time()
        rows = self._connection.execute(
            "SELECT seq, lease_owner, lease_expires_at FROM work_units"
            " WHERE job_id=? AND state=?",
            (job_id, UNIT_RUNNING),
        ).fetchall()
        stale: List[int] = []
        for row in rows:
            owner = row["lease_owner"]
            expires = row["lease_expires_at"]
            if owner is None or expires is None or expires < now:
                stale.append(row["seq"])
            elif _owner_alive(owner) is False:
                stale.append(row["seq"])
        if stale:
            with self._connection:
                self._connection.executemany(
                    "UPDATE work_units SET state=?, lease_owner=NULL,"
                    " lease_expires_at=NULL WHERE job_id=? AND seq=? AND state=?",
                    [(UNIT_PENDING, job_id, seq, UNIT_RUNNING) for seq in stale],
                )
        return len(stale)

    def claim_units(
        self,
        job_id: int,
        seqs: Sequence[int],
        *,
        owner: str,
        lease_s: float = DEFAULT_LEASE_S,
    ) -> List[UnitRecord]:
        """Atomically claim the subset of ``seqs`` still claimable.

        The select-and-mark runs inside one ``BEGIN IMMEDIATE``
        transaction, so two concurrent claimants racing on the same job
        serialize at the database and can never claim (hence double-run)
        the same unit -- a candidate another claimant already holds or
        finished simply drops out of the returned wave.
        """
        if not seqs:
            return []
        expires = time.time() + lease_s
        placeholders = ",".join("?" for _ in seqs)
        self._connection.commit()  # close any open implicit transaction
        self._connection.execute("BEGIN IMMEDIATE")
        try:
            rows = self._connection.execute(
                f"SELECT * FROM work_units WHERE job_id=? AND state IN (?,?)"
                f" AND seq IN ({placeholders}) ORDER BY seq",
                (job_id, UNIT_PENDING, UNIT_FAILED, *seqs),
            ).fetchall()
            units = [self._unit_from_row(row) for row in rows]
            self._connection.executemany(
                "UPDATE work_units SET state=?, lease_owner=?, lease_expires_at=?"
                " WHERE job_id=? AND seq=?",
                [(UNIT_RUNNING, owner, expires, job_id, unit.seq) for unit in units],
            )
            self._connection.execute("COMMIT")
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        return [
            dataclasses.replace(
                unit, state=UNIT_RUNNING, lease_owner=owner, lease_expires_at=expires
            )
            for unit in units
        ]

    def run_job(
        self,
        job_id: int,
        executor: Any,
        *,
        max_units: Optional[int] = None,
        stop_on_error: bool = False,
        max_attempts: Optional[int] = None,
        lease_s: float = DEFAULT_LEASE_S,
        owner: Optional[str] = None,
    ) -> JobRunSummary:
        """Execute the job's claimable units (pending or failed) in order.

        Args:
            job_id: The job to advance.
            executor: Any :class:`~repro.runtime.executors.base.Executor`.
            max_units: Process at most this many units, then return with
                the job still resumable (deterministic partial progress --
                also the seam the kill/resume tests and smoke sweep use).
            stop_on_error: Forwarded to the executor: cancel outstanding
                units after the first failure instead of finishing the
                batch.
            max_attempts: Dead-letter ceiling: a unit whose *cumulative*
                attempts reach this (or whose failure is classified
                permanent) moves to ``dead`` instead of ``failed`` and is
                never re-claimed on resume. ``None`` (default) keeps the
                retry-forever-on-resume behavior.
            lease_s: Lease length for claimed units; a heartbeat refreshes
                it at a third of this while the wave executes.
            owner: Lease-owner id; defaults to
                :func:`default_claim_owner` for this process.

        Returns:
            A :class:`JobRunSummary`; ``remaining`` counts units still
            claimable afterwards (a resumed call picks exactly those up).

        Units are claimed one wave (of ``executor.workers``) at a time
        inside a ``BEGIN IMMEDIATE`` transaction, executed, and committed
        before the next wave is claimed -- so a killed run can only ever
        lose in-flight work, and two concurrent ``run_job`` processes on
        the same job interleave wave-by-wave without ever double-running
        a unit.
        """
        started = time.perf_counter()
        job = self.job(job_id)
        if job is None:
            raise JobError(f"no job {job_id} in {self.path}")
        owner = owner or default_claim_owner()
        self.reset_stale_running(job_id)
        with self._connection:
            self._connection.execute(
                "UPDATE jobs SET state=?, executor=?, workers=?, updated_at=?"
                " WHERE id=?",
                (
                    JOB_RUNNING,
                    getattr(executor, "name", type(executor).__name__),
                    getattr(executor, "workers", None),
                    _utc_now(),
                    job_id,
                ),
            )
        wave_size = max(1, int(getattr(executor, "workers", 1) or 1))
        completed = failed = cancelled = dead = 0
        processed = 0
        # Snapshot the claimable set once: a unit that fails during *this*
        # call is retried on the next run_job, not re-claimed immediately
        # (its executor-level retries already ran), and concurrent
        # claimants working the same snapshot simply see stolen candidates
        # drop out of their waves at claim time.
        candidates = [unit.seq for unit in self.claimable_units(job_id)]
        heartbeat = _LeaseHeartbeat(self.path, job_id, owner, lease_s)
        heartbeat.start()
        try:
            halt = False
            while not halt and candidates:
                budget = None if max_units is None else max(0, max_units - processed)
                if budget == 0:
                    break
                limit = wave_size if budget is None else min(wave_size, budget)
                batch, candidates = candidates[:limit], candidates[limit:]
                wave = self.claim_units(job_id, batch, owner=owner, lease_s=lease_s)
                if not wave:
                    continue
                heartbeat.watch([unit.seq for unit in wave])
                outcomes = executor.run_units(
                    [unit.payload for unit in wave], stop_on_error=stop_on_error
                )
                heartbeat.watch([])
                with self._connection:
                    for unit, outcome in zip(wave, outcomes):
                        if outcome.status == "ok":
                            completed += 1
                            state: str = UNIT_DONE
                            error = None
                            result_json = json.dumps(
                                serialize_result(unit.kind, outcome.result), sort_keys=True
                            )
                        elif outcome.status == "cancelled":
                            cancelled += 1
                            state, error, result_json = UNIT_PENDING, None, None
                        else:
                            error = outcome.error or outcome.status
                            result_json = None
                            permanent = (
                                getattr(outcome, "classification", None) == PERMANENT
                            )
                            exhausted = (
                                max_attempts is not None
                                and unit.attempts + outcome.attempts >= max_attempts
                            )
                            if max_attempts is not None and (permanent or exhausted):
                                dead += 1
                                state = UNIT_DEAD
                            else:
                                failed += 1
                                state = UNIT_FAILED
                        # The lease-owner guard makes the commit idempotent
                        # against theft: if this lease expired mid-wave and
                        # another claimant took the unit, its row is theirs
                        # now and this outcome is dropped.
                        self._connection.execute(
                            "UPDATE work_units SET state=?, attempts=attempts+?,"
                            " duration_s=?, error=?, result_json=?,"
                            " lease_owner=NULL, lease_expires_at=NULL"
                            " WHERE job_id=? AND seq=? AND state=? AND lease_owner=?",
                            (
                                state,
                                outcome.attempts,
                                outcome.duration_s,
                                error,
                                result_json,
                                job_id,
                                unit.seq,
                                UNIT_RUNNING,
                                owner,
                            ),
                        )
                processed += len(wave)
                if any(outcome.status == "cancelled" for outcome in outcomes):
                    halt = True  # executor was cancelled; leave the rest pending
                elif getattr(executor, "cancelled", lambda: False)():
                    # A cancel that landed after the wave's last check
                    # produced no cancelled outcome, and the next wave's
                    # _begin_run would silently erase it -- honor it here.
                    halt = True
                if stop_on_error and any(
                    outcome.status not in ("ok", "cancelled") for outcome in outcomes
                ):
                    halt = True
        finally:
            heartbeat.stop()
        counts = self.unit_states(job_id)
        remaining = counts.get(UNIT_PENDING, 0) + counts.get(UNIT_FAILED, 0)
        if counts.get(UNIT_RUNNING, 0):
            # Another live claimant still holds leases; the job is theirs
            # to finish.
            state = JOB_RUNNING
        elif counts.get(UNIT_DONE, 0) == sum(counts.values()):
            state = JOB_DONE
        elif (
            counts.get(UNIT_FAILED, 0) or counts.get(UNIT_DEAD, 0)
        ) and not counts.get(UNIT_PENDING, 0):
            state = JOB_FAILED
        else:
            state = JOB_PENDING
        with self._connection:
            self._connection.execute(
                "UPDATE jobs SET state=?, updated_at=? WHERE id=?",
                (state, _utc_now(), job_id),
            )
        return JobRunSummary(
            job_id=job_id,
            state=state,
            executed=processed,
            completed=completed,
            failed=failed,
            cancelled=cancelled,
            remaining=remaining,
            counts=counts,
            wall_time_s=time.perf_counter() - started,
            dead=dead,
        )

    # ------------------------------------------------------------- reads

    @staticmethod
    def _job_from_row(row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            key=row["key"],
            name=row["name"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            state=row["state"],
            executor=row["executor"],
            workers=row["workers"],
        )

    @staticmethod
    def _unit_from_row(row) -> UnitRecord:
        return UnitRecord(
            job_id=row["job_id"],
            seq=row["seq"],
            key=row["key"],
            kind=row["kind"],
            payload=json.loads(row["payload_json"]),
            state=row["state"],
            attempts=row["attempts"],
            duration_s=row["duration_s"],
            error=row["error"],
            result_json=row["result_json"],
            lease_owner=row["lease_owner"],
            lease_expires_at=row["lease_expires_at"],
        )

    def job(self, job_id: int) -> Optional[JobRecord]:
        row = self._connection.execute(
            "SELECT * FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        return None if row is None else self._job_from_row(row)

    def job_by_key(self, key: str) -> Optional[JobRecord]:
        row = self._connection.execute(
            "SELECT * FROM jobs WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else self._job_from_row(row)

    def jobs(self, limit: Optional[int] = None) -> List[JobRecord]:
        """All jobs, newest first."""
        query = "SELECT * FROM jobs ORDER BY id DESC"
        parameters: List[Any] = []
        if limit is not None:
            query += " LIMIT ?"
            parameters.append(limit)
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._job_from_row(row) for row in rows]

    def units(self, job_id: int, state: Optional[str] = None) -> List[UnitRecord]:
        """The job's units in grid (``seq``) order, optionally one state."""
        query = "SELECT * FROM work_units WHERE job_id=?"
        parameters: List[Any] = [job_id]
        if state is not None:
            query += " AND state=?"
            parameters.append(state)
        query += " ORDER BY seq"
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._unit_from_row(row) for row in rows]

    def claimable_units(self, job_id: int) -> List[UnitRecord]:
        """Units still needing execution: pending, plus failed (retried).

        Dead-lettered units are *not* claimable; they stay visible via
        :meth:`units` / :meth:`unit_states` until operator intervention.
        """
        rows = self._connection.execute(
            "SELECT * FROM work_units WHERE job_id=? AND state IN (?,?) ORDER BY seq",
            (job_id, UNIT_PENDING, UNIT_FAILED),
        ).fetchall()
        return [self._unit_from_row(row) for row in rows]

    def unit_states(self, job_id: int) -> Dict[str, int]:
        """Unit counts by state, e.g. ``{"done": 30, "pending": 3}``."""
        rows = self._connection.execute(
            "SELECT state, COUNT(*) AS n FROM work_units WHERE job_id=? GROUP BY state",
            (job_id,),
        ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    def results(self, job_id: int) -> List[Tuple[UnitRecord, Any]]:
        """(unit, deserialized result) for every done unit, in grid order."""
        return [
            (unit, unit.result()) for unit in self.units(job_id, state=UNIT_DONE)
        ]
